"""The ``numba`` kernel backend: ``@njit``-compiled explicit loops.

Loaded only when :mod:`numba` is importable; requesting it otherwise
raises a :class:`~repro.errors.ConfigurationError` (tests auto-skip). The
kernels are deliberately plain element loops over int64 scalars — every
bitmap word fits 32 bits, so int64 arithmetic is exact and the results are
bit-identical to the ``pure`` backend by construction. CI's kernel-parity
job pins that claim on hosts that have numba.
"""

from __future__ import annotations

import numpy as _np

from repro.errors import ConfigurationError
from repro.kernels import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - the container has no numba
    _njit = None
    _HAVE_NUMBA = False


if _HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_njit(cache=True)
    def _or_reduce(matrix, starts):
        groups = starts.shape[0]
        total, width = matrix.shape
        out = _np.zeros((groups, width), dtype=matrix.dtype)
        for g in range(groups):
            lo = starts[g]
            hi = total if g + 1 >= groups else starts[g + 1]
            for p in range(lo, hi):
                for k in range(width):
                    out[g, k] |= matrix[p, k]
        return out

    @_njit(cache=True)
    def _or_into(dest, rows, values):
        count, width = values.shape
        for i in range(count):
            row = rows[i]
            for k in range(width):
                dest[row, k] |= values[i, k]

    @_njit(cache=True)
    def _add_into(dest, rows, values):
        count, width = values.shape
        for i in range(count):
            row = rows[i]
            for k in range(width):
                dest[row, k] += values[i, k]

    @_njit(cache=True)
    def _any_reduce(flags, starts, stops):
        groups = starts.shape[0]
        width = flags.shape[1]
        out = _np.zeros((groups, width), dtype=_np.bool_)
        for g in range(groups):
            for p in range(starts[g], stops[g]):
                for k in range(width):
                    if flags[p, k]:
                        out[g, k] = True
        return out

    @_njit(cache=True)
    def _rle_words(matrix, length_field, word_bits):
        rows, num_bitmaps = matrix.shape
        out = _np.empty(rows, dtype=_np.int64)
        for r in range(rows):
            total_bits = num_bitmaps * length_field
            for j in range(num_bitmaps):
                bitmap = _np.int64(matrix[r, j])
                if bitmap != 0:
                    # Trailing ones-run length, then total bit length.
                    run = 0
                    probe = bitmap
                    while probe & 1:
                        probe >>= 1
                        run += 1
                    bitlen = 0
                    probe = bitmap
                    while probe != 0:
                        probe >>= 1
                        bitlen += 1
                    fringe = bitlen - run
                    if fringe > 0:
                        total_bits += fringe
            words = -((-total_bits) // word_bits)
            if words < 1:
                words = 1
            out[r] = words
        return out


class NumbaBackend(KernelBackend):
    """``@njit`` loop kernels; bit-identical to ``pure`` by contract."""

    name = "numba"

    def __init__(self) -> None:
        if not _HAVE_NUMBA:
            raise ConfigurationError(
                "kernel backend 'numba' is unavailable: numba is not "
                "installed (the 'pure' backend needs no extra packages)"
            )
        self.fused = True

    def or_reduce(self, matrix, starts):
        if len(starts) == 0:
            return matrix[:0]
        return _or_reduce(
            _np.ascontiguousarray(matrix),
            _np.ascontiguousarray(starts, dtype=_np.int64),
        )

    def or_into(self, dest, rows, values):
        _or_into(
            dest,
            _np.ascontiguousarray(rows, dtype=_np.int64),
            _np.ascontiguousarray(values),
        )

    def add_into(self, dest, rows, values):
        _add_into(
            dest,
            _np.ascontiguousarray(rows, dtype=_np.int64),
            _np.ascontiguousarray(values),
        )

    def any_reduce(self, flags, starts, stops):
        return _any_reduce(
            _np.ascontiguousarray(flags),
            _np.ascontiguousarray(starts, dtype=_np.int64),
            _np.ascontiguousarray(stops, dtype=_np.int64),
        )

    def rle_words(self, matrix, bits):
        length_field = max(1, (bits - 1).bit_length())
        return _rle_words(
            _np.ascontiguousarray(matrix), length_field, 32
        )


__all__ = ["NumbaBackend"]
