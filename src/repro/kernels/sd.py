"""Fused SD block kernel: a whole epoch block of ring waves at once.

For packable aggregates (``synopsis_packable``) every payload of a block is
one row of a uint32 matrix: the aggregate synopsis's packed bitmap words,
followed by the piggybacked contributing-count sketch's words (when the
aggregate needs one). Fusion is bitwise OR, so a level's wave is one
OR-scatter of delivered payload rows into receiver accumulator rows; wire
sizing is one vectorized RLE pass per level (:meth:`KernelBackend.rle_words`
reproduces :func:`repro.multipath.fm._packed_rle_words` exactly).

The object path's ground-truth ``contributors`` bitmask (who reached the
base over *any* path) is recovered without objects: a node's bit is set iff
some chain of successful deliveries links it to the base station, which a
reverse (shallowest-level-first) reachability sweep over the same planned
success tables computes exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.aggregates.grouping import annotate_groups
from repro.aggregates.workload import annotate_workload
from repro.multipath.fm import (
    DEFAULT_BITS,
    single_item_matrix_block,
    sketch_from_row,
)
from repro.network.links import Channel, TransmissionLog
from repro.network.placement import BASE_STATION, NodeId
from repro.network.simulator import EpochOutcome, gather_readings


def sd_eligible(scheme) -> bool:
    """Whether the fused block path applies to this SD instance."""
    return scheme._aggregate.synopsis_packable() is not None


def run_sd_block(
    scheme, epoch_list: List[int], channel: Channel, readings, backend
) -> List[Tuple[EpochOutcome, TransmissionLog]]:
    """Run one SD epoch block through the fused array path.

    Byte-identical to the object ``run_epochs``: same estimates (the packed
    rows OR to the same bits the sketch objects fuse to), same RLE word
    counts, same log counters and per-node billing.
    """
    aggregate = scheme._aggregate
    accountant = scheme._accountant
    attempts = scheme._attempts
    depth = scheme._rings.depth
    num_epochs = len(epoch_list)

    syn_bitmaps, _syn_bits = aggregate.synopsis_packable()
    use_contrib = not aggregate.synopsis_counts_contributors()
    contrib_bitmaps = scheme._count_bitmaps if use_contrib else 0
    width = syn_bitmaps + contrib_bitmaps

    skeletons = scheme._plan_levels()
    plan = channel.plan_epochs(skeletons, epoch_list)

    index: Dict[NodeId, int] = {}
    for nodes in scheme._level_nodes:
        for node in nodes:
            index[node] = len(index)
    base_row = len(index)
    index[BASE_STATION] = base_row

    # Accumulated (fused) payload per node, flattened (epoch, word) columns.
    acc = np.zeros((len(index), num_epochs * width), dtype=np.uint32)

    received_any = np.zeros(num_epochs, dtype=bool)
    deliveries = np.zeros(num_epochs, dtype=np.int64)
    words_sent = np.zeros(num_epochs, dtype=np.int64)
    messages_sent = np.zeros(num_epochs, dtype=np.int64)
    total_pairs = 0
    transmissions_const = 0
    node_words: Dict[NodeId, int] = {}
    node_messages: Dict[NodeId, int] = {}

    # Per-level records for the reachability sweep:
    # (sender rows, success table, span starts, span stops, receiver rows).
    level_records = []

    for level_idx, nodes in enumerate(scheme._level_nodes):
        num_nodes = len(nodes)
        if num_nodes == 0:
            continue
        reading_rows = [
            gather_readings(readings, nodes, epoch) for epoch in epoch_list
        ]
        packed_flat = np.asarray(
            aggregate.synopsis_local_block_packed(nodes, epoch_list, reading_rows)
        )
        local = np.zeros((num_nodes, num_epochs, width), dtype=np.uint32)
        local[:, :, :syn_bitmaps] = packed_flat.reshape(
            num_epochs, num_nodes, syn_bitmaps
        ).transpose(1, 0, 2)
        if use_contrib:
            contrib_flat = single_item_matrix_block(
                contrib_bitmaps, DEFAULT_BITS, ("contrib",), nodes, epoch_list
            )
            local[:, :, syn_bitmaps:] = contrib_flat.reshape(
                num_epochs, num_nodes, contrib_bitmaps
            ).transpose(1, 0, 2)

        rows = np.fromiter(
            (index[node] for node in nodes), dtype=np.int64, count=num_nodes
        )
        local |= acc[rows].reshape(num_nodes, num_epochs, width)
        payload = local

        words = backend.rle_words(
            payload[:, :, :syn_bitmaps].reshape(num_nodes * num_epochs, syn_bitmaps),
            32,
        ).reshape(num_nodes, num_epochs)
        if use_contrib:
            words = words + backend.rle_words(
                payload[:, :, syn_bitmaps:].reshape(
                    num_nodes * num_epochs, contrib_bitmaps
                ),
                32,
            ).reshape(num_nodes, num_epochs)

        unique_words = np.unique(words)
        unique_messages = np.fromiter(
            (accountant.spec_for_words(int(value)).messages for value in unique_words),
            dtype=np.int64,
            count=len(unique_words),
        )
        messages = unique_messages[np.searchsorted(unique_words, words)]

        transmissions_const += num_nodes * attempts
        words_sent += attempts * words.sum(axis=0)
        messages_sent += attempts * messages.sum(axis=0)
        per_node_w = attempts * words.sum(axis=1)
        per_node_m = attempts * messages.sum(axis=1)
        for position, node in enumerate(nodes):
            node_words[node] = int(per_node_w[position])
            node_messages[node] = int(per_node_m[position])

        success, spans, flat_receivers = plan.level_table(
            channel, level_idx, skeletons[level_idx]
        )
        success = np.asarray(success, dtype=bool)
        num_pairs = success.shape[0]
        span_starts = np.fromiter(
            (start for start, _stop in spans), dtype=np.int64, count=num_nodes
        )
        span_stops = np.fromiter(
            (stop for _start, stop in spans), dtype=np.int64, count=num_nodes
        )
        deliveries += success.sum(axis=0)
        total_pairs += num_pairs

        if num_pairs:
            recv_rows = np.fromiter(
                (index[receiver] for receiver in flat_receivers),
                dtype=np.int64,
                count=num_pairs,
            )
            pair_item = np.repeat(
                np.arange(num_nodes), span_stops - span_starts
            )
            order = np.argsort(recv_rows, kind="stable")
            sorted_rows = recv_rows[order]
            target_rows, group_starts = np.unique(sorted_rows, return_index=True)
            # One receiver-ordered gather, masked in place: dead pairs OR
            # zeros into their group, so the reduceat result is exact.
            gathered = payload[pair_item[order]]
            gathered *= success[order][:, :, None]
            grouped = backend.or_reduce(
                gathered.reshape(num_pairs, num_epochs * width), group_starts
            )
            backend.or_into(acc, target_rows, grouped)
            base_pairs = recv_rows == base_row
            if base_pairs.any():
                received_any |= success[base_pairs].any(axis=0)
        else:
            recv_rows = np.zeros(0, dtype=np.int64)
        level_records.append((rows, success, span_starts, span_stops, recv_rows))

    # Ground-truth contributors: reach[n] iff some successful delivery chain
    # links n to the base. Receivers sit one level shallower than senders,
    # so sweeping levels shallowest-first visits receivers before senders.
    contributing = np.zeros(num_epochs, dtype=np.int64)
    reach = np.zeros((len(index), num_epochs), dtype=bool)
    reach[base_row] = True
    for rows, success, span_starts, span_stops, recv_rows in reversed(
        level_records
    ):
        if len(recv_rows):
            sender_any = backend.any_reduce(
                success & reach[recv_rows], span_starts, span_stops
            )
        else:
            sender_any = np.zeros((len(rows), num_epochs), dtype=bool)
        reach[rows] = sender_any
        contributing += sender_any.sum(axis=0)

    channel.reset_log()
    channel.account_bulk(node_words, node_messages)

    acc_block = acc.reshape(len(index), num_epochs, width)
    results: List[Tuple[EpochOutcome, TransmissionLog]] = []
    for column in range(num_epochs):
        log = TransmissionLog(
            transmissions=transmissions_const,
            deliveries=int(deliveries[column]),
            drops=total_pairs - int(deliveries[column]),
            words_sent=int(words_sent[column]),
            messages_sent=int(messages_sent[column]),
        )
        if received_any[column]:
            synopsis = sketch_from_row(acc_block[base_row, column, :syn_bitmaps])
            estimate = aggregate.synopsis_eval(synopsis)
            if use_contrib:
                contributing_estimate = sketch_from_row(
                    acc_block[base_row, column, syn_bitmaps:]
                ).estimate()
            else:
                contributing_estimate = aggregate.synopsis_eval(synopsis)
            outcome = EpochOutcome(
                estimate=estimate,
                contributing=int(contributing[column]),
                contributing_estimate=contributing_estimate,
                extra=annotate_groups(
                    aggregate,
                    annotate_workload(aggregate, {"latency_epochs": depth}),
                ),
            )
        else:
            outcome = EpochOutcome(
                estimate=0.0,
                contributing=0,
                contributing_estimate=0.0,
                extra=annotate_groups(
                    aggregate,
                    annotate_workload(
                        aggregate, {"latency_epochs": depth}, empty=True
                    ),
                    empty=True,
                ),
            )
        results.append((outcome, log))
    return results
