"""Failure models: how lossy each link is at each epoch.

The paper's Section 7.1 studies two failure models over the Synthetic
deployment:

* ``Global(p)`` — every node experiences message loss rate ``p``.
* ``Regional(p1, p2)`` — nodes inside the rectangle {(0,0),(10,10)} of the
  20x20 area lose messages at rate ``p1``; everybody else at rate ``p2``.

Loss in the paper is attributed to the *sending* node ("all nodes within the
region experience a message loss rate of p1"), so our models resolve the loss
probability from the sender's position. :class:`FailureSchedule` composes
models over time for the Figure 6 timeline experiment, and
:class:`LinkLossTable` supports per-link rates for LabData-style deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol, Sequence, Tuple

from repro._hashing import HAVE_NUMPY
from repro.errors import ConfigurationError
from repro.network.placement import Deployment, NodeId, Point

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container ships numpy
    _np = None


class FailureModel(Protocol):
    """Resolves the loss probability of a transmission at a given epoch.

    Models may additionally expose ``loss_rate_batch(deployment, senders,
    receivers, epoch) -> ndarray`` returning, for equal-length node
    sequences, exactly ``[loss_rate(d, s, r, epoch) for s, r in zip(...)]``;
    the batched channel uses it to skip per-pair Python calls. It is
    optional — the channel falls back to the scalar method.
    """

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        """Probability that a message from ``sender`` to ``receiver`` is lost."""
        ...


def _check_rate(rate: float, label: str) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{label} must be in [0, 1], got {rate}")
    return rate


#: Pair-key encoding for vectorized (sender, receiver) -> rate lookups.
#: Node ids are small non-negative ints, so ``sender * SHIFT + receiver``
#: is collision-free and fits comfortably in int64.
_PAIR_SHIFT = 1 << 32


def _pair_lookup_arrays(rates: Dict[Tuple[NodeId, NodeId], float]):
    """Sorted (encoded-key, rate) arrays for a per-link rate table."""
    keys = _np.fromiter(
        (sender * _PAIR_SHIFT + receiver for sender, receiver in rates),
        dtype=_np.int64,
        count=len(rates),
    )
    values = _np.fromiter(rates.values(), dtype=_np.float64, count=len(rates))
    order = _np.argsort(keys)
    return keys[order], values[order]


def _pair_rates(
    lookup,
    default: float,
    senders: Sequence[NodeId],
    receivers: Sequence[NodeId],
):
    """Vectorized dict-equivalent: ``rates.get((s, r), default)`` per pair.

    ``lookup`` is the (sorted keys, values) pair from
    :func:`_pair_lookup_arrays`. Values come straight from the table, so
    hits are bit-identical to the scalar ``dict.get``; misses take
    ``default`` exactly.
    """
    count = len(senders)
    out = _np.full(count, default, dtype=_np.float64)
    keys, values = lookup
    if count and keys.size:
        probe = _np.asarray(senders, dtype=_np.int64) * _PAIR_SHIFT + _np.asarray(
            receivers, dtype=_np.int64
        )
        positions = _np.minimum(
            _np.searchsorted(keys, probe), keys.size - 1
        )
        hits = keys[positions] == probe
        out[hits] = values[positions[hits]]
    return out


@dataclass(frozen=True)
class NoLoss:
    """A perfectly reliable network (used for load measurements, Figure 8)."""

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        return 0.0

    def loss_rate_batch(
        self,
        deployment: Deployment,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        epoch: int,
    ):
        if _np is None:  # pragma: no cover
            return [0.0] * len(senders)
        return _np.zeros(len(senders), dtype=_np.float64)


@dataclass(frozen=True)
class GlobalLoss:
    """``Global(p)``: a uniform loss rate for every transmission."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate, "rate")

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        return self.rate

    def loss_rate_batch(
        self,
        deployment: Deployment,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        epoch: int,
    ):
        if _np is None:  # pragma: no cover
            return [self.rate] * len(senders)
        return _np.full(len(senders), self.rate, dtype=_np.float64)


@dataclass(frozen=True)
class RegionalLoss:
    """``Regional(p1, p2)``: loss ``p1`` inside a rectangle, ``p2`` outside.

    The default rectangle is the paper's {(0,0),(10,10)} quadrant of the
    20x20 Synthetic deployment. The *sender's* position decides the rate.
    """

    inside_rate: float
    outside_rate: float
    lower: Point = (0.0, 0.0)
    upper: Point = (10.0, 10.0)

    def __post_init__(self) -> None:
        _check_rate(self.inside_rate, "inside_rate")
        _check_rate(self.outside_rate, "outside_rate")
        if self.lower[0] > self.upper[0] or self.lower[1] > self.upper[1]:
            raise ConfigurationError("regional rectangle has negative extent")

    def contains(self, deployment: Deployment, node: NodeId) -> bool:
        """Whether ``node`` sits inside the failure rectangle."""
        x, y = deployment.position(node)
        return (
            self.lower[0] <= x <= self.upper[0]
            and self.lower[1] <= y <= self.upper[1]
        )

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        if self.contains(deployment, sender):
            return self.inside_rate
        return self.outside_rate

    def _sender_rates(self, deployment: Deployment):
        """Dense node-id -> loss-rate lookup table, cached per deployment.

        The cache holds the deployment object itself, so the identity check
        cannot alias a garbage-collected deployment. It is dropped on
        pickling (:meth:`__getstate__`): worker processes and the on-disk
        result cache see only the declared rate fields, so sweeps sharing
        one model instance across deployments can never resurrect a stale
        table.
        """
        cached = self.__dict__.get("_rates_cache")
        if cached is not None and cached[0] is deployment:
            return cached[1]
        node_ids = deployment.node_ids
        size = max(node_ids, default=-1) + 1
        rates = _np.full(size, self.outside_rate, dtype=_np.float64)
        for node in node_ids:
            if self.contains(deployment, node):
                rates[node] = self.inside_rate
        object.__setattr__(self, "_rates_cache", (deployment, rates))
        return rates

    def __getstate__(self):
        """Pickle only the declared fields, never the per-deployment cache."""
        return {
            name: value
            for name, value in self.__dict__.items()
            if name != "_rates_cache"
        }

    def loss_rate_batch(
        self,
        deployment: Deployment,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        epoch: int,
    ):
        if _np is None:  # pragma: no cover
            return [
                self.loss_rate(deployment, sender, receiver, epoch)
                for sender, receiver in zip(senders, receivers)
            ]
        if not len(senders):
            return _np.zeros(0, dtype=_np.float64)
        return self._sender_rates(deployment)[
            _np.asarray(senders, dtype=_np.int64)
        ]


@dataclass(frozen=True)
class LinkLossTable:
    """Explicit per-link loss rates with a default fallback.

    Used by the LabData reconstruction, where each (sender, receiver) link has
    its own measured-style loss rate.
    """

    rates: Dict[Tuple[NodeId, NodeId], float]
    default: float = 0.0

    def __post_init__(self) -> None:
        _check_rate(self.default, "default")
        for pair, rate in self.rates.items():
            _check_rate(rate, f"rate for link {pair}")

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        return self.rates.get((sender, receiver), self.default)

    def _lookup(self):
        """Sorted-key lookup arrays over ``rates``, built once per instance.

        Dropped on pickling (:meth:`__getstate__`), like
        :meth:`RegionalLoss._sender_rates`'s cache.
        """
        cached = self.__dict__.get("_lookup_cache")
        if cached is None:
            cached = _pair_lookup_arrays(self.rates)
            object.__setattr__(self, "_lookup_cache", cached)
        return cached

    def __getstate__(self):
        return {
            name: value
            for name, value in self.__dict__.items()
            if name != "_lookup_cache"
        }

    def loss_rate_batch(
        self,
        deployment: Deployment,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        epoch: int,
    ):
        """Vectorized per-link lookup, bit-identical to the scalar method."""
        if _np is None:  # pragma: no cover
            return [
                self.loss_rate(deployment, sender, receiver, epoch)
                for sender, receiver in zip(senders, receivers)
            ]
        return _pair_rates(self._lookup(), self.default, senders, receivers)


@dataclass(frozen=True)
class FailureSchedule:
    """A piecewise-constant timeline of failure models.

    ``phases`` is a list of (start_epoch, model); the model whose start epoch
    is the largest one not exceeding the current epoch applies. The paper's
    Figure 6 timeline is::

        FailureSchedule([
            (0,   GlobalLoss(0.0)),
            (100, RegionalLoss(0.3, 0.0)),
            (200, GlobalLoss(0.3)),
            (300, GlobalLoss(0.0)),
        ])
    """

    phases: Sequence[Tuple[int, FailureModel]]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("schedule needs at least one phase")
        starts = [start for start, _ in self.phases]
        if starts != sorted(starts):
            raise ConfigurationError("schedule phases must be sorted by start epoch")
        if starts[0] != 0:
            raise ConfigurationError("first phase must start at epoch 0")

    def model_at(self, epoch: int) -> FailureModel:
        """Return the failure model in force at ``epoch``."""
        current = self.phases[0][1]
        for start, model in self.phases:
            if start <= epoch:
                current = model
            else:
                break
        return current

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        return self.model_at(epoch).loss_rate(deployment, sender, receiver, epoch)

    def loss_rate_batch(
        self,
        deployment: Deployment,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        epoch: int,
    ):
        model = self.model_at(epoch)
        batch = getattr(model, "loss_rate_batch", None)
        if batch is not None:
            rates = batch(deployment, senders, receivers, epoch)
        else:
            rates = [
                model.loss_rate(deployment, sender, receiver, epoch)
                for sender, receiver in zip(senders, receivers)
            ]
        # Normalize both branches to one return type: callers (the blocked
        # delivery planner assigns these into a float64 column) must never
        # see an ndarray on one phase and a Python list on the next.
        if _np is None:  # pragma: no cover
            return list(rates)
        return _np.asarray(rates, dtype=_np.float64)


@dataclass(frozen=True)
class ComposedLoss:
    """Combine a baseline (radio-quality) loss with a failure model.

    A message survives only if it survives both the radio's distance-based
    loss and the scenario's failure-model loss; the combined loss rate is
    ``1 - (1 - base)(1 - failure)``.
    """

    base_rates: Dict[Tuple[NodeId, NodeId], float]
    failure: FailureModel

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        base = self.base_rates.get((sender, receiver), 0.0)
        extra = self.failure.loss_rate(deployment, sender, receiver, epoch)
        return 1.0 - (1.0 - base) * (1.0 - extra)

    def _lookup(self):
        """Sorted-key lookup arrays over ``base_rates`` (see LinkLossTable)."""
        cached = self.__dict__.get("_lookup_cache")
        if cached is None:
            cached = _pair_lookup_arrays(self.base_rates)
            object.__setattr__(self, "_lookup_cache", cached)
        return cached

    def __getstate__(self):
        return {
            name: value
            for name, value in self.__dict__.items()
            if name != "_lookup_cache"
        }

    def loss_rate_batch(
        self,
        deployment: Deployment,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        epoch: int,
    ):
        """Vectorized composition, bit-identical to the scalar method.

        The base-rate lookup is one searchsorted sweep; the failure model's
        own ``loss_rate_batch`` is used when it exists (falling back to its
        scalar method per pair), and the survival product runs elementwise
        in float64 — the same IEEE operations, in the same order, as the
        scalar expression.
        """
        if _np is None:  # pragma: no cover
            return [
                self.loss_rate(deployment, sender, receiver, epoch)
                for sender, receiver in zip(senders, receivers)
            ]
        base = _pair_rates(self._lookup(), 0.0, senders, receivers)
        batch = getattr(self.failure, "loss_rate_batch", None)
        if batch is not None:
            extra = _np.asarray(
                batch(deployment, senders, receivers, epoch),
                dtype=_np.float64,
            )
        else:
            extra = _np.asarray(
                [
                    self.failure.loss_rate(deployment, sender, receiver, epoch)
                    for sender, receiver in zip(senders, receivers)
                ],
                dtype=_np.float64,
            )
        return 1.0 - (1.0 - base) * (1.0 - extra)
