"""Sensor-network substrate: placements, radios, lossy channels, rings.

This package replaces the TAG simulator used in the paper's evaluation
(Section 7.1). It provides:

* :mod:`repro.network.placement` — node deployments (grids, lab layouts).
* :mod:`repro.network.radio` — connectivity and link-quality models.
* :mod:`repro.network.failures` — Global/Regional/scheduled loss models.
* :mod:`repro.network.links` — the per-epoch lossy channel.
* :mod:`repro.network.rings` — rings (level) topology construction.
* :mod:`repro.network.messages` — TinyDB-style message sizing, RLE model.
* :mod:`repro.network.energy` — message/word energy accounting.
* :mod:`repro.network.latency` — epoch-schedule latency model (footnote 6).
* :mod:`repro.network.lifetime` — battery-lifetime prediction.
* :mod:`repro.network.burst` — bursty (Gilbert-Elliott) and crash failures.
* :mod:`repro.network.churn` — node churn models and dynamic membership.
* :mod:`repro.network.linkquality` — link monitoring and maintenance [24].
* :mod:`repro.network.simulator` — the epoch-driven execution engine.
"""

from repro.network.placement import Deployment, grid_random_placement
from repro.network.radio import DiscRadio, QualityDiscRadio
from repro.network.burst import (
    CrashWindow,
    GilbertElliottLoss,
    NodeCrashLoss,
    matched_gilbert_elliott,
)
from repro.network.churn import (
    ChurnBatch,
    ChurnContext,
    DynamicMembership,
    LifetimeChurn,
    MembershipUpdate,
    RandomDeaths,
    RegionalBlackout,
    ScheduledChurn,
)
from repro.network.failures import (
    FailureSchedule,
    GlobalLoss,
    LinkLossTable,
    NoLoss,
    RegionalLoss,
)
from repro.network.lifetime import (
    LifetimeReport,
    MoteEnergyModel,
    lifetime_from_run,
    predict_lifetimes,
)
from repro.network.latency import (
    LatencyModel,
    compare_retransmission_strategies,
    latency_table,
    scheme_latency_ms,
)
from repro.network.linkquality import (
    LinkQualityMonitor,
    OnlineMaintenance,
    ParentSwitch,
    TreeMaintainer,
    rebuild_rings,
)
from repro.network.links import Channel, TransmissionLog
from repro.network.rings import RingsTopology
from repro.network.messages import MessageAccountant, MessageSpec, TINYDB_MESSAGE_BYTES
from repro.network.energy import EnergyModel, EnergyReport
from repro.network.simulator import EpochResult, EpochSimulator, RunResult

__all__ = [
    "Deployment",
    "grid_random_placement",
    "DiscRadio",
    "QualityDiscRadio",
    "CrashWindow",
    "GilbertElliottLoss",
    "NodeCrashLoss",
    "matched_gilbert_elliott",
    "ChurnBatch",
    "ChurnContext",
    "DynamicMembership",
    "LifetimeChurn",
    "MembershipUpdate",
    "RandomDeaths",
    "RegionalBlackout",
    "ScheduledChurn",
    "FailureSchedule",
    "GlobalLoss",
    "LinkLossTable",
    "NoLoss",
    "RegionalLoss",
    "LifetimeReport",
    "MoteEnergyModel",
    "lifetime_from_run",
    "predict_lifetimes",
    "LatencyModel",
    "compare_retransmission_strategies",
    "latency_table",
    "scheme_latency_ms",
    "LinkQualityMonitor",
    "OnlineMaintenance",
    "ParentSwitch",
    "TreeMaintainer",
    "rebuild_rings",
    "Channel",
    "TransmissionLog",
    "RingsTopology",
    "MessageAccountant",
    "MessageSpec",
    "TINYDB_MESSAGE_BYTES",
    "EnergyModel",
    "EnergyReport",
    "EpochResult",
    "EpochSimulator",
    "RunResult",
]
