"""Sensor deployments: where the motes and the base station sit.

A :class:`Deployment` is a pure description of sensor positions; radio
connectivity and loss are layered on top by :mod:`repro.network.radio` and
:mod:`repro.network.failures`. The paper's ``Synthetic`` scenario (Section
7.1) is 600 sensors placed uniformly at random in a 20 ft x 20 ft area with
the base station at (10, 10); :func:`grid_random_placement` builds exactly
that family of deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro._hashing import stream_rng
from repro.errors import ConfigurationError

#: Node identifier type. The base station is always node 0.
NodeId = int

#: The base station's reserved node id.
BASE_STATION: NodeId = 0

Point = Tuple[float, float]


@dataclass(frozen=True)
class Deployment:
    """An immutable set of sensor positions plus a base station.

    Attributes:
        positions: mapping from node id to (x, y) coordinates. Node 0 is the
            base station and must be present.
        width: width of the deployment area (used by regional failure models
            and by plotting/rendering helpers).
        height: height of the deployment area.
        name: human-readable label used in experiment reports.
    """

    positions: Dict[NodeId, Point]
    width: float
    height: float
    name: str = "deployment"

    def __post_init__(self) -> None:
        if BASE_STATION not in self.positions:
            raise ConfigurationError("deployment must include base station node 0")
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("deployment area must have positive size")

    @property
    def base_station(self) -> NodeId:
        """The base station node id (always 0)."""
        return BASE_STATION

    @property
    def sensor_ids(self) -> List[NodeId]:
        """All node ids except the base station, in sorted order."""
        return sorted(node for node in self.positions if node != BASE_STATION)

    @property
    def node_ids(self) -> List[NodeId]:
        """All node ids including the base station, in sorted order."""
        return sorted(self.positions)

    @property
    def num_sensors(self) -> int:
        """Number of sensor motes (excluding the base station)."""
        return len(self.positions) - 1

    def position(self, node: NodeId) -> Point:
        """Return the (x, y) position of ``node``."""
        return self.positions[node]

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Euclidean distance between two nodes."""
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

    def nodes_in_rect(
        self, lower: Point, upper: Point, include_base: bool = False
    ) -> List[NodeId]:
        """Return nodes whose positions fall inside an axis-aligned rectangle.

        Args:
            lower: (x, y) of the rectangle's lower-left corner.
            upper: (x, y) of the rectangle's upper-right corner.
            include_base: whether the base station may be included.
        """
        (lx, ly), (ux, uy) = lower, upper
        selected = []
        for node, (x, y) in self.positions.items():
            if node == BASE_STATION and not include_base:
                continue
            if lx <= x <= ux and ly <= y <= uy:
                selected.append(node)
        return sorted(selected)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.node_ids)

    def __len__(self) -> int:
        return len(self.positions)


def grid_random_placement(
    num_sensors: int,
    width: float = 20.0,
    height: float = 20.0,
    base_position: Point | None = None,
    seed: int = 0,
    name: str | None = None,
) -> Deployment:
    """Place ``num_sensors`` motes uniformly at random in a rectangle.

    This reproduces the paper's ``Synthetic`` scenario generator: 600 sensors
    in a 20 x 20 area with the base station at (10, 10). The placement is
    deterministic in ``seed``.

    Args:
        num_sensors: number of sensor motes (the base station is extra).
        width: area width.
        height: area height.
        base_position: base-station position; defaults to the area centre.
        seed: RNG seed; the same seed always yields the same deployment.
        name: label for reports; defaults to ``synthetic-<n>``.
    """
    if num_sensors <= 0:
        raise ConfigurationError("num_sensors must be positive")
    rng = stream_rng("placement", seed, num_sensors, width, height)
    if base_position is None:
        base_position = (width / 2.0, height / 2.0)
    positions: Dict[NodeId, Point] = {BASE_STATION: base_position}
    for node in range(1, num_sensors + 1):
        positions[node] = (rng.uniform(0.0, width), rng.uniform(0.0, height))
    return Deployment(
        positions=positions,
        width=width,
        height=height,
        name=name or f"synthetic-{num_sensors}",
    )


def placement_from_points(
    points: Sequence[Point],
    base_position: Point,
    width: float,
    height: float,
    name: str = "custom",
) -> Deployment:
    """Build a deployment from explicit sensor coordinates.

    ``points`` become nodes 1..n in order; the base station is node 0 at
    ``base_position``. Used by the LabData reconstruction and by tests.
    """
    positions: Dict[NodeId, Point] = {BASE_STATION: base_position}
    for index, point in enumerate(points, start=1):
        positions[index] = (float(point[0]), float(point[1]))
    return Deployment(positions=positions, width=width, height=height, name=name)
