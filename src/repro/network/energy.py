"""Energy accounting.

The paper's premise: sending a message costs several orders of magnitude more
than local computation, so energy is dominated by (number of messages) x
(message size). We expose exactly the two components of Table 1 — message
count and words sent — plus a combined joule-style scalar for convenience.

The default radio constants are in the right regime for early-2000s motes
(CC1000-class radios: tens of microjoules per transmitted byte), but every
experiment in this reproduction compares *relative* energy, so only the ratio
between per-message overhead and per-byte cost matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.network.links import TransmissionLog
from repro.network.messages import WORD_BYTES
from repro.network.placement import NodeId


@dataclass(frozen=True)
class EnergyModel:
    """Scalar energy cost model for transmissions.

    Attributes:
        per_message_uj: fixed cost per message (preamble, MAC, header).
        per_byte_uj: marginal cost per payload byte.
    """

    per_message_uj: float = 20.0
    per_byte_uj: float = 1.0

    def transmission_cost(self, messages: int, words: int) -> float:
        """Energy (microjoules) of sending ``messages`` holding ``words``."""
        return messages * self.per_message_uj + words * WORD_BYTES * self.per_byte_uj


@dataclass
class EnergyReport:
    """Aggregated energy figures for a run."""

    total_messages: int = 0
    total_words: int = 0
    total_uj: float = 0.0
    per_node_uj: Dict[NodeId, float] = field(default_factory=dict)

    def add_log(self, log: TransmissionLog, model: EnergyModel) -> None:
        """Fold one epoch's transmission log into the report."""
        self.total_messages += log.messages_sent
        self.total_words += log.words_sent
        self.total_uj += model.transmission_cost(log.messages_sent, log.words_sent)

    def add_node_words(
        self, per_node_words: Dict[NodeId, int], model: EnergyModel
    ) -> None:
        """Attribute per-node word loads to per-node energy."""
        for node, words in per_node_words.items():
            cost = model.transmission_cost(0, words)
            self.per_node_uj[node] = self.per_node_uj.get(node, 0.0) + cost

    @property
    def average_message_words(self) -> float:
        """Mean payload words per message (Table 1's 'message size')."""
        if self.total_messages == 0:
            return 0.0
        return self.total_words / self.total_messages
