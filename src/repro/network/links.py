"""The lossy channel: per-transmission, per-receiver Bernoulli delivery.

Both aggregation families transmit once per node per epoch; the difference is
who listens. A tree node unicasts to its parent; a multi-path node's single
broadcast is heard (independently) by each lower-level ring neighbour. We
model each (sender, receiver, epoch, attempt) delivery as an independent
Bernoulli draw with the failure model's loss rate — the standard model in the
synopsis-diffusion analyses the paper builds on.

All draws are deterministic in (seed, sender, receiver, epoch, attempt), so
two schemes run over the same channel seed see *identical* loss patterns;
this is what makes scheme comparisons (TAG vs SD vs TD) paired rather than
noisy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro._hashing import hash_unit
from repro.network.failures import FailureModel
from repro.network.placement import Deployment, NodeId


@dataclass
class TransmissionLog:
    """Counters for one epoch of channel activity.

    Attributes:
        transmissions: physical sends (a broadcast counts once).
        deliveries: successful (sender, receiver) receptions.
        drops: failed (sender, receiver) receptions.
        words_sent: total payload words across transmissions.
        messages_sent: total TinyDB messages across transmissions (one
            transmission may need several messages if its payload is large).
    """

    transmissions: int = 0
    deliveries: int = 0
    drops: int = 0
    words_sent: int = 0
    messages_sent: int = 0

    def merge(self, other: "TransmissionLog") -> None:
        """Accumulate another log into this one."""
        self.transmissions += other.transmissions
        self.deliveries += other.deliveries
        self.drops += other.drops
        self.words_sent += other.words_sent
        self.messages_sent += other.messages_sent


class Channel:
    """Draws delivery outcomes for transmissions under a failure model."""

    def __init__(
        self,
        deployment: Deployment,
        failure_model: FailureModel,
        seed: int = 0,
    ) -> None:
        self._deployment = deployment
        self._failure_model = failure_model
        self._seed = seed
        self.log = TransmissionLog()
        self._per_node_words: Dict[NodeId, int] = {}
        self._per_node_messages: Dict[NodeId, int] = {}

    @property
    def deployment(self) -> Deployment:
        """The deployment this channel serves."""
        return self._deployment

    @property
    def failure_model(self) -> FailureModel:
        """The failure model currently in force."""
        return self._failure_model

    def set_failure_model(self, model: FailureModel) -> None:
        """Swap the failure model (used by scheduled/timeline experiments)."""
        self._failure_model = model

    def loss_rate(self, sender: NodeId, receiver: NodeId, epoch: int) -> float:
        """The loss probability for one (sender -> receiver) attempt."""
        return self._failure_model.loss_rate(
            self._deployment, sender, receiver, epoch
        )

    def delivered(
        self, sender: NodeId, receiver: NodeId, epoch: int, attempt: int = 0
    ) -> bool:
        """Draw whether one transmission attempt is received.

        Deterministic in (seed, sender, receiver, epoch, attempt).
        """
        loss = self.loss_rate(sender, receiver, epoch)
        if loss <= 0.0:
            return True
        if loss >= 1.0:
            return False
        draw = hash_unit("channel", self._seed, sender, receiver, epoch, attempt)
        return draw >= loss

    def transmit(
        self,
        sender: NodeId,
        receivers: Iterable[NodeId],
        epoch: int,
        words: int,
        messages: int = 1,
        attempts: int = 1,
    ) -> List[NodeId]:
        """Perform one logical transmission and return who received it.

        A broadcast to k receivers is ONE physical transmission (the radio
        medium is shared); each receiver draws delivery independently. With
        ``attempts > 1`` (retransmissions, Figure 9b) every attempt is a fresh
        physical transmission and a receiver hears the payload if *any*
        attempt reaches it.

        Args:
            sender: transmitting node.
            receivers: nodes listening for this transmission.
            epoch: current epoch (keys the loss draw).
            words: payload size in 32-bit words (for energy accounting).
            messages: number of TinyDB messages this payload occupies.
            attempts: total send attempts (1 = no retransmission).

        Returns:
            The sorted list of receivers that got the payload.
        """
        receiver_list = list(receivers)
        self.log.transmissions += attempts
        self.log.words_sent += words * attempts
        self.log.messages_sent += messages * attempts
        self._per_node_words[sender] = (
            self._per_node_words.get(sender, 0) + words * attempts
        )
        self._per_node_messages[sender] = (
            self._per_node_messages.get(sender, 0) + messages * attempts
        )
        heard: List[NodeId] = []
        for receiver in receiver_list:
            success = any(
                self.delivered(sender, receiver, epoch, attempt)
                for attempt in range(attempts)
            )
            if success:
                heard.append(receiver)
                self.log.deliveries += 1
            else:
                self.log.drops += 1
        return sorted(heard)

    def per_node_words(self) -> Dict[NodeId, int]:
        """Cumulative words transmitted per node (load accounting)."""
        return dict(self._per_node_words)

    def per_node_messages(self) -> Dict[NodeId, int]:
        """Cumulative messages transmitted per node."""
        return dict(self._per_node_messages)

    def reset_log(self) -> TransmissionLog:
        """Return the current log and start a fresh one."""
        finished = self.log
        self.log = TransmissionLog()
        return finished
