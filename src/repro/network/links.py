"""The lossy channel: per-transmission, per-receiver Bernoulli delivery.

Both aggregation families transmit once per node per epoch; the difference is
who listens. A tree node unicasts to its parent; a multi-path node's single
broadcast is heard (independently) by each lower-level ring neighbour. We
model each (sender, receiver, epoch, attempt) delivery as an independent
Bernoulli draw with the failure model's loss rate — the standard model in the
synopsis-diffusion analyses the paper builds on.

All draws are deterministic in (seed, sender, receiver, epoch, attempt), so
two schemes run over the same channel seed see *identical* loss patterns;
this is what makes scheme comparisons (TAG vs SD vs TD) paired rather than
noisy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro._hashing import HAVE_NUMPY, hash_unit, hash_unit_batch
from repro.errors import ConfigurationError
from repro.network.failures import FailureModel
from repro.network.placement import Deployment, NodeId

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the container ships numpy
    _np = None


@dataclass
class TransmissionLog:
    """Counters for one epoch of channel activity.

    Attributes:
        transmissions: physical sends (a broadcast counts once).
        deliveries: successful (sender, receiver) receptions.
        drops: failed (sender, receiver) receptions.
        words_sent: total payload words across transmissions.
        messages_sent: total TinyDB messages across transmissions (one
            transmission may need several messages if its payload is large).
    """

    transmissions: int = 0
    deliveries: int = 0
    drops: int = 0
    words_sent: int = 0
    messages_sent: int = 0

    def merge(self, other: "TransmissionLog") -> None:
        """Accumulate another log into this one."""
        self.transmissions += other.transmissions
        self.deliveries += other.deliveries
        self.drops += other.drops
        self.words_sent += other.words_sent
        self.messages_sent += other.messages_sent


@dataclass(frozen=True)
class Transmission:
    """One logical transmission queued for a level-synchronous batch.

    Attributes:
        sender: transmitting node.
        receivers: nodes listening for this transmission.
        words: payload size in 32-bit words.
        messages: TinyDB messages the payload occupies.
        attempts: total send attempts (1 = no retransmission).
    """

    sender: NodeId
    receivers: Tuple[NodeId, ...]
    words: int
    messages: int = 1
    attempts: int = 1


def transmit_sequential(
    channel: "Channel", transmissions: Sequence[Transmission], epoch: int
) -> List[List[NodeId]]:
    """Run a batch through the scalar :meth:`Channel.transmit` path.

    The per-node reference implementation of :meth:`Channel.transmit_batch`;
    schemes use it when batching is disabled and the equivalence tests use
    it as the ground truth the batch path must reproduce bit-for-bit.
    """
    return [
        channel.transmit(
            item.sender,
            item.receivers,
            epoch,
            item.words,
            item.messages,
            item.attempts,
        )
        for item in transmissions
    ]


@dataclass(frozen=True)
class _PlanLevel:
    """One level's flattened pair structure plus its outcome table.

    ``success`` is a (pairs x epochs) table: a numpy bool matrix on the
    vectorized path, a list of per-pair rows on the pure-Python fallback.
    """

    senders: Tuple[NodeId, ...]
    receiver_sets: Tuple[Tuple[NodeId, ...], ...]
    attempts: Tuple[int, ...]
    spans: Tuple[Tuple[int, int], ...]
    flat_receivers: Tuple[NodeId, ...]
    success: object


class DeliveryPlan:
    """Precomputed delivery outcomes for a fixed schedule over an epoch block.

    Within one adaptation interval a scheme's transmission structure — who
    sends, who listens, how many attempts — is constant; only payload sizes
    vary by epoch. Delivery draws depend on none of the varying parts, so the
    whole (edge x epoch) outcome grid of a block can be drawn up front: per
    level, one vectorized :func:`repro._hashing.hash_unit_batch` pass per
    attempt over every (pair, epoch) cell, against per-epoch loss-rate
    columns (a :class:`~repro.network.failures.FailureSchedule` that changes
    loss mid-block is resolved epoch by epoch, exactly like the per-epoch
    path).

    A plan is valid only while the level structure and the channel's failure
    model stay fixed: :meth:`Channel.transmit_epochs` re-validates both and
    raises if a scheme's schedule (or a ``set_failure_model`` call) diverged
    from what was planned. Build a fresh plan after every adaptation.
    """

    def __init__(
        self,
        channel: "Channel",
        levels: Sequence[Sequence[Transmission]],
        epochs: Sequence[int],
    ) -> None:
        epoch_list = [int(epoch) for epoch in epochs]
        if not epoch_list:
            raise ConfigurationError("a delivery plan needs at least one epoch")
        self._epoch_columns = {epoch: j for j, epoch in enumerate(epoch_list)}
        if len(self._epoch_columns) != len(epoch_list):
            raise ConfigurationError("plan epochs must be distinct")
        self._channel = channel
        self._model_version = channel._model_version
        self._levels = [
            self._build_level(channel, level, epoch_list) for level in levels
        ]

    def _check_level(
        self,
        channel: "Channel",
        level: int,
        transmissions: Sequence[Transmission],
    ) -> _PlanLevel:
        """Validate channel identity, model freshness and level structure."""
        if channel is not self._channel:
            raise ConfigurationError("delivery plan belongs to another channel")
        if channel._model_version != self._model_version:
            raise ConfigurationError(
                "stale delivery plan: the failure model changed after planning"
            )
        entry = self._levels[level]
        if len(transmissions) != len(entry.senders):
            raise ConfigurationError(
                "transmission schedule diverged from the delivery plan"
            )
        for item, sender, receivers, attempts in zip(
            transmissions, entry.senders, entry.receiver_sets, entry.attempts
        ):
            if (
                item.sender != sender
                or item.attempts != attempts
                or tuple(item.receivers) != receivers
            ):
                raise ConfigurationError(
                    "transmission schedule diverged from the delivery plan"
                )
        return entry

    def outcomes(
        self,
        channel: "Channel",
        level: int,
        epoch: int,
        transmissions: Sequence[Transmission],
        check: bool = True,
    ) -> Tuple[Sequence[bool], Tuple[Tuple[int, int], ...], Tuple[NodeId, ...]]:
        """The planned (success column, spans, flat receivers) for one level.

        Validates that the caller's transmissions still match the planned
        structure and that the channel's failure model has not changed since
        the plan was built — both would silently break byte-identity. A
        caller that already validated the level for this block (via
        :meth:`level_table`) may pass ``check=False`` to skip the per-item
        structure walk; channel identity, model freshness and the epoch
        column are always verified.
        """
        if check:
            entry = self._check_level(channel, level, transmissions)
        else:
            if channel is not self._channel:
                raise ConfigurationError(
                    "delivery plan belongs to another channel"
                )
            if channel._model_version != self._model_version:
                raise ConfigurationError(
                    "stale delivery plan: the failure model changed after "
                    "planning"
                )
            entry = self._levels[level]
        column = self._epoch_columns.get(epoch)
        if column is None:
            raise ConfigurationError(f"epoch {epoch} is outside the planned block")
        success = entry.success
        if _np is not None and isinstance(success, _np.ndarray):
            column_flags = success[:, column]
        else:
            column_flags = [row[column] for row in success]
        return column_flags, entry.spans, entry.flat_receivers

    def level_table(
        self,
        channel: "Channel",
        level: int,
        transmissions: Sequence[Transmission],
    ):
        """The whole (pairs x epochs) outcome block for one level, validated.

        Returns ``(success, spans, flat_receivers)`` where ``success`` is a
        bool matrix whose column ``j`` corresponds to the ``j``-th planned
        epoch (the fused kernels run levels over the full block at once, so
        they consume the matrix instead of per-epoch columns). Runs the
        same structure validation as :meth:`outcomes` — once per block
        instead of once per epoch.
        """
        entry = self._check_level(channel, level, transmissions)
        success = entry.success
        if _np is not None and not isinstance(success, _np.ndarray):
            success = _np.asarray(
                [list(row) for row in success], dtype=bool
            ).reshape(len(entry.flat_receivers), len(self._epoch_columns))
        return success, entry.spans, entry.flat_receivers

    @staticmethod
    def _build_level(
        channel: "Channel",
        transmissions: Sequence[Transmission],
        epochs: List[int],
    ) -> _PlanLevel:
        senders: List[NodeId] = []
        receiver_sets: List[Tuple[NodeId, ...]] = []
        attempts: List[int] = []
        flat_senders: List[NodeId] = []
        flat_receivers: List[NodeId] = []
        flat_attempts: List[int] = []
        spans: List[Tuple[int, int]] = []
        for item in transmissions:
            receivers = tuple(item.receivers)
            senders.append(item.sender)
            receiver_sets.append(receivers)
            attempts.append(item.attempts)
            start = len(flat_senders)
            for receiver in receivers:
                flat_senders.append(item.sender)
                flat_receivers.append(receiver)
                flat_attempts.append(item.attempts)
            spans.append((start, len(flat_senders)))
        success = DeliveryPlan._outcome_table(
            channel, flat_senders, flat_receivers, flat_attempts, epochs
        )
        return _PlanLevel(
            senders=tuple(senders),
            receiver_sets=tuple(receiver_sets),
            attempts=tuple(attempts),
            spans=tuple(spans),
            flat_receivers=tuple(flat_receivers),
            success=success,
        )

    @staticmethod
    def _outcome_table(
        channel: "Channel",
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        attempts_per_pair: Sequence[int],
        epochs: List[int],
    ):
        """Success flags for every (pair, epoch) cell of one level.

        Cell (i, j) equals ``any(channel.delivered(senders[i], receivers[i],
        epochs[j], attempt) for attempt in range(attempts_per_pair[i]))`` —
        the scalar path's outcome, computed in one vectorized sweep per
        attempt.
        """
        num_pairs = len(senders)
        num_epochs = len(epochs)
        if _np is None:
            return [
                [
                    any(
                        channel.delivered(senders[i], receivers[i], epoch, attempt)
                        for attempt in range(attempts_per_pair[i])
                    )
                    for epoch in epochs
                ]
                for i in range(num_pairs)
            ]
        if num_pairs == 0:
            return _np.zeros((0, num_epochs), dtype=bool)
        model = channel._failure_model
        batch_rates = getattr(model, "loss_rate_batch", None)
        loss = _np.empty((num_pairs, num_epochs), dtype=_np.float64)
        for column, epoch in enumerate(epochs):
            if batch_rates is not None:
                loss[:, column] = batch_rates(
                    channel._deployment, senders, receivers, epoch
                )
            else:
                loss[:, column] = [
                    channel.loss_rate(sender, receiver, epoch)
                    for sender, receiver in zip(senders, receivers)
                ]
        success = loss <= 0.0
        if not bool(success.all()):
            attempts_column = _np.asarray(attempts_per_pair, dtype=_np.int64)[
                :, None
            ]
            cells = num_pairs * num_epochs
            sender_grid = _np.repeat(
                _np.asarray(senders, dtype=_np.int64), num_epochs
            )
            receiver_grid = _np.repeat(
                _np.asarray(receivers, dtype=_np.int64), num_epochs
            )
            epoch_grid = _np.tile(_np.asarray(epochs, dtype=_np.int64), num_pairs)
            prefix = ("channel", channel._seed)
            for attempt in range(int(attempts_column.max())):
                undecided = (~success) & (attempts_column > attempt) & (loss < 1.0)
                if not bool(undecided.any()):
                    break
                draws = _np.asarray(
                    hash_unit_batch(
                        prefix,
                        sender_grid,
                        receiver_grid,
                        epoch_grid,
                        _np.full(cells, attempt, dtype=_np.int64),
                    )
                ).reshape(num_pairs, num_epochs)
                success |= undecided & (draws >= loss)
        chaos = channel.chaos
        if chaos is not None:
            chaos.override_table(success, senders, receivers, epochs)
        return success


class Channel:
    """Draws delivery outcomes for transmissions under a failure model.

    ``chaos`` (class default ``None``) is the fault-injection/audit runtime
    the simulator attaches when a :class:`~repro.chaos.FaultPlan` or
    :class:`~repro.chaos.Auditor` is configured. Every hook below guards on
    it, so fault-free channels run the exact original code path.
    """

    #: Attached :class:`~repro.chaos.ChaosRuntime`, or None (the default).
    chaos = None

    def __init__(
        self,
        deployment: Deployment,
        failure_model: FailureModel,
        seed: int = 0,
    ) -> None:
        self._deployment = deployment
        self._failure_model = failure_model
        self._seed = seed
        self._model_version = 0
        self.log = TransmissionLog()
        self._per_node_words: Dict[NodeId, int] = {}
        self._per_node_messages: Dict[NodeId, int] = {}

    @property
    def deployment(self) -> Deployment:
        """The deployment this channel serves."""
        return self._deployment

    @property
    def failure_model(self) -> FailureModel:
        """The failure model currently in force."""
        return self._failure_model

    def set_failure_model(self, model: FailureModel) -> None:
        """Swap the failure model (used by scheduled/timeline experiments).

        Invalidates every outstanding :class:`DeliveryPlan`: planned
        outcomes were drawn against the old model's loss rates.
        """
        self._failure_model = model
        self._model_version += 1

    def bump_model_version(self) -> None:
        """Invalidate every outstanding :class:`DeliveryPlan` in place.

        Called when something a plan was drawn against changed *other* than
        the failure model — node churn removes or adds (sender, receiver)
        edges, so outcomes planned over the old membership must never be
        replayed. Schemes rebuild their plans at the next block anyway;
        this makes replaying a stale one a loud error instead of a silent
        wrong answer.
        """
        self._model_version += 1

    def account_control(
        self, sender: NodeId, words: int, messages: int = 1
    ) -> None:
        """Bill a control transmission (e.g. a tree-repair handshake).

        Control traffic — parent adoption after churn, probes — costs
        energy like any other send: it lands in the cumulative per-node
        load maps (which feed :meth:`per_node_words` and the end-of-run
        energy report) and in the current log. No delivery is drawn:
        control handshakes are acknowledged exchanges, not payloads whose
        loss the schemes model.

        When a delayed-control fault is active, the log is billed now but
        the per-node load update is deferred (the chaos runtime replays it
        at the release epoch) — the asymmetry a billing-conservation audit
        exists to catch.
        """
        self.log.transmissions += 1
        self.log.words_sent += words
        self.log.messages_sent += messages
        chaos = self.chaos
        if chaos is not None and chaos.defer_control(sender, words, messages):
            return
        self._per_node_words[sender] = (
            self._per_node_words.get(sender, 0) + words
        )
        self._per_node_messages[sender] = (
            self._per_node_messages.get(sender, 0) + messages
        )

    def loss_rate(self, sender: NodeId, receiver: NodeId, epoch: int) -> float:
        """The loss probability for one (sender -> receiver) attempt."""
        return self._failure_model.loss_rate(
            self._deployment, sender, receiver, epoch
        )

    def delivered(
        self, sender: NodeId, receiver: NodeId, epoch: int, attempt: int = 0
    ) -> bool:
        """Draw whether one transmission attempt is received.

        Deterministic in (seed, sender, receiver, epoch, attempt).
        """
        chaos = self.chaos
        if chaos is not None:
            forced = chaos.deliver_override(sender, receiver, epoch)
            if forced is not None:
                return forced
        loss = self.loss_rate(sender, receiver, epoch)
        if loss <= 0.0:
            return True
        if loss >= 1.0:
            return False
        draw = hash_unit("channel", self._seed, sender, receiver, epoch, attempt)
        return draw >= loss

    def transmit(
        self,
        sender: NodeId,
        receivers: Iterable[NodeId],
        epoch: int,
        words: int,
        messages: int = 1,
        attempts: int = 1,
    ) -> List[NodeId]:
        """Perform one logical transmission and return who received it.

        A broadcast to k receivers is ONE physical transmission (the radio
        medium is shared); each receiver draws delivery independently. With
        ``attempts > 1`` (retransmissions, Figure 9b) every attempt is a fresh
        physical transmission and a receiver hears the payload if *any*
        attempt reaches it.

        Args:
            sender: transmitting node.
            receivers: nodes listening for this transmission.
            epoch: current epoch (keys the loss draw).
            words: payload size in 32-bit words (for energy accounting).
            messages: number of TinyDB messages this payload occupies.
            attempts: total send attempts (1 = no retransmission).

        Returns:
            The sorted list of receivers that got the payload.
        """
        receiver_list = list(receivers)
        self.log.transmissions += attempts
        self.log.words_sent += words * attempts
        self.log.messages_sent += messages * attempts
        self._per_node_words[sender] = (
            self._per_node_words.get(sender, 0) + words * attempts
        )
        self._per_node_messages[sender] = (
            self._per_node_messages.get(sender, 0) + messages * attempts
        )
        heard: List[NodeId] = []
        for receiver in receiver_list:
            success = any(
                self.delivered(sender, receiver, epoch, attempt)
                for attempt in range(attempts)
            )
            if success:
                heard.append(receiver)
                self.log.deliveries += 1
            else:
                self.log.drops += 1
        return sorted(heard)

    def transmit_batch(
        self, transmissions: Sequence[Transmission], epoch: int
    ) -> List[List[NodeId]]:
        """Draw delivery outcomes for a whole level of transmissions at once.

        Bit-identical to calling :meth:`transmit` once per item in order:
        every (sender, receiver, epoch, attempt) draw uses the same key as
        the scalar path, and accounting is applied in the same order — only
        the Bernoulli draws are vectorized (numpy when available). Results
        are returned in the order the transmissions were given.
        """
        log = self.log
        per_words = self._per_node_words
        per_messages = self._per_node_messages
        # Accounting and pair flattening in transmission order (matches the
        # scalar path's dict insertion and counter order).
        senders: List[NodeId] = []
        receivers: List[NodeId] = []
        attempts_per_pair: List[int] = []
        spans: List[Tuple[int, int]] = []
        for item in transmissions:
            sender = item.sender
            attempts = item.attempts
            log.transmissions += attempts
            log.words_sent += item.words * attempts
            log.messages_sent += item.messages * attempts
            per_words[sender] = per_words.get(sender, 0) + item.words * attempts
            per_messages[sender] = (
                per_messages.get(sender, 0) + item.messages * attempts
            )
            start = len(senders)
            for receiver in item.receivers:
                senders.append(sender)
                receivers.append(receiver)
                attempts_per_pair.append(attempts)
            spans.append((start, len(senders)))

        success = self._delivery_outcomes(
            senders, receivers, attempts_per_pair, epoch
        )

        heard_lists: List[List[NodeId]] = []
        for (start, stop) in spans:
            heard = [receivers[i] for i in range(start, stop) if success[i]]
            log.deliveries += len(heard)
            log.drops += (stop - start) - len(heard)
            heard_lists.append(sorted(heard))
        return heard_lists

    def plan_epochs(
        self,
        levels: Sequence[Sequence[Transmission]],
        epochs: Sequence[int],
    ) -> DeliveryPlan:
        """Precompute every delivery outcome for a block of epochs.

        ``levels`` lists, per transmission level, the transmissions that
        will be queued each epoch of the block; only sender, receivers and
        attempts matter (payload words/messages vary per epoch and do not
        affect delivery). The returned plan backs
        :meth:`transmit_epochs` and stays valid until the level structure
        or the failure model changes.
        """
        return DeliveryPlan(self, levels, epochs)

    def account_bulk(
        self,
        words_by_node: Dict[NodeId, int],
        messages_by_node: Dict[NodeId, int],
    ) -> None:
        """Merge block-level per-node billing into the cumulative load maps.

        The fused kernels bill a whole epoch block per node in one pass and
        hand the totals here; epoch-level counters (the
        :class:`TransmissionLog` fields) stay with the kernels, which build
        one log per epoch for the simulator's energy accounting. Addition is
        commutative, so merging block totals is identical to the per-epoch
        path's incremental ``get(node, 0) +`` updates.
        """
        per_words = self._per_node_words
        per_messages = self._per_node_messages
        for node, words in words_by_node.items():
            per_words[node] = per_words.get(node, 0) + int(words)
        for node, messages in messages_by_node.items():
            per_messages[node] = per_messages.get(node, 0) + int(messages)

    def transmit_epochs(
        self,
        transmissions: Sequence[Transmission],
        epoch: int,
        plan: DeliveryPlan,
        level: int,
        checked: bool = False,
    ) -> List[List[NodeId]]:
        """:meth:`transmit_batch` against outcomes precomputed by ``plan``.

        Bit-identical to ``transmit_batch(transmissions, epoch)``:
        accounting runs in the same transmission order and the success
        flags were drawn from the same keyed hashes — only *when* the draws
        happened differs (once per block instead of once per epoch).
        ``checked=True`` promises the caller already validated this level's
        structure against the plan for the current block (one
        :meth:`DeliveryPlan.level_table` call), skipping the per-epoch
        re-walk.
        """
        success, spans, flat_receivers = plan.outcomes(
            self, level, epoch, transmissions, check=not checked
        )
        # Scalar-indexing a numpy column pays ~100ns per element; the heard
        # loop below touches every pair, so convert once.
        tolist = getattr(success, "tolist", None)
        if tolist is not None:
            success = tolist()
        log = self.log
        per_words = self._per_node_words
        per_messages = self._per_node_messages
        for item in transmissions:
            sender = item.sender
            attempts = item.attempts
            log.transmissions += attempts
            log.words_sent += item.words * attempts
            log.messages_sent += item.messages * attempts
            per_words[sender] = per_words.get(sender, 0) + item.words * attempts
            per_messages[sender] = (
                per_messages.get(sender, 0) + item.messages * attempts
            )
        heard_lists: List[List[NodeId]] = []
        for (start, stop) in spans:
            heard = [flat_receivers[i] for i in range(start, stop) if success[i]]
            log.deliveries += len(heard)
            log.drops += (stop - start) - len(heard)
            heard_lists.append(sorted(heard))
        return heard_lists

    def _delivery_outcomes(
        self,
        senders: Sequence[NodeId],
        receivers: Sequence[NodeId],
        attempts_per_pair: Sequence[int],
        epoch: int,
    ) -> Sequence[bool]:
        """Per-pair success flags: any attempt's draw clears the loss rate."""
        count = len(senders)
        if count == 0:
            return []
        if _np is None:
            return [
                any(
                    self.delivered(senders[i], receivers[i], epoch, attempt)
                    for attempt in range(attempts_per_pair[i])
                )
                for i in range(count)
            ]
        batch_rates = getattr(self._failure_model, "loss_rate_batch", None)
        if batch_rates is not None:
            loss = batch_rates(self._deployment, senders, receivers, epoch)
        else:
            loss = [
                self.loss_rate(sender, receiver, epoch)
                for sender, receiver in zip(senders, receivers)
            ]
        loss_array = _np.asarray(loss, dtype=_np.float64)
        # loss <= 0 always delivers; loss >= 1 never does — the comparison
        # draw >= loss yields exactly those outcomes, so no special cases.
        success = loss_array <= 0.0
        if not bool(success.all()):
            attempts_array = _np.asarray(attempts_per_pair, dtype=_np.int64)
            epoch_column = _np.full(count, epoch, dtype=_np.int64)
            for attempt in range(int(attempts_array.max())):
                undecided = (
                    (~success) & (attempts_array > attempt) & (loss_array < 1.0)
                )
                if not bool(undecided.any()):
                    break
                draws = hash_unit_batch(
                    ("channel", self._seed),
                    senders,
                    receivers,
                    epoch_column,
                    _np.full(count, attempt, dtype=_np.int64),
                )
                success |= undecided & (draws >= loss_array)
        chaos = self.chaos
        if chaos is not None:
            # Draws are pure keyed hashes, so forcing an outcome after the
            # sweep is identical to the scalar path's pre-draw short-circuit.
            chaos.override_pairs(success, senders, receivers, epoch)
        return success

    def per_node_words(self) -> Dict[NodeId, int]:
        """Cumulative words transmitted per node (load accounting).

        Deployment-complete: sensors that never transmitted report an
        explicit zero, so load maps (Figure 8 style) show dead or silent
        nodes instead of silently dropping them.
        """
        complete = {node: 0 for node in self._deployment.sensor_ids}
        complete.update(self._per_node_words)
        return complete

    def per_node_messages(self) -> Dict[NodeId, int]:
        """Cumulative messages transmitted per node (deployment-complete)."""
        complete = {node: 0 for node in self._deployment.sensor_ids}
        complete.update(self._per_node_messages)
        return complete

    def reset_log(self) -> TransmissionLog:
        """Return the current log and start a fresh one."""
        finished = self.log
        self.log = TransmissionLog()
        return finished
