"""Radio models: which node pairs can hear each other, and how well.

The paper's simulator (TAG's) uses a disc model: two motes are neighbours if
they are within communication range. We provide that (:class:`DiscRadio`)
plus a quality-annotated variant (:class:`QualityDiscRadio`) whose per-link
base loss grows with distance — used by the LabData reconstruction where the
paper reports realistic, distance-dependent loss.

A radio model turns a :class:`~repro.network.placement.Deployment` into an
undirected connectivity graph; the *rings* topology and all spanning trees
are built over that graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.errors import ConfigurationError, TopologyError
from repro.network.placement import BASE_STATION, Deployment, NodeId


@dataclass(frozen=True)
class DiscRadio:
    """Unit-disc connectivity: nodes within ``radio_range`` are neighbours."""

    radio_range: float

    def __post_init__(self) -> None:
        if self.radio_range <= 0:
            raise ConfigurationError("radio_range must be positive")

    def connectivity(self, deployment: Deployment) -> nx.Graph:
        """Build the undirected connectivity graph for a deployment.

        Raises:
            TopologyError: if any sensor is unreachable from the base station
                (disconnected deployments cannot aggregate at all).
        """
        graph = nx.Graph()
        graph.add_nodes_from(deployment.node_ids)
        nodes = deployment.node_ids
        # A simple spatial grid keeps this O(n * neighbourhood) instead of O(n^2).
        cell = self.radio_range
        buckets: Dict[Tuple[int, int], List[NodeId]] = {}
        for node in nodes:
            x, y = deployment.position(node)
            buckets.setdefault((int(x // cell), int(y // cell)), []).append(node)
        for node in nodes:
            x, y = deployment.position(node)
            cx, cy = int(x // cell), int(y // cell)
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for other in buckets.get((cx + dx, cy + dy), ()):
                        if other <= node:
                            continue
                        if deployment.distance(node, other) <= self.radio_range:
                            graph.add_edge(node, other)
        _require_connected(graph, deployment)
        return graph

    def base_loss(self, deployment: Deployment, a: NodeId, b: NodeId) -> float:
        """Baseline per-link loss before failure models; 0 for a pure disc."""
        return 0.0


@dataclass(frozen=True)
class QualityDiscRadio:
    """Disc connectivity with distance-dependent baseline link loss.

    Loss rises linearly from ``min_loss`` at distance 0 to ``max_loss`` at the
    edge of the communication range. This mimics the measured behaviour of
    real mote radios (Zhao & Govindan, SenSys'03 — the paper's citation [23]
    for "up to 30% loss rate is common").
    """

    radio_range: float
    min_loss: float = 0.02
    max_loss: float = 0.30

    def __post_init__(self) -> None:
        if self.radio_range <= 0:
            raise ConfigurationError("radio_range must be positive")
        if not 0.0 <= self.min_loss <= self.max_loss <= 1.0:
            raise ConfigurationError("need 0 <= min_loss <= max_loss <= 1")

    def connectivity(self, deployment: Deployment) -> nx.Graph:
        """Same disc connectivity as :class:`DiscRadio`."""
        return DiscRadio(self.radio_range).connectivity(deployment)

    def base_loss(self, deployment: Deployment, a: NodeId, b: NodeId) -> float:
        """Distance-proportional baseline loss for the (a, b) link."""
        fraction = min(1.0, deployment.distance(a, b) / self.radio_range)
        return self.min_loss + fraction * (self.max_loss - self.min_loss)


def _require_connected(graph: nx.Graph, deployment: Deployment) -> None:
    """Raise if some sensor cannot reach the base station."""
    reachable: Set[NodeId] = set(nx.node_connected_component(graph, BASE_STATION))
    missing = set(deployment.node_ids) - reachable
    if missing:
        sample = sorted(missing)[:5]
        raise TopologyError(
            f"{len(missing)} node(s) unreachable from the base station "
            f"(e.g. {sample}); increase radio range or density"
        )


def link_set(graph: nx.Graph) -> FrozenSet[Tuple[NodeId, NodeId]]:
    """Return the canonical (min, max) edge set of a connectivity graph."""
    return frozenset((min(a, b), max(a, b)) for a, b in graph.edges)
