"""Network lifetime: turning energy accounting into battery predictions.

The paper's opening premise: "A paramount concern in these sensor networks
is to conserve the limited battery power, as it is usually impractical to
install new batteries in a deployed sensor network." The message/word
accounting in :mod:`repro.network.energy` measures the *rate* of spend;
this module turns rates into **lifetimes** — the quantity a deployment
actually plans around:

* :class:`MoteEnergyModel` — the full duty-cycle bill: transmission (from
  the existing model) plus reception, idle listening during the node's
  receive windows, and the (orders-of-magnitude smaller [1, 18]) CPU cost.
* :class:`LifetimeReport` — epochs until the first mote dies, until any
  fraction of the network dies, and the spend-ranked hotspot list (in tree
  aggregation these are the nodes with big subtrees; rotating or
  multi-pathing them is exactly what robustness buys).
* :func:`lifetime_from_run` — one call from a simulator
  :class:`~repro.network.simulator.RunResult` to a report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.placement import NodeId
from repro.network.simulator import RunResult


@dataclass(frozen=True)
class MoteEnergyModel:
    """Per-epoch energy bill of one mote.

    Attributes:
        transmit: the message/byte transmission model.
        receive_per_message_uj: cost to receive and decode one message.
        listen_per_epoch_uj: idle-listening cost of the node's receive
            window each epoch (radios burn power listening even when
            nothing arrives — the reason duty cycling exists).
        cpu_per_epoch_uj: local computation; "several orders of magnitude"
            below communication per the paper, but billed for honesty.
    """

    transmit: EnergyModel = field(default_factory=EnergyModel)
    receive_per_message_uj: float = 8.0
    listen_per_epoch_uj: float = 30.0
    cpu_per_epoch_uj: float = 0.05

    def __post_init__(self) -> None:
        if (
            self.receive_per_message_uj < 0
            or self.listen_per_epoch_uj < 0
            or self.cpu_per_epoch_uj < 0
        ):
            raise ConfigurationError("energy costs cannot be negative")

    def epoch_cost_uj(
        self,
        transmit_messages: float,
        transmit_words: float,
        received_messages: float,
    ) -> float:
        """One epoch's total microjoules for one mote."""
        return (
            self.transmit.transmission_cost(transmit_messages, transmit_words)
            + received_messages * self.receive_per_message_uj
            + self.listen_per_epoch_uj
            + self.cpu_per_epoch_uj
        )


@dataclass
class LifetimeReport:
    """Battery-lifetime predictions for one deployment + workload."""

    #: node -> predicted epochs until its battery is exhausted.
    epochs_by_node: Dict[NodeId, float]
    battery_uj: float

    @property
    def first_death_epochs(self) -> float:
        """Epochs until the first mote dies (the usual lifetime metric)."""
        return min(self.epochs_by_node.values(), default=math.inf)

    @property
    def last_death_epochs(self) -> float:
        """Epochs until the final mote dies."""
        return max(self.epochs_by_node.values(), default=math.inf)

    def epochs_to_fraction_dead(self, fraction: float) -> float:
        """Epochs until ``fraction`` of the motes are exhausted."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        deaths = sorted(self.epochs_by_node.values())
        index = max(0, math.ceil(fraction * len(deaths)) - 1)
        return deaths[index]

    def alive_fraction(self, epoch: float) -> float:
        """Fraction of motes still alive at ``epoch``."""
        if not self.epochs_by_node:
            return 0.0
        alive = sum(1 for death in self.epochs_by_node.values() if death > epoch)
        return alive / len(self.epochs_by_node)

    def hotspots(self, count: int = 5) -> List[Tuple[NodeId, float]]:
        """The ``count`` shortest-lived motes, sorted soonest-death first."""
        ranked = sorted(self.epochs_by_node.items(), key=lambda item: item[1])
        return ranked[:count]

    def render(self) -> str:
        lines = [
            f"battery: {self.battery_uj / 1e6:.1f} J per mote",
            f"first death: {self.first_death_epochs:,.0f} epochs",
            f"half dead:   {self.epochs_to_fraction_dead(0.5):,.0f} epochs",
            f"last death:  {self.last_death_epochs:,.0f} epochs",
            "hotspots (node: epochs):",
        ]
        for node, epochs in self.hotspots():
            lines.append(f"  {node}: {epochs:,.0f}")
        return "\n".join(lines)


def predict_lifetimes(
    per_node_uj_per_epoch: Dict[NodeId, float],
    battery_j: float = 20.0,
) -> LifetimeReport:
    """Lifetimes from per-epoch spend rates.

    Args:
        per_node_uj_per_epoch: each mote's average microjoules per epoch.
        battery_j: usable battery capacity in joules (2 AA cells at
            realistic DC-DC efficiency are in the low tens of kJ; the small
            default keeps example numbers readable — only ratios between
            schemes matter, as with every energy figure here).
    """
    if battery_j <= 0:
        raise ConfigurationError("battery capacity must be positive")
    battery_uj = battery_j * 1e6
    epochs_by_node: Dict[NodeId, float] = {}
    for node, rate in per_node_uj_per_epoch.items():
        if rate < 0:
            raise ConfigurationError(f"node {node} has negative energy rate")
        epochs_by_node[node] = battery_uj / rate if rate > 0 else math.inf
    return LifetimeReport(epochs_by_node=epochs_by_node, battery_uj=battery_uj)


def lifetime_from_run(
    run: RunResult,
    epochs: int,
    mote_model: Optional[MoteEnergyModel] = None,
    battery_j: float = 20.0,
    received_messages_per_epoch: float = 2.0,
) -> LifetimeReport:
    """Predict lifetimes from a simulator run.

    The run's per-node transmission energy is averaged over ``epochs`` and
    topped up with the duty-cycle costs (listening, receiving, CPU) that the
    channel log cannot see.

    Args:
        run: a :class:`RunResult` from the simulator.
        epochs: how many epochs the run's accounting covers.
        mote_model: duty-cycle bill; defaults to :class:`MoteEnergyModel()`.
        battery_j: usable battery capacity in joules.
        received_messages_per_epoch: mean messages a mote receives per
            epoch (tree nodes hear their children; ring nodes several
            downstream neighbours).
    """
    if epochs <= 0:
        raise ConfigurationError("epochs must be positive")
    model = mote_model or MoteEnergyModel()
    overhead = (
        received_messages_per_epoch * model.receive_per_message_uj
        + model.listen_per_epoch_uj
        + model.cpu_per_epoch_uj
    )
    rates = {
        node: uj / epochs + overhead
        for node, uj in run.energy.per_node_uj.items()
    }
    return predict_lifetimes(rates, battery_j=battery_j)
