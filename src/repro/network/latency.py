"""Query-latency model (Sections 1, 2, and 7.4.3's footnote 6).

The paper treats latency as a first-class metric next to energy and error
(Table 1's last column) and gives the governing relation in Section 2:

    "The latency of a query result is dominated by the product of the epoch
    duration and the number of levels."

with the epoch constraint that it "must be sufficiently long such that each
sensor in a level can transmit its message once without interference from
other sensors' transmissions" — i.e. transmissions within a level are
serialised. Footnote 6 adds the retransmission economics used to design the
Figure 9b experiment:

    "two retransmissions would incur more latency than a single transmission
    of a 3 times longer message, because each retransmission occurs after
    waiting for the intended receiver's acknowledgment. Other limitations of
    retransmission include a reduction in channel capacity (by ~25%) and the
    need for bi-directional communication channels."

:class:`LatencyModel` turns those statements into numbers: per-level epoch
durations from level populations and message counts, end-to-end query
latency as the sum over levels, and the retransmission-vs-longer-message
comparison. Everything is relative — the paper never publishes absolute
timings — so only ratios between schemes are meaningful, exactly as with the
energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.network.rings import RingsTopology


@dataclass(frozen=True)
class LatencyModel:
    """Relative timing constants for the epoch schedule.

    Attributes:
        slot_ms: airtime of one TinyDB message.
        ack_wait_ms: time a sender waits for an acknowledgment before each
            retransmission attempt (footnote 6's reason retransmissions are
            slower than longer messages).
        capacity_penalty: fractional channel-capacity reduction when
            acknowledgments are in use (footnote 6 cites ~25% [23]); applied
            as a slowdown of every slot in retransmitting configurations.
    """

    slot_ms: float = 10.0
    ack_wait_ms: float = 15.0
    capacity_penalty: float = 0.25

    def __post_init__(self) -> None:
        if self.slot_ms <= 0:
            raise ConfigurationError("slot_ms must be positive")
        if self.ack_wait_ms < 0:
            raise ConfigurationError("ack_wait_ms cannot be negative")
        if not 0.0 <= self.capacity_penalty < 1.0:
            raise ConfigurationError("capacity_penalty must be in [0, 1)")

    def _effective_slot(self, attempts: int) -> float:
        """Slot airtime, slowed by the ack overhead when retransmitting."""
        if attempts > 1:
            return self.slot_ms / (1.0 - self.capacity_penalty)
        return self.slot_ms

    def transmission_ms(self, messages: int, attempts: int = 1) -> float:
        """Time for one node's full payload, including retransmissions.

        Each of the ``attempts`` sends ships all ``messages`` packets;
        between consecutive attempts the sender waits out an ack timeout.
        A single longer transmission pays airtime only — this asymmetry is
        footnote 6's argument.
        """
        if messages < 0:
            raise ConfigurationError("messages cannot be negative")
        if attempts < 1:
            raise ConfigurationError("attempts must be at least 1")
        airtime = messages * self._effective_slot(attempts) * attempts
        ack_waits = (attempts - 1) * self.ack_wait_ms
        return airtime + ack_waits

    def epoch_ms(
        self, level_population: int, messages_per_node: int, attempts: int = 1
    ) -> float:
        """Duration of one level's transmission window.

        Transmissions within a level are serialised (the interference
        constraint), so the window is the level population times one node's
        transmission time.
        """
        if level_population < 0:
            raise ConfigurationError("level_population cannot be negative")
        return level_population * self.transmission_ms(messages_per_node, attempts)

    def query_latency_ms(
        self,
        level_populations: Sequence[int],
        messages_per_node: int = 1,
        attempts: int = 1,
    ) -> float:
        """End-to-end latency of one aggregation wave.

        ``level_populations[i]`` is the number of transmitting nodes at ring
        i+1 (the base station does not transmit). The wave crosses the levels
        sequentially — the paper's "product of the epoch duration and the
        number of levels", generalised to non-uniform level sizes.
        """
        return sum(
            self.epoch_ms(population, messages_per_node, attempts)
            for population in level_populations
        )

    def uniform_query_latency_ms(
        self,
        depth: int,
        nodes_per_level: int,
        messages_per_node: int = 1,
        attempts: int = 1,
    ) -> float:
        """The paper's simplified relation: epoch duration x number of levels."""
        if depth < 0:
            raise ConfigurationError("depth cannot be negative")
        return depth * self.epoch_ms(nodes_per_level, messages_per_node, attempts)


def level_populations(rings: RingsTopology) -> List[int]:
    """Transmitting-node counts per ring, deepest ring first.

    Matches the simulator's transmission order
    (:meth:`RingsTopology.levels_descending`).
    """
    return [len(rings.nodes_at_level(level)) for level in rings.levels_descending()]


def scheme_latency_ms(
    rings: RingsTopology,
    model: Optional[LatencyModel] = None,
    messages_per_node: int = 1,
    attempts: int = 1,
) -> float:
    """Latency of one aggregation wave over ``rings`` for a given scheme shape.

    Both families share the rings schedule (tree links are rings links in
    this library), so a scheme's latency is determined by its per-node
    message count and retransmission policy:

    * TAG, Count/Sum: ``messages_per_node=1, attempts=1``;
    * TAG with two retransmissions (Figure 9b): ``attempts=3``;
    * multi-path frequent items (3x payloads, Section 7.4.3):
      ``messages_per_node=3``.
    """
    model = model or LatencyModel()
    return model.query_latency_ms(
        level_populations(rings), messages_per_node, attempts
    )


@dataclass(frozen=True)
class RetransmissionComparison:
    """Footnote 6's comparison, made quantitative."""

    retransmit_ms: float
    longer_message_ms: float

    @property
    def retransmission_overhead(self) -> float:
        """How much slower retransmitting is than one longer transmission."""
        if self.longer_message_ms == 0:
            return float("inf")
        return self.retransmit_ms / self.longer_message_ms


def compare_retransmission_strategies(
    model: Optional[LatencyModel] = None,
    retransmissions: int = 2,
    size_factor: int = 3,
    messages: int = 1,
) -> RetransmissionComparison:
    """Quantify footnote 6: k retransmissions vs one size_factor-x message.

    With the default constants, two retransmissions of a one-message payload
    cost more than a single transmission of a three-message payload — the
    ack waits and the capacity penalty are what tree schemes pay to approach
    multi-path robustness in Figure 9b.
    """
    model = model or LatencyModel()
    retransmit = model.transmission_ms(messages, attempts=1 + retransmissions)
    longer = model.transmission_ms(messages * size_factor, attempts=1)
    return RetransmissionComparison(
        retransmit_ms=retransmit, longer_message_ms=longer
    )


def latency_table(
    rings: RingsTopology, model: Optional[LatencyModel] = None
) -> Dict[str, float]:
    """The Table 1 latency column, quantified for one rings topology.

    Returns one relative latency figure per approach. All three Count rows
    are 'minimal' in the paper because they share the per-node single
    transmission; the frequent-items rows separate (multi-path payloads are
    ~3 messages, retransmitting trees pay ack waits).
    """
    model = model or LatencyModel()
    return {
        "tree (count)": scheme_latency_ms(rings, model),
        "multi-path (count)": scheme_latency_ms(rings, model),
        "tributary-delta (count)": scheme_latency_ms(rings, model),
        "tree (freq items, 2 retx)": scheme_latency_ms(rings, model, attempts=3),
        "multi-path (freq items)": scheme_latency_ms(
            rings, model, messages_per_node=3
        ),
    }
