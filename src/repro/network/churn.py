"""Node churn: scheduled death/join, lifetime-coupled death, blackouts.

The paper's robustness experiments (Sections 4-5, Figure 6) perturb only the
*links*: the routing tree and the rings are frozen at construction time.
This module adds the scenario axis its premise actually worries about —
"it is usually impractical to install new batteries in a deployed sensor
network" — **nodes leaving and entering the network mid-run**:

* :class:`ScheduledChurn` — an explicit timeline of death/join events.
* :class:`RandomDeaths` — a deterministic hash-keyed sample of the live
  population dies at one epoch (the classic "kill k% of the network" churn
  experiment).
* :class:`RegionalBlackout` — every node in a rectangle dies at one epoch
  and optionally rejoins later (the node-level twin of
  :class:`~repro.network.failures.RegionalLoss`).
* :class:`LifetimeChurn` — lifetime-coupled death: a node dies the moment
  its cumulative transmission spend plus duty-cycle overhead exhausts its
  battery, closing the loop with :mod:`repro.network.lifetime` (hotspot
  nodes with big subtrees die first, exactly the effect rotating or
  multi-pathing them is meant to prevent).

Models are *pure*: :meth:`ChurnModel.events_in` maps a boundary window plus
a :class:`ChurnContext` (live set, deployment, cumulative per-node energy)
to a :class:`ChurnBatch`, drawing any randomness from keyed hashes — a
churn timeline is fully determined by the run config, like every other draw
in this repository.

:class:`DynamicMembership` is the runtime that applies them: at each churn
boundary (the simulator calls :meth:`advance` at adaptation-interval
boundaries, so the epoch-blocked engine keeps working) it collects the due
events, recomputes rings over the survivors
(:meth:`~repro.network.rings.RingsTopology.build_restricted`), repairs the
routing tree (:func:`repro.tree.repair.repair_tree`), charges the repair
messages to the channel's per-node energy maps, and bumps the channel's
model version so any outstanding
:class:`~repro.network.links.DeliveryPlan` is invalidated. Schemes receive
the resulting :class:`MembershipUpdate` through their
``on_membership_change`` hook and rebuild their per-level structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro._hashing import hash_unit, stream_rng
from repro.errors import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.placement import BASE_STATION, Deployment, NodeId, Point
from repro.network.rings import RingsTopology
from repro.tree.repair import (
    REPAIR_MESSAGES,
    REPAIR_WORDS,
    RepairReport,
    repair_tree,
)
from repro.tree.structure import Tree


@dataclass(frozen=True)
class ChurnBatch:
    """Deaths and joins due at one boundary (either may be empty)."""

    deaths: Tuple[NodeId, ...] = ()
    joins: Tuple[NodeId, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.deaths or self.joins)


@dataclass(frozen=True)
class ChurnContext:
    """What a churn model may condition on, snapshotted at a boundary.

    Attributes:
        epoch: the boundary's absolute epoch.
        epochs_elapsed: epochs executed so far in this run (duty-cycle
            overhead accrues per epoch, not per absolute epoch number).
        alive: the currently live node ids (base station included).
        deployment: node positions (regional models select by rectangle).
        per_node_uj: cumulative *transmission* energy per node since the
            run began (lifetime models add duty-cycle overhead on top).
    """

    epoch: int
    epochs_elapsed: int
    alive: FrozenSet[NodeId]
    deployment: Deployment
    per_node_uj: Mapping[NodeId, float]


class ChurnModel(Protocol):
    """Maps boundary windows to the death/join events due in them.

    ``events_in(start, end, ctx)`` returns the events scheduled in the
    half-open-below window ``(start, end]``; ``start=None`` marks the run's
    first boundary, which collects everything due at or before ``end``
    (models whose first event predates the run's start epoch apply
    immediately). Implementations must be deterministic functions of
    ``(start, end, ctx)`` — any randomness comes from keyed hashes.

    Membership only changes at boundaries, so a batch is the window's *net
    state*: when one node has several events inside one window, the model
    reports only the latest (a death at 101 and a rejoin at 105 collapse to
    "alive" at the 110 boundary). A node must never appear in both
    ``deaths`` and ``joins`` of one batch — the runtime rejects such
    batches loudly.

    Epochs are absolute, the same convention as
    :class:`~repro.network.failures.FailureSchedule` phases: a run
    measuring from ``start_epoch=1000`` (the runner's default offset)
    applies an event at epoch 100 at its very first boundary. Timeline
    experiments that count epochs from zero set ``start_epoch=0``, exactly
    like the Figure 6 configs.
    """

    def events_in(
        self, start: Optional[int], end: int, ctx: ChurnContext
    ) -> ChurnBatch:
        ...


def _window_contains(start: Optional[int], end: int, epoch: int) -> bool:
    """Whether an event at ``epoch`` is due in the window ``(start, end]``."""
    return epoch <= end and (start is None or epoch > start)


@dataclass(frozen=True)
class ScheduledChurn:
    """An explicit timeline: ``deaths``/``joins`` are (epoch, nodes) pairs."""

    deaths: Tuple[Tuple[int, Tuple[NodeId, ...]], ...] = ()
    joins: Tuple[Tuple[int, Tuple[NodeId, ...]], ...] = ()

    @classmethod
    def of(
        cls,
        deaths: Sequence[Tuple[int, Sequence[NodeId]]] = (),
        joins: Sequence[Tuple[int, Sequence[NodeId]]] = (),
    ) -> "ScheduledChurn":
        """Build from any nested sequences (normalised to tuples)."""
        return cls(
            deaths=tuple((int(e), tuple(nodes)) for e, nodes in deaths),
            joins=tuple((int(e), tuple(nodes)) for e, nodes in joins),
        )

    def events_in(
        self, start: Optional[int], end: int, ctx: ChurnContext
    ) -> ChurnBatch:
        # Net state per node: the latest event in the window wins (a death
        # and a rejoin scheduled at the same epoch resolve to the death).
        latest: Dict[NodeId, Tuple[int, int]] = {}
        for is_death, timeline in ((1, self.deaths), (0, self.joins)):
            for epoch, nodes in timeline:
                if not _window_contains(start, end, epoch):
                    continue
                for node in nodes:
                    key = (epoch, is_death)
                    if node not in latest or key > latest[node]:
                        latest[node] = key
        deaths = tuple(
            sorted(n for n, (_, is_death) in latest.items() if is_death)
        )
        joins = tuple(
            sorted(n for n, (_, is_death) in latest.items() if not is_death)
        )
        return ChurnBatch(deaths=deaths, joins=joins)


@dataclass(frozen=True)
class RandomDeaths:
    """``count`` hash-sampled live sensors die at ``epoch``.

    The sample is drawn from the live population at the boundary that
    applies the event, via a keyed stream RNG — deterministic in
    ``(seed, epoch)`` and independent of the channel's draws.
    """

    epoch: int
    count: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError("death count cannot be negative")

    def events_in(
        self, start: Optional[int], end: int, ctx: ChurnContext
    ) -> ChurnBatch:
        if not _window_contains(start, end, self.epoch):
            return ChurnBatch()
        population = sorted(ctx.alive - {BASE_STATION})
        rng = stream_rng("churn-deaths", self.seed, self.epoch)
        count = min(self.count, len(population))
        return ChurnBatch(deaths=tuple(sorted(rng.sample(population, count))))


@dataclass(frozen=True)
class RegionalBlackout:
    """Every node in a rectangle dies at ``epoch``; optionally rejoins.

    The node-level twin of the paper's ``Regional(p1, p2)`` link-failure
    model: instead of the region's *messages* getting lost, the region's
    *nodes* go down (a power cut, a storm). With ``rejoin_epoch`` set the
    same nodes come back, which exercises join handling and re-ringing in
    one scenario.
    """

    epoch: int
    lower: Point = (0.0, 0.0)
    upper: Point = (10.0, 10.0)
    rejoin_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lower[0] > self.upper[0] or self.lower[1] > self.upper[1]:
            raise ConfigurationError("blackout rectangle has negative extent")
        if self.rejoin_epoch is not None and self.rejoin_epoch <= self.epoch:
            raise ConfigurationError("rejoin must happen after the blackout")

    def _region(self, deployment: Deployment) -> Tuple[NodeId, ...]:
        return tuple(deployment.nodes_in_rect(self.lower, self.upper))

    def events_in(
        self, start: Optional[int], end: int, ctx: ChurnContext
    ) -> ChurnBatch:
        # The rejoin is validated to be later than the blackout, so when
        # both land in one window the net state is "alive": either the
        # region was never down at any executed boundary (both predate the
        # run) or it recovers at this one.
        if self.rejoin_epoch is not None and _window_contains(
            start, end, self.rejoin_epoch
        ):
            return ChurnBatch(joins=self._region(ctx.deployment))
        if _window_contains(start, end, self.epoch):
            return ChurnBatch(deaths=self._region(ctx.deployment))
        return ChurnBatch()


@dataclass(frozen=True)
class LifetimeChurn:
    """Battery-exhaustion death, coupled to the run's own energy spend.

    A node dies at the first boundary where its cumulative transmission
    energy plus ``overhead_uj_per_epoch * epochs_elapsed`` (idle listening,
    reception, CPU — the duty-cycle bill of
    :class:`repro.network.lifetime.MoteEnergyModel`) reaches the battery.
    Tree hotspots — nodes aggregating large subtrees — spend fastest and
    die first, which is exactly the dynamics the lifetime experiments
    predict statically.
    """

    battery_j: float
    #: MoteEnergyModel defaults: 2 received messages (8 uJ each) + 30 uJ
    #: listening + 0.05 uJ CPU per epoch.
    overhead_uj_per_epoch: float = 46.05

    def __post_init__(self) -> None:
        if self.battery_j <= 0:
            raise ConfigurationError("battery capacity must be positive")
        if self.overhead_uj_per_epoch < 0:
            raise ConfigurationError("overhead cannot be negative")

    def events_in(
        self, start: Optional[int], end: int, ctx: ChurnContext
    ) -> ChurnBatch:
        budget = self.battery_j * 1e6
        overhead = self.overhead_uj_per_epoch * ctx.epochs_elapsed
        dead = tuple(
            sorted(
                node
                for node in ctx.alive
                if node != BASE_STATION
                and ctx.per_node_uj.get(node, 0.0) + overhead >= budget
            )
        )
        return ChurnBatch(deaths=dead)


@dataclass(frozen=True)
class BirthDeathChurn:
    """Memoryless per-epoch birth/death churn (the constant-churn regime).

    At every epoch each live sensor dies with probability ``death_rate``
    and each dead sensor rejoins with probability ``birth_rate`` — the
    birth-death process the ROADMAP's 100k-node tier expects, where churn
    is continuous background noise rather than an episodic event.

    Draws are keyed hashes of ``(seed, node, epoch)``, so the process is a
    pure function of the window: a boundary at epoch ``e`` sees exactly the
    same flips whether the simulator ran blocked or per-epoch, and the
    window's net state is computed by replaying each node's per-epoch flips
    inside ``(start, end]``.
    """

    death_rate: float
    birth_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("death_rate", "birth_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")

    def events_in(
        self, start: Optional[int], end: int, ctx: ChurnContext
    ) -> ChurnBatch:
        if self.death_rate <= 0.0 and self.birth_rate <= 0.0:
            return ChurnBatch()
        first = 0 if start is None else start + 1
        if first > end:
            return ChurnBatch()
        deaths: List[NodeId] = []
        joins: List[NodeId] = []
        for node in ctx.deployment.node_ids:
            if node == BASE_STATION:
                continue
            was_alive = node in ctx.alive
            alive = was_alive
            for epoch in range(first, end + 1):
                draw = hash_unit("churn-birthdeath", self.seed, node, epoch)
                if alive:
                    alive = draw >= self.death_rate
                else:
                    alive = draw < self.birth_rate
            if alive != was_alive:
                (joins if alive else deaths).append(node)
        return ChurnBatch(
            deaths=tuple(sorted(deaths)), joins=tuple(sorted(joins))
        )


# -- the runtime -----------------------------------------------------------


@dataclass(frozen=True)
class MembershipUpdate:
    """One applied churn boundary: who changed and the repaired topology.

    Attributes:
        epoch: the boundary's absolute epoch.
        died: nodes that went down at this boundary, sorted.
        joined: nodes that came (back) up, sorted.
        stranded: live nodes cut off from the base station by the
            re-ringing (they keep sensing — and stay in the ground truth —
            but are unreachable, so they are excluded from the topology).
        alive: every live sensor-capable node id, base station included,
            stranded nodes included.
        rings: the re-rung topology over the live reachable nodes.
        tree: the repaired routing tree over the same nodes.
        repair: what the repair pass did (reattachments + message bill).
    """

    epoch: int
    died: Tuple[NodeId, ...]
    joined: Tuple[NodeId, ...]
    stranded: Tuple[NodeId, ...]
    alive: FrozenSet[NodeId]
    rings: RingsTopology
    tree: Tree
    repair: RepairReport

    def alive_sensors(self) -> List[NodeId]:
        """The live sensor ids (ground-truth population), sorted."""
        return sorted(self.alive - {BASE_STATION})


class DynamicMembership:
    """Owns the live set and rebuilds rings/tree as churn unfolds.

    One instance serves one run (its state is the run's membership
    history). The simulator calls :meth:`advance` at churn boundaries;
    everything else — scheme structure rebuilds — flows from the returned
    :class:`MembershipUpdate` through ``on_membership_change``.
    """

    def __init__(
        self,
        model: ChurnModel,
        deployment: Deployment,
        rings: RingsTopology,
        tree: Tree,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self._model = model
        self._deployment = deployment
        #: The full radio graph; every re-ringing restricts this, so nodes
        #: can rejoin with their original links.
        self._connectivity = rings.connectivity
        #: Explicit override for lifetime billing; when None, the energy
        #: model the simulator passes to :meth:`advance` applies, keeping
        #: churn's battery accounting and the run's energy report on one
        #: cost model.
        self._energy_model = energy_model
        self.rings = rings
        self.tree = tree
        self.alive = set(deployment.node_ids)
        self.stranded: Tuple[NodeId, ...] = ()
        self._last_boundary: Optional[int] = None
        #: Stranded subtree memory: node -> the tree parent it held when it
        #: went dark. When a bridge rejoin makes the node reachable again,
        #: repair re-attaches it to this parent if the link is still valid
        #: under the new rings (wholesale re-admission instead of a
        #: nearest-distance scatter).
        self._dark_parents: Dict[NodeId, NodeId] = {}
        #: Every applied update, in order (experiment diagnostics).
        self.updates: List[MembershipUpdate] = []

    @property
    def num_alive_sensors(self) -> int:
        return len(self.alive) - (BASE_STATION in self.alive)

    def _context(
        self,
        epoch: int,
        epochs_elapsed: int,
        channel,
        energy_model: Optional[EnergyModel],
    ) -> ChurnContext:
        model = self._energy_model or energy_model or EnergyModel()
        per_node_words = channel.per_node_words()
        per_node_messages = channel.per_node_messages()
        per_node_uj: Dict[NodeId, float] = {
            node: model.transmission_cost(
                per_node_messages.get(node, 0), words
            )
            for node, words in per_node_words.items()
        }
        return ChurnContext(
            epoch=epoch,
            epochs_elapsed=epochs_elapsed,
            alive=frozenset(self.alive),
            deployment=self._deployment,
            per_node_uj=per_node_uj,
        )

    def advance(
        self,
        epoch: int,
        epochs_elapsed: int,
        channel,
        energy_model: Optional[EnergyModel] = None,
    ) -> Optional[MembershipUpdate]:
        """Apply the events due at boundary ``epoch``; None if nothing moved.

        On a change: re-ring over the survivors, repair the tree, charge the
        repair handshakes to the channel's per-node energy maps, and bump
        the channel's model version (outstanding delivery plans were drawn
        against edges that no longer exist). ``energy_model`` (normally the
        simulator's) prices the cumulative spend lifetime models see.
        """
        ctx = self._context(epoch, epochs_elapsed, channel, energy_model)
        batch = self._model.events_in(self._last_boundary, epoch, ctx)
        self._last_boundary = epoch
        overlap = set(batch.deaths) & set(batch.joins)
        if overlap:
            raise ConfigurationError(
                "churn batch lists nodes as both dead and joined "
                f"(models must report each window's net state): "
                f"{sorted(overlap)[:5]}"
            )
        died = sorted(
            node
            for node in set(batch.deaths)
            if node in self.alive and node != BASE_STATION
        )
        joined = sorted(
            node
            for node in set(batch.joins)
            if node not in self.alive and node in self._deployment.positions
        )
        if not died and not joined:
            return None
        self.alive.difference_update(died)
        self.alive.update(joined)
        rings, stranded = RingsTopology.build_restricted(
            self._connectivity, self.alive
        )
        # Remember the dark subtrees' links before repair drops them, and
        # forget the memory of anything that is no longer alive (a dead
        # node rejoining later is a fresh joiner, not a re-admission).
        for node in stranded:
            parent = self.tree.parents.get(node)
            if parent is not None and node not in self._dark_parents:
                self._dark_parents[node] = parent
        for node in list(self._dark_parents):
            if node not in self.alive:
                del self._dark_parents[node]
        tree, repair = repair_tree(
            self.tree, rings, self._deployment, preferred=self._dark_parents
        )
        for node in tree.parents:
            self._dark_parents.pop(node, None)
        for child, _parent in repair.reattached:
            channel.account_control(
                child, words=REPAIR_WORDS, messages=REPAIR_MESSAGES
            )
        channel.bump_model_version()
        self.rings = rings
        self.tree = tree
        self.stranded = tuple(stranded)
        update = MembershipUpdate(
            epoch=epoch,
            died=tuple(died),
            joined=tuple(joined),
            stranded=self.stranded,
            alive=frozenset(self.alive),
            rings=rings,
            tree=tree,
            repair=repair,
        )
        self.updates.append(update)
        return update
