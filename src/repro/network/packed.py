"""Packed (array-native) node state: the memory-lean scale tier.

The dict-shaped :class:`~repro.network.placement.Deployment` and
:class:`~repro.network.rings.RingsTopology` spend hundreds of bytes per node
on boxed floats, tuple cells and hash tables — fine at the paper's 600
nodes, prohibitive at 100k+. This module stores the same state id-indexed in
ndarrays (coordinates as float64 columns, ring levels as one int32 column,
adjacency as a CSR int32 pair) behind the *exact same API surface*, so every
scheme, tree builder and failure model runs unchanged on either tier.

Parity is the whole point: the packed builders replay the dict path's RNG
draws, distance predicate and BFS, so a run on the packed tier is
byte-identical to the dict run — the dict path stays the oracle, and
``tests/test_scale.py`` pins the equivalence. Two entry points:

* :func:`build_packed_synthetic` — the array-native generator for the
  synthetic families (never materializes a dict or an ``nx.Graph``; an
  ``nx`` view of the adjacency is built lazily only if a consumer such as
  churn or TD tree validation asks for ``rings.connectivity``);
* :func:`pack_topology` — converts any resolved dict-shaped topology
  (e.g. LabData) into the packed representation.

Every id that crosses the API boundary is converted back to a Python
``int``: numpy integers hash differently in the keyed-draw streams and must
never leak into ``hash_key`` tokens.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro._hashing import stream_rng
from repro.errors import ConfigurationError, TopologyError
from repro.network.placement import BASE_STATION, NodeId, Point

#: Largest packed topology whose ``connectivity`` may inflate an
#: ``nx.Graph``. Above this, the dict-of-dicts graph (hundreds of bytes
#: per edge) would dwarf the CSR columns it shadows, so the property
#: raises instead of silently exploding memory at the 1M-node tier.
CONNECTIVITY_NODE_LIMIT = 200_000


class _PositionsView(Mapping):
    """Read-only mapping facade over the packed coordinate columns."""

    __slots__ = ("_xs", "_ys")

    def __init__(self, xs: np.ndarray, ys: np.ndarray) -> None:
        self._xs = xs
        self._ys = ys

    def __getitem__(self, node: NodeId) -> Point:
        index = int(node)
        if not 0 <= index < len(self._xs):
            raise KeyError(node)
        return (float(self._xs[index]), float(self._ys[index]))

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(len(self._xs)))

    def __len__(self) -> int:
        return len(self._xs)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < len(self._xs)


class PackedDeployment:
    """A :class:`~repro.network.placement.Deployment` stored as ndarrays.

    Node ids are dense ``0..n`` (0 the base station); the coordinate of node
    ``i`` lives at row ``i`` of the float64 ``xs``/``ys`` columns. All
    accessors return plain Python numbers so downstream keyed hashing sees
    the same tokens as the dict tier.
    """

    __slots__ = ("xs", "ys", "width", "height", "name", "_positions")

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        width: float,
        height: float,
        name: str = "deployment",
    ) -> None:
        if len(xs) != len(ys) or len(xs) < 1:
            raise ConfigurationError(
                "packed deployment needs matching non-empty coordinate columns"
            )
        if width <= 0 or height <= 0:
            raise ConfigurationError("deployment area must have positive size")
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        self.width = width
        self.height = height
        self.name = name
        self._positions = _PositionsView(self.xs, self.ys)

    @property
    def positions(self) -> Mapping:
        return self._positions

    @property
    def base_station(self) -> NodeId:
        return BASE_STATION

    @property
    def sensor_ids(self) -> List[NodeId]:
        return list(range(1, len(self.xs)))

    @property
    def node_ids(self) -> List[NodeId]:
        return list(range(len(self.xs)))

    @property
    def num_sensors(self) -> int:
        return len(self.xs) - 1

    def position(self, node: NodeId) -> Point:
        return self._positions[node]

    def distance(self, a: NodeId, b: NodeId) -> float:
        # Same scalar arithmetic as Deployment.distance, for bit parity.
        ax, ay = self._positions[a]
        bx, by = self._positions[b]
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

    def nodes_in_rect(
        self, lower: Point, upper: Point, include_base: bool = False
    ) -> List[NodeId]:
        (lx, ly), (ux, uy) = lower, upper
        inside = (
            (self.xs >= lx) & (self.xs <= ux)
            & (self.ys >= ly) & (self.ys <= uy)
        )
        if not include_base:
            inside[BASE_STATION] = False
        return np.nonzero(inside)[0].tolist()

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(len(self.xs)))

    def __len__(self) -> int:
        return len(self.xs)


class _LevelsView(Mapping):
    """Read-only mapping facade over the packed ring-level column."""

    __slots__ = ("_levels",)

    def __init__(self, levels: np.ndarray) -> None:
        self._levels = levels

    def __getitem__(self, node: NodeId) -> int:
        index = int(node)
        if not 0 <= index < len(self._levels):
            raise KeyError(node)
        return int(self._levels[index])

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(len(self._levels)))

    def __len__(self) -> int:
        return len(self._levels)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < len(self._levels)


class PackedRings:
    """A :class:`~repro.network.rings.RingsTopology` stored as ndarrays.

    Ring levels are one int32 column; the radio adjacency is CSR
    (``indptr``/``neighbors``) with each node's neighbor run ascending, so
    every accessor returns the same sorted lists as the dict tier. The
    ``connectivity`` graph object — needed only by churn re-ringing and the
    TD tree validator — is materialized lazily on first access.
    """

    __slots__ = ("level_of", "indptr", "neighbors", "_levels", "_graph")

    def __init__(
        self, level_of: np.ndarray, indptr: np.ndarray, neighbors: np.ndarray
    ) -> None:
        self.level_of = np.asarray(level_of, dtype=np.int32)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.neighbors = np.asarray(neighbors, dtype=np.int32)
        if len(self.indptr) != len(self.level_of) + 1:
            raise ConfigurationError("CSR indptr length must be nodes + 1")
        self._levels = _LevelsView(self.level_of)
        self._graph = None

    @property
    def levels(self) -> Mapping:
        return self._levels

    @property
    def connectivity(self):
        """The adjacency as an ``nx.Graph``, built lazily on first use.

        Refuses to materialize above :data:`CONNECTIVITY_NODE_LIMIT`
        nodes: the dict-of-dicts graph costs orders of magnitude more RAM
        than the CSR columns, so inflating it at the million-node tier
        (churn re-ringing and the TD tree validator are the only callers)
        would silently undo everything the packed representation saved.
        """
        if self._graph is None:
            if len(self.level_of) > CONNECTIVITY_NODE_LIMIT:
                raise ConfigurationError(
                    f"refusing to inflate a networkx connectivity graph "
                    f"for {len(self.level_of)} packed nodes (limit "
                    f"{CONNECTIVITY_NODE_LIMIT}): the dict-shaped graph "
                    "would dwarf the packed columns' memory. Packed "
                    "scenarios at this scale cannot serve churn "
                    "re-ringing or tree validation; run them without "
                    "churn, or use the dict tier for smaller deployments"
                )
            import networkx as nx

            graph = nx.Graph()
            graph.add_nodes_from(range(len(self.level_of)))
            src = np.repeat(
                np.arange(len(self.level_of)), np.diff(self.indptr)
            )
            mask = src < self.neighbors
            graph.add_edges_from(
                zip(src[mask].tolist(), self.neighbors[mask].tolist())
            )
            self._graph = graph
        return self._graph

    @property
    def depth(self) -> int:
        return int(self.level_of.max())

    def level(self, node: NodeId) -> int:
        return self._levels[node]

    def nodes_at_level(self, level: int) -> List[NodeId]:
        return np.nonzero(self.level_of == level)[0].tolist()

    def levels_descending(self) -> List[int]:
        return list(range(self.depth, 0, -1))

    def _ring_slice(self, node: NodeId) -> np.ndarray:
        index = int(node)
        return self.neighbors[self.indptr[index]:self.indptr[index + 1]]

    def upstream_neighbors(self, node: NodeId) -> List[NodeId]:
        ring = self._ring_slice(node)
        own = self.level_of[int(node)]
        return ring[self.level_of[ring] == own - 1].tolist()

    def downstream_neighbors(self, node: NodeId) -> List[NodeId]:
        ring = self._ring_slice(node)
        own = self.level_of[int(node)]
        return ring[self.level_of[ring] == own + 1].tolist()

    def same_level_neighbors(self, node: NodeId) -> List[NodeId]:
        ring = self._ring_slice(node)
        own = self.level_of[int(node)]
        return ring[self.level_of[ring] == own].tolist()

    def ring_edges(self) -> List[Tuple[NodeId, NodeId]]:
        src = np.repeat(np.arange(len(self.level_of)), np.diff(self.indptr))
        mask = self.level_of[self.neighbors] == self.level_of[src] - 1
        # CSR runs ascend by source then neighbor, so this is already the
        # lexicographic order the dict tier's sorted() produces.
        return list(zip(src[mask].tolist(), self.neighbors[mask].tolist()))

    def validate(self) -> None:
        src = np.repeat(np.arange(len(self.level_of)), np.diff(self.indptr))
        span = self.level_of[src] - self.level_of[self.neighbors]
        bad = np.nonzero(np.abs(span) > 1)[0]
        if bad.size:
            a, b = int(src[bad[0]]), int(self.neighbors[bad[0]])
            raise TopologyError(f"edge ({a},{b}) spans more than one ring")
        upstream_counts = np.bincount(
            src[span == 1], minlength=len(self.level_of)
        )
        orphans = np.nonzero(upstream_counts == 0)[0]
        orphans = orphans[orphans != BASE_STATION]
        if orphans.size:
            raise TopologyError(
                f"node {int(orphans[0])} has no upstream ring neighbour"
            )


@dataclass
class PackedTopology:
    """What the packed builders hand the session: placement + routing.

    Duck-compatible with :class:`repro.registry.ResolvedTopology` (same
    attribute triple), so ``build_scenario`` treats both tiers uniformly.
    """

    deployment: PackedDeployment
    rings: PackedRings
    base_loss: Optional[Dict] = field(default=None)


# -- array-native synthetic builder -----------------------------------------


def _draw_positions(
    num_sensors: int, width: float, height: float, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay grid_random_placement's exact draw sequence into columns."""
    rng = stream_rng("placement", seed, num_sensors, width, height)
    xs = np.empty(num_sensors + 1, dtype=np.float64)
    ys = np.empty(num_sensors + 1, dtype=np.float64)
    xs[BASE_STATION] = width / 2.0
    ys[BASE_STATION] = height / 2.0
    uniform = rng.uniform
    for node in range(1, num_sensors + 1):
        xs[node] = uniform(0.0, width)
        ys[node] = uniform(0.0, height)
    return xs, ys


def _disc_csr(
    xs: np.ndarray, ys: np.ndarray, radio_range: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-disc adjacency as CSR, via the same spatial grid as DiscRadio.

    Vectorized: nodes are bucketed into radio-range cells, candidate pairs
    come from the 3x3 cell neighborhood, and the kept edges satisfy the
    dict tier's predicate ``distance(a, b) <= radio_range`` (np.sqrt and
    CPython's ``** 0.5`` are both correctly rounded, so the edge sets
    agree bit-for-bit).
    """
    count = len(xs)
    cell = radio_range
    cx = np.floor_divide(xs, cell).astype(np.int64) + 1
    cy = np.floor_divide(ys, cell).astype(np.int64) + 1
    # The +1 shift keeps all bucket coordinates >= 1 so the 3x3 offsets
    # below can never collide across the row seam of the key space.
    stride = int(cy.max()) + 2
    key = cx * stride + cy
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sources: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            probe = key + dx * stride + dy
            left = np.searchsorted(sorted_key, probe, side="left")
            right = np.searchsorted(sorted_key, probe, side="right")
            counts = right - left
            total = int(counts.sum())
            if total == 0:
                continue
            rep = np.repeat(np.arange(count), counts)
            offsets = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            cand = order[np.repeat(left, counts) + offsets]
            keep = cand > rep
            rep, cand = rep[keep], cand[keep]
            dxs = xs[rep] - xs[cand]
            dys = ys[rep] - ys[cand]
            keep = np.sqrt(dxs * dxs + dys * dys) <= radio_range
            sources.append(rep[keep])
            targets.append(cand[keep])
    if sources:
        edge_a = np.concatenate(sources)
        edge_b = np.concatenate(targets)
    else:
        edge_a = np.zeros(0, dtype=np.int64)
        edge_b = np.zeros(0, dtype=np.int64)
    src = np.concatenate([edge_a, edge_b])
    dst = np.concatenate([edge_b, edge_a])
    csr_order = np.lexsort((dst, src))
    neighbors = dst[csr_order].astype(np.int32)
    degrees = np.bincount(src, minlength=count)
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return indptr, neighbors


def _bfs_levels(indptr: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
    """Hop counts from the base station over the CSR; -1 marks unreachable."""
    count = len(indptr) - 1
    levels = np.full(count, -1, dtype=np.int32)
    levels[BASE_STATION] = 0
    frontier = np.array([BASE_STATION], dtype=np.int64)
    depth = 0
    while frontier.size:
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        reached = neighbors[np.repeat(indptr[frontier], counts) + offsets]
        reached = np.unique(reached[levels[reached] < 0])
        if reached.size == 0:
            break
        depth += 1
        levels[reached] = depth
        frontier = reached.astype(np.int64)
    return levels


def build_packed_synthetic(
    num_sensors: int,
    width: float = 20.0,
    height: float = 20.0,
    radio_range: Optional[float] = None,
    seed: int = 0,
    max_seed_retries: int = 20,
) -> PackedTopology:
    """Array-native twin of ``make_synthetic_scenario``.

    Same auto-sized radio range, same deterministic seed-retry ladder, same
    placement draws — but the deployment, adjacency and ring levels are
    built directly as ndarrays, never materializing per-node dicts.
    """
    from repro.datasets.synthetic import (
        SYNTHETIC_RADIO_RANGE,
        radio_range_for_density,
    )

    if num_sensors <= 0:
        raise ConfigurationError("num_sensors must be positive")
    if radio_range is None:
        density = num_sensors / (width * height)
        radio_range = max(
            radio_range_for_density(density), SYNTHETIC_RADIO_RANGE
        )
    for attempt in range(max_seed_retries):
        xs, ys = _draw_positions(
            num_sensors, width, height, seed + 1000 * attempt
        )
        indptr, neighbors = _disc_csr(xs, ys, radio_range)
        levels = _bfs_levels(indptr, neighbors)
        if (levels >= 0).all():
            deployment = PackedDeployment(
                xs, ys, width, height, name=f"synthetic-{num_sensors}"
            )
            return PackedTopology(
                deployment=deployment,
                rings=PackedRings(levels, indptr, neighbors),
            )
    raise ConfigurationError(
        f"could not find a connected placement after {max_seed_retries} seeds"
    )


def build_packed_topology(
    name: str, num_sensors: int, seed: int
) -> Optional[PackedTopology]:
    """Array-native builder for ``name``, or None when only the generic
    dict-to-packed conversion applies."""
    if name == "synthetic":
        return build_packed_synthetic(num_sensors, seed=seed)
    if name == "synthetic-scale":
        from repro.datasets.synthetic import scale_area_side

        side = scale_area_side(num_sensors)
        return build_packed_synthetic(
            num_sensors, width=side, height=side, seed=seed
        )
    return None


def pack_topology(topology) -> PackedTopology:
    """Convert a resolved dict-shaped topology into the packed tier.

    Requires dense node ids ``0..n`` (true of every built-in topology);
    sparse id spaces have no row to live in and fail loudly.
    """
    deployment = topology.deployment
    rings = topology.rings
    ids = list(deployment.node_ids)
    if ids != list(range(len(ids))):
        raise ConfigurationError(
            "the packed state tier requires dense node ids 0..n; "
            f"got {len(ids)} ids starting {ids[:3]}"
        )
    count = len(ids)
    xs = np.empty(count, dtype=np.float64)
    ys = np.empty(count, dtype=np.float64)
    for node in ids:
        xs[node], ys[node] = deployment.position(node)
    level_of = np.full(count, -1, dtype=np.int32)
    for node, level in rings.levels.items():
        level_of[node] = level
    if (level_of < 0).any():
        raise ConfigurationError(
            "topology has nodes without ring levels; cannot pack"
        )
    edges = np.array(
        [(a, b) for a, b in rings.connectivity.edges], dtype=np.int64
    ).reshape(-1, 2)
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    csr_order = np.lexsort((dst, src))
    neighbors = dst[csr_order].astype(np.int32)
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=count), out=indptr[1:])
    packed = PackedDeployment(
        xs, ys, deployment.width, deployment.height, name=deployment.name
    )
    return PackedTopology(
        deployment=packed,
        rings=PackedRings(level_of, indptr, neighbors),
        base_loss=getattr(topology, "base_loss", None),
    )


__all__ = [
    "PackedDeployment",
    "PackedRings",
    "PackedTopology",
    "build_packed_synthetic",
    "build_packed_topology",
    "pack_topology",
]
