"""Rings topology: BFS levels around the base station (Section 2).

Construction follows the paper: the base station transmits; everything that
hears it is ring 1; nodes in ring i transmit and anything new that hears them
is ring i+1. Over a connectivity graph this is exactly breadth-first levels
(hop counts) from the base station. Aggregation proceeds level-by-level, ring
``i+1`` transmitting while ring ``i`` listens.

The rings object is the shared coordinate system for every scheme in this
library: tree parents are restricted to level i-1 ring neighbours (the
paper's synchronization design choice, Section 4.1), and the Tributary-Delta
graph's M edges are rings edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.network.placement import BASE_STATION, Deployment, NodeId


@dataclass(frozen=True)
class RingsTopology:
    """Levels (ring numbers) and level-respecting adjacency.

    Attributes:
        levels: node -> ring number; the base station is level 0.
        connectivity: the undirected radio connectivity graph.
    """

    levels: Mapping[NodeId, int]
    connectivity: nx.Graph

    @classmethod
    def build(cls, deployment: Deployment, connectivity: nx.Graph) -> "RingsTopology":
        """Compute ring numbers as BFS hop counts from the base station."""
        levels = nx.single_source_shortest_path_length(connectivity, BASE_STATION)
        missing = set(deployment.node_ids) - set(levels)
        if missing:
            raise TopologyError(f"nodes unreachable from base station: {sorted(missing)[:5]}")
        return cls(levels=dict(levels), connectivity=connectivity)

    @classmethod
    def build_restricted(
        cls, connectivity: nx.Graph, alive: Collection[NodeId]
    ) -> Tuple["RingsTopology", List[NodeId]]:
        """Re-ring after membership changed: BFS levels over the live nodes.

        ``connectivity`` is the *full* radio graph; ``alive`` the node ids
        currently up (the base station must be among them). Ring numbers are
        recomputed over the subgraph induced by the live nodes — exactly the
        construction broadcast re-run over whoever can still hear it.

        Unlike :meth:`build`, nodes cut off from the base station are not an
        error here (killing a cut vertex strands its far side); they are
        returned as the second element, sorted, and excluded from the
        topology — stranded nodes keep sensing but nothing they transmit
        can ever reach the base station.
        """
        if BASE_STATION not in alive:
            raise TopologyError("the base station cannot leave the network")
        induced = connectivity.subgraph(alive)
        levels = nx.single_source_shortest_path_length(induced, BASE_STATION)
        stranded = sorted(set(alive) - set(levels))
        reachable = connectivity.subgraph(levels).copy()
        return cls(levels=dict(levels), connectivity=reachable), stranded

    @property
    def depth(self) -> int:
        """The maximum ring number (drives latency: epochs per result)."""
        return max(self.levels.values())

    def level(self, node: NodeId) -> int:
        """Ring number of ``node``."""
        return self.levels[node]

    def nodes_at_level(self, level: int) -> List[NodeId]:
        """All nodes in ring ``level``, sorted."""
        return sorted(n for n, l in self.levels.items() if l == level)

    def levels_descending(self) -> List[int]:
        """Ring numbers from the deepest ring down to 1 (transmission order)."""
        return list(range(self.depth, 0, -1))

    def upstream_neighbors(self, node: NodeId) -> List[NodeId]:
        """Ring neighbours of ``node`` one level closer to the base station.

        These are the nodes that are listening when ``node`` transmits; a
        multi-path node's broadcast targets exactly this set, and a tree
        node's parent must be drawn from it (synchronization constraint).
        """
        own = self.levels[node]
        return sorted(
            other
            for other in self.connectivity.neighbors(node)
            if self.levels[other] == own - 1
        )

    def downstream_neighbors(self, node: NodeId) -> List[NodeId]:
        """Ring neighbours one level farther from the base station."""
        own = self.levels[node]
        return sorted(
            other
            for other in self.connectivity.neighbors(node)
            if self.levels[other] == own + 1
        )

    def same_level_neighbors(self, node: NodeId) -> List[NodeId]:
        """Ring neighbours in the same ring (TAG allows these as parents)."""
        own = self.levels[node]
        return sorted(
            other
            for other in self.connectivity.neighbors(node)
            if self.levels[other] == own and other != node
        )

    def ring_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """All (child, parent-candidate) pairs across adjacent rings.

        Directed from the higher ring toward the lower ring; this is the edge
        universe for both multi-path broadcasts and tree links.
        """
        edges = []
        for node in self.levels:
            for upstream in self.upstream_neighbors(node):
                edges.append((node, upstream))
        return sorted(edges)

    def validate(self) -> None:
        """Check the defining ring invariant: levels differ by <= 1 across edges.

        BFS levels guarantee |level(u) - level(v)| <= 1 for every radio edge
        and that every non-base node has at least one upstream neighbour.
        """
        for a, b in self.connectivity.edges:
            if abs(self.levels[a] - self.levels[b]) > 1:
                raise TopologyError(f"edge ({a},{b}) spans more than one ring")
        for node in self.levels:
            if node != BASE_STATION and not self.upstream_neighbors(node):
                raise TopologyError(f"node {node} has no upstream ring neighbour")
