"""Bursty and crash failure models (beyond the paper's Global/Regional).

The paper evaluates under memoryless Bernoulli loss (``Global(p)`` /
``Regional(p1,p2)``), but motivates its design with real deployments where
"up to 30% loss rate is common [23]" and losses are *correlated* — fades and
interference arrive in bursts, and motes die outright. These models let the
benchmarks stress Tributary-Delta's adaptation under such conditions:

* :class:`GilbertElliottLoss` — the classic two-state Markov loss model:
  each directed link alternates between a *good* state (low loss) and a
  *bad* state (high loss), with geometric sojourn times. The expected loss
  rate can match a Bernoulli model's while the time structure is bursty.
* :class:`NodeCrashLoss` — motes that are dead during configured epoch
  windows lose every message they would send (and, optionally, receive),
  modelling battery death and reboots.

Both are deterministic in their seeds, like everything in this library, so
scheme comparisons stay paired. Both satisfy the
:class:`~repro.network.failures.FailureModel` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro._hashing import hash_unit
from repro.errors import ConfigurationError
from repro.network.failures import FailureModel, NoLoss
from repro.network.placement import Deployment, NodeId

#: A directed link key.
Link = Tuple[NodeId, NodeId]

#: Markov states.
_GOOD = 0
_BAD = 1


class GilbertElliottLoss:
    """Two-state Markov (Gilbert-Elliott) loss per directed link.

    Each link carries an independent chain. In the *good* state messages are
    lost at ``good_loss``; in the *bad* state at ``bad_loss``. Per epoch the
    chain moves good->bad with probability ``p_enter_bad`` and bad->good with
    probability ``p_exit_bad``. Mean burst length is ``1 / p_exit_bad``
    epochs and the stationary bad fraction is
    ``p_enter_bad / (p_enter_bad + p_exit_bad)``.

    State at epoch e is a pure function of (seed, link, e): the chain is
    advanced step by step with per-step hash draws, memoised per link so
    that the simulator's monotone epoch order costs O(1) amortised per
    query. Non-monotone queries recompute from epoch 0 and stay correct.

    Args:
        good_loss: loss rate in the good state.
        bad_loss: loss rate in the bad state.
        p_enter_bad: per-epoch probability of a good->bad transition.
        p_exit_bad: per-epoch probability of a bad->good transition.
        seed: chain seed.
        start_bad: whether chains start in the bad state at epoch 0.
    """

    def __init__(
        self,
        good_loss: float = 0.02,
        bad_loss: float = 0.8,
        p_enter_bad: float = 0.05,
        p_exit_bad: float = 0.25,
        seed: int = 0,
        start_bad: bool = False,
    ) -> None:
        for label, rate in (
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {rate}")
        if p_exit_bad == 0.0 and p_enter_bad > 0.0:
            raise ConfigurationError(
                "p_exit_bad=0 with p_enter_bad>0 makes bursts permanent; "
                "use NodeCrashLoss for permanent failures"
            )
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self._seed = seed
        self._start_state = _BAD if start_bad else _GOOD
        #: link -> (last computed epoch, state at that epoch)
        self._memo: Dict[Link, Tuple[int, int]] = {}

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of epochs a link spends in the bad state."""
        denominator = self.p_enter_bad + self.p_exit_bad
        if denominator == 0:
            return 1.0 if self._start_state == _BAD else 0.0
        return self.p_enter_bad / denominator

    @property
    def expected_loss_rate(self) -> float:
        """Stationary mean loss rate (for matching a Bernoulli baseline)."""
        bad = self.stationary_bad_fraction
        return bad * self.bad_loss + (1.0 - bad) * self.good_loss

    def _advance(self, link: Link, state: int, from_epoch: int, to_epoch: int) -> int:
        for step in range(from_epoch, to_epoch):
            draw = hash_unit("gilbert", self._seed, link[0], link[1], step)
            if state == _GOOD:
                if draw < self.p_enter_bad:
                    state = _BAD
            else:
                if draw < self.p_exit_bad:
                    state = _GOOD
        return state

    def state(self, sender: NodeId, receiver: NodeId, epoch: int) -> int:
        """The chain state (0 = good, 1 = bad) for a link at an epoch."""
        if epoch < 0:
            raise ConfigurationError("epoch cannot be negative")
        link = (sender, receiver)
        cached_epoch, cached_state = self._memo.get(link, (0, self._start_state))
        if epoch < cached_epoch:
            cached_epoch, cached_state = 0, self._start_state
        state = self._advance(link, cached_state, cached_epoch, epoch)
        self._memo[link] = (epoch, state)
        return state

    def is_bad(self, sender: NodeId, receiver: NodeId, epoch: int) -> bool:
        """Whether the link is inside a burst at ``epoch``."""
        return self.state(sender, receiver, epoch) == _BAD

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        """FailureModel protocol: the state-dependent loss rate."""
        if self.is_bad(sender, receiver, epoch):
            return self.bad_loss
        return self.good_loss


def matched_gilbert_elliott(
    target_loss: float,
    bad_loss: float = 0.8,
    good_loss: float = 0.02,
    mean_burst_epochs: float = 4.0,
    seed: int = 0,
) -> GilbertElliottLoss:
    """A Gilbert-Elliott model whose stationary loss matches ``target_loss``.

    Useful for ablations that hold the average loss rate fixed while varying
    only its burstiness: compare ``GlobalLoss(p)`` against
    ``matched_gilbert_elliott(p)`` and only the time correlation differs.

    Args:
        target_loss: the stationary mean loss rate to hit.
        bad_loss: burst-state loss rate (must exceed ``target_loss``).
        good_loss: quiet-state loss rate (must be below ``target_loss``).
        mean_burst_epochs: expected burst length, sets ``p_exit_bad``.
        seed: chain seed.
    """
    if not good_loss < target_loss < bad_loss:
        raise ConfigurationError(
            "target_loss must lie strictly between good_loss and bad_loss"
        )
    if mean_burst_epochs <= 0:
        raise ConfigurationError("mean_burst_epochs must be positive")
    bad_fraction = (target_loss - good_loss) / (bad_loss - good_loss)
    p_exit = min(1.0, 1.0 / mean_burst_epochs)
    p_enter = p_exit * bad_fraction / (1.0 - bad_fraction)
    if p_enter > 1.0:
        raise ConfigurationError(
            "requested burstiness is infeasible: shorten bursts or raise bad_loss"
        )
    return GilbertElliottLoss(
        good_loss=good_loss,
        bad_loss=bad_loss,
        p_enter_bad=p_enter,
        p_exit_bad=p_exit,
        seed=seed,
    )


@dataclass(frozen=True)
class CrashWindow:
    """A half-open epoch interval [start, end) during which a node is down."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError("crash window must satisfy 0 <= start < end")

    def contains(self, epoch: int) -> bool:
        return self.start <= epoch < self.end


class NodeCrashLoss:
    """Motes that are dead during configured windows drop all their traffic.

    While a node is crashed its transmissions are lost with probability 1;
    with ``drop_receptions`` (the default) messages *to* it are also lost,
    since a dead radio hears nothing. Outside crash windows the ``base``
    model applies (default: no loss), so crashes compose with any background
    loss model.

    Args:
        crashes: node -> crash windows for that node.
        base: background failure model outside crash windows.
        drop_receptions: whether a crashed receiver also loses messages.
    """

    def __init__(
        self,
        crashes: Mapping[NodeId, Sequence[CrashWindow]],
        base: Optional[FailureModel] = None,
        drop_receptions: bool = True,
    ) -> None:
        self._crashes: Dict[NodeId, Tuple[CrashWindow, ...]] = {
            node: tuple(windows) for node, windows in crashes.items()
        }
        self._base = base if base is not None else NoLoss()
        self._drop_receptions = drop_receptions

    @classmethod
    def single_window(
        cls,
        nodes: Sequence[NodeId],
        start: int,
        end: int,
        base: Optional[FailureModel] = None,
    ) -> "NodeCrashLoss":
        """Convenience: the same crash window for a set of nodes."""
        window = CrashWindow(start, end)
        return cls({node: (window,) for node in nodes}, base=base)

    def is_crashed(self, node: NodeId, epoch: int) -> bool:
        """Whether ``node`` is down at ``epoch``."""
        return any(
            window.contains(epoch) for window in self._crashes.get(node, ())
        )

    def crashed_nodes(self, epoch: int) -> Tuple[NodeId, ...]:
        """All nodes down at ``epoch``, sorted."""
        return tuple(
            sorted(node for node in self._crashes if self.is_crashed(node, epoch))
        )

    def loss_rate(
        self, deployment: Deployment, sender: NodeId, receiver: NodeId, epoch: int
    ) -> float:
        """FailureModel protocol: certain loss while either endpoint is down."""
        if self.is_crashed(sender, epoch):
            return 1.0
        if self._drop_receptions and self.is_crashed(receiver, epoch):
            return 1.0
        return self._base.loss_rate(deployment, sender, receiver, epoch)
