"""Message sizing: TinyDB packets, words, and run-length-encoded sketches.

The paper uses 48-byte TinyDB messages and notes (Section 7.1) that 40 32-bit
Sum synopses fit in a single message *with the help of run-length encoding*
(the citation [17] is the ANF tool, which introduced this trick for
Flajolet-Martin bitmaps). We adopt the paper's word convention: a "word"
holds one item or one counter (32 bits).

:class:`MessageAccountant` converts a payload measured in words into a
TinyDB message count; :func:`rle_encoded_bits` implements the FM-bitmap
run-length size model used to justify the 40-synopses-per-message figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError

#: TinyDB message size used throughout the paper's evaluation.
TINYDB_MESSAGE_BYTES = 48

#: Paper convention: one word = one 32-bit item or counter.
WORD_BYTES = 4

#: Payload words available per TinyDB message.
WORDS_PER_MESSAGE = TINYDB_MESSAGE_BYTES // WORD_BYTES


@dataclass(frozen=True)
class MessageSpec:
    """A payload's size, in both words and TinyDB messages."""

    words: int
    messages: int

    def __post_init__(self) -> None:
        if self.words < 0 or self.messages < 0:
            raise ConfigurationError("message sizes cannot be negative")


class MessageAccountant:
    """Maps payload word counts to TinyDB message counts."""

    def __init__(self, message_bytes: int = TINYDB_MESSAGE_BYTES) -> None:
        if message_bytes < WORD_BYTES:
            raise ConfigurationError("a message must hold at least one word")
        self._words_per_message = message_bytes // WORD_BYTES
        # Payload sizes repeat constantly (every Count partial is one word,
        # every sketch a handful); memoize the immutable specs.
        self._spec_cache: dict[int, MessageSpec] = {}

    @property
    def words_per_message(self) -> int:
        """Payload words that fit in one message."""
        return self._words_per_message

    def spec_for_words(self, words: int) -> MessageSpec:
        """Number of messages needed for a payload of ``words`` words.

        A zero-word payload still occupies one message (headers must travel
        for the parent to notice the child at all).
        """
        spec = self._spec_cache.get(words)
        if spec is not None:
            return spec
        if words <= 0:
            spec = MessageSpec(words=max(words, 0), messages=1)
        else:
            messages = -(-words // self._words_per_message)  # ceil division
            spec = MessageSpec(words=words, messages=messages)
        self._spec_cache[words] = spec
        return spec


def rle_encoded_bits(bitmap: int, bitmap_bits: int) -> int:
    """Size, in bits, of a run-length encoded FM bitmap.

    FM bitmaps have a characteristic shape: a solid run of ones in the low
    bits, a short "fringe" of mixed bits, then zeros. Following the ANF
    encoding [17] we store the length of the leading ones-run (log2(bits)
    bits) plus the raw fringe between the end of that run and the highest set
    bit. An empty bitmap costs just the run-length field.

    This is the reference size model; the hot path is the equivalent
    inlined walk in :meth:`repro.multipath.fm.FMSketch.words` (kept in
    lock-step by ``tests/test_batch_equivalence.py``).

    >>> rle_encoded_bits(0b0111, 32)  # pure run, no fringe
    5
    """
    if bitmap < 0:
        raise ConfigurationError("bitmap must be non-negative")
    length_field = max(1, (bitmap_bits - 1).bit_length())
    if bitmap == 0:
        return length_field
    run = ((bitmap + 1) & ~bitmap).bit_length() - 1  # trailing ones
    fringe = max(0, bitmap.bit_length() - run)
    return length_field + fringe


def rle_words_for_bitmaps(bitmaps: Iterable[int], bitmap_bits: int) -> int:
    """Words needed to ship a collection of FM bitmaps with RLE.

    This is the size model behind the paper's "40 32-bit Sum synopses fit in
    a 48-byte message": for typical sketch contents the encoded size is a
    handful of bits per bitmap rather than 32.
    """
    total_bits = sum(rle_encoded_bits(bitmap, bitmap_bits) for bitmap in bitmaps)
    return -(-total_bits // (WORD_BYTES * 8))
