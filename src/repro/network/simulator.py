"""The epoch-driven execution engine.

One *epoch* is one complete level-by-level aggregation wave: every node
transmits once (possibly retransmitting), partial results flow ring-by-ring
toward the base station, and the base station emits one answer. Continuous
queries repeat this every epoch; the paper collects an answer per epoch for
100 epochs (400 for the timeline experiment) after a warm-up during which the
topology stabilises.

The simulator is scheme-agnostic: anything implementing
:class:`AggregationScheme` (TAG, synopsis diffusion, Tributary-Delta, or the
frequent-items variants) can be driven by it. It owns the clock, the channel,
truth computation, and metric bookkeeping; schemes own topology and algorithm
state.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.network.churn import DynamicMembership
from repro.network.energy import EnergyModel, EnergyReport
from repro.network.failures import FailureModel
from repro.network.links import Channel, TransmissionLog
from repro.network.placement import Deployment, NodeId

#: A workload maps (node, epoch) to that node's local query result.
ReadingFn = Callable[[NodeId, int], float]


def gather_readings(
    readings: ReadingFn, nodes: Sequence[NodeId], epoch: int
) -> List[float]:
    """One epoch's readings for many nodes, via the workload's fast path.

    Workloads may expose ``batch(nodes, epoch)`` returning exactly
    ``[readings(node, epoch) for node in nodes]`` (the built-in constant and
    uniform workloads hash the whole row in one vectorized pass); plain
    callables fall back to the per-node loop. Schemes use this everywhere
    they gather a level or a truth row, so batch and scalar runs see
    identical values by construction.
    """
    batch = getattr(readings, "batch", None)
    if batch is not None:
        return batch(nodes, epoch)
    return [readings(node, epoch) for node in nodes]


@dataclass
class EpochOutcome:
    """What a scheme reports for one epoch.

    Attributes:
        estimate: the base station's answer for the epoch.
        contributing: ground-truth number of sensors accounted for in the
            answer (the simulator can see this; a real base station cannot).
        contributing_estimate: the base station's own (approximate) count of
            contributing sensors — this is what drives adaptation.
        extra: free-form per-scheme diagnostics (e.g. delta-region size).
    """

    estimate: float
    contributing: int
    contributing_estimate: float
    extra: Dict[str, object] = field(default_factory=dict)


class AggregationScheme(Protocol):
    """The interface every aggregation scheme implements.

    Schemes may additionally implement ``run_epochs(epochs, channel,
    readings) -> List[Tuple[EpochOutcome, TransmissionLog]]``: an
    epoch-blocked fast path that executes a whole adaptation interval
    against one precomputed :class:`~repro.network.links.DeliveryPlan`,
    returning per-epoch (outcome, log) pairs byte-identical to driving
    ``run_epoch`` under the per-epoch loop. The simulator uses it when
    blocking is enabled; schemes without it always run per-epoch.

    Running under node churn additionally requires
    ``on_membership_change(update)``: the simulator passes each applied
    :class:`~repro.network.churn.MembershipUpdate` (repaired tree, re-rung
    levels, live set) and the scheme rebuilds its per-level structures; the
    built-in TAG/SD/TD schemes all implement it.
    """

    name: str

    def run_epoch(self, epoch: int, channel: Channel, readings: ReadingFn) -> EpochOutcome:
        """Execute one aggregation wave and return the epoch's outcome."""
        ...

    def exact_answer(self, epoch: int, readings: ReadingFn) -> float:
        """The loss-free answer over all sensors (ground truth)."""
        ...

    def adapt(self, epoch: int, outcome: EpochOutcome) -> None:
        """Adaptation hook, called at the configured interval."""
        ...


@dataclass
class EpochResult:
    """One epoch's record: estimate, truth, and channel statistics."""

    epoch: int
    estimate: float
    true_value: float
    contributing: int
    contributing_estimate: float
    log: TransmissionLog
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def relative_error(self) -> float:
        """|estimate - truth| / truth (0 when truth is 0 and estimate is 0)."""
        if self.true_value == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - self.true_value) / abs(self.true_value)


@dataclass
class RunningStats:
    """Streaming accumulation of a run's summary metrics.

    Mirrors :meth:`RunResult.rms_error` and
    :meth:`RunResult.mean_contributing_fraction` term by term, in epoch
    order with the same float operations — so a retention-truncated run
    reports the exact summary numbers the full timeline would.
    """

    num_epochs: int = 0
    error_sq_sum: float = 0.0
    contributing_sum: int = 0

    def add(self, result: "EpochResult") -> None:
        self.num_epochs += 1
        if result.true_value != 0:
            deviation = (
                result.estimate - result.true_value
            ) / result.true_value
            self.error_sq_sum += deviation * deviation
        self.contributing_sum += result.contributing

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "num_epochs": self.num_epochs,
            "error_sq_sum": self.error_sq_sum,
            "contributing_sum": self.contributing_sum,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RunningStats":
        return cls(
            num_epochs=int(data["num_epochs"]),
            error_sq_sum=float(data["error_sq_sum"]),
            contributing_sum=int(data["contributing_sum"]),
        )


def _parse_retention(retention: str) -> Tuple[str, Optional[int]]:
    """Validate a retention policy spec: ``all``, ``stream``, ``window:N``.

    Returns ``(kind, window)`` where ``window`` is the retained-epoch cap
    (``None`` for ``all``, 0 for ``stream``).
    """
    if not isinstance(retention, str):
        raise ConfigurationError(
            f"'retention' expects a policy string, got {retention!r} "
            f"({type(retention).__name__})"
        )
    if retention == "all":
        return "all", None
    if retention == "stream":
        return "stream", 0
    if retention.startswith("window:"):
        raw = retention[len("window:"):]
        try:
            window = int(raw)
        except ValueError:
            window = -1
        if window < 1:
            raise ConfigurationError(
                f"'window:N' retention needs a positive epoch count, "
                f"got {retention!r}"
            )
        return "window", window
    raise ConfigurationError(
        f"unknown retention policy {retention!r}; expected 'all', "
        "'stream', or 'window:N'"
    )


class _RetentionBuffer:
    """The run's epoch-result sink, honouring a retention policy.

    List-compatible where the engine needs it (``append`` from the record
    path, ``extend`` from checkpoint restore, iteration from checkpoint
    capture): ``all`` keeps the full timeline, ``window:N`` the last N
    records (drop-oldest), ``stream`` none. Non-``all`` policies
    additionally accumulate :class:`RunningStats` so summary metrics
    survive the truncation.
    """

    def __init__(self, retention: str) -> None:
        kind, window = _parse_retention(retention)
        self.tracked = kind != "all"
        self.stats = RunningStats()
        self._items: "Deque[EpochResult] | List[EpochResult]"
        if kind == "all":
            self._items = []
        else:
            self._items = collections.deque(maxlen=window)

    def append(self, result: "EpochResult") -> None:
        self.stats.add(result)
        self._items.append(result)

    def extend(self, results: Iterable["EpochResult"]) -> None:
        for result in results:
            self.append(result)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def epochs(self) -> List["EpochResult"]:
        return list(self._items)


@dataclass
class RunResult:
    """A full run: per-epoch results plus aggregate accounting.

    Under the default ``all`` retention, ``epochs`` is the complete
    timeline and ``stats`` is ``None`` (byte-identical to the pre-retention
    schema). Under ``window:N``/``stream`` retention, ``epochs`` holds only
    the retained tail and ``stats`` carries the streaming summary over
    *every* measured epoch — the summary metrics below prefer it.
    """

    scheme_name: str
    epochs: List[EpochResult]
    energy: EnergyReport
    stats: Optional[RunningStats] = None

    @property
    def num_epochs(self) -> int:
        """Measured epochs, counting those a retention policy dropped."""
        if self.stats is not None:
            return self.stats.num_epochs
        return len(self.epochs)

    @property
    def estimates(self) -> List[float]:
        return [result.estimate for result in self.epochs]

    @property
    def true_values(self) -> List[float]:
        return [result.true_value for result in self.epochs]

    @property
    def relative_errors(self) -> List[float]:
        return [result.relative_error for result in self.epochs]

    def rms_error(self) -> float:
        """Relative RMS error, the paper's Section 7.3 metric.

        Defined as (1/V) * sqrt(sum_t (V_t - V)^2 / T). The paper's V is a
        single actual value; with time-varying truth we normalise each epoch
        by its own truth, which coincides with the paper's definition when
        the truth is constant.
        """
        if self.stats is not None:
            if not self.stats.num_epochs:
                return 0.0
            return (self.stats.error_sq_sum / self.stats.num_epochs) ** 0.5
        if not self.epochs:
            return 0.0
        total = 0.0
        for result in self.epochs:
            if result.true_value == 0:
                continue
            deviation = (result.estimate - result.true_value) / result.true_value
            total += deviation * deviation
        return (total / len(self.epochs)) ** 0.5

    def mean_contributing_fraction(self, num_sensors: int) -> float:
        """Average fraction of sensors accounted for across epochs."""
        if self.stats is not None:
            if not self.stats.num_epochs or num_sensors == 0:
                return 0.0
            return self.stats.contributing_sum / (
                self.stats.num_epochs * num_sensors
            )
        if not self.epochs or num_sensors == 0:
            return 0.0
        total = sum(result.contributing for result in self.epochs)
        return total / (len(self.epochs) * num_sensors)


class EpochSimulator:
    """Drives a scheme over a sequence of epochs.

    Args:
        deployment: sensor positions.
        failure_model: loss model (may be a :class:`FailureSchedule`).
        scheme: the aggregation scheme under test.
        seed: channel seed; runs with equal seeds see identical loss draws.
        energy_model: converts channel logs to energy figures.
        adapt_interval: call ``scheme.adapt`` every this many epochs (the
            paper adapts every 10 epochs); 0 disables adaptation.
        on_epoch: optional hook called with (epoch, channel) after every
            epoch (warm-up included) — the attachment point for topology
            maintenance (link probing, parent switching) that the paper
            runs "less frequently than aggregation". Setting it disables
            epoch blocking: the hook may change topology or failure model
            mid-interval, which invalidates a delivery plan.
        use_blocked: execute in adaptation-interval blocks through the
            scheme's ``run_epochs`` fast path when available (byte-identical
            results, pinned by ``tests/test_blocked_equivalence.py``);
            ``False`` keeps the per-epoch loop.
        membership: a :class:`~repro.network.churn.DynamicMembership`
            runtime enabling node churn. Churn events are applied at
            **churn boundaries** — before the epoch at offsets divisible by
            ``churn_interval`` — in both the blocked and the per-epoch
            loops, so the epoch-blocked engine keeps working (events
            falling mid-interval take effect at the next boundary; blocks
            additionally split at churn boundaries). The scheme must
            implement ``on_membership_change(update)``. ``None`` (the
            default) changes nothing: runs are byte-identical to a
            simulator without the parameter.
        churn_interval: boundary cadence for churn application; ``None``
            follows ``adapt_interval`` (or 10 when adaptation is off, the
            paper's cadence).
        faults: a :class:`~repro.chaos.faults.FaultPlan` injecting
            deterministic faults (delivery kills, payload corruption,
            replays, delayed control billing) through the channel. ``None``
            (the default) attaches nothing: the channel's chaos hooks stay
            unset and runs are byte-identical to a simulator without the
            parameter.
        auditor: a :class:`~repro.chaos.auditor.Auditor` re-checking
            runtime invariants (Property 1/2, billing conservation,
            membership consistency, ...) after every epoch and every
            adaptation/membership event.
        checkpoint: a :class:`~repro.chaos.checkpoint.Checkpointer`
            persisting run state at block boundaries; with ``resume`` set
            it restores a stored checkpoint before the first epoch, and the
            resumed run's :class:`RunResult` is byte-identical to the
            uninterrupted run's.
        on_result: optional observer called with each :class:`EpochResult`
            as it is recorded (measurement epochs only, in epoch order) —
            the aggregation service's streaming tap. Pure observation: it
            runs after the result is appended, cannot influence draws or
            adaptation, and (unlike ``on_epoch``) leaves epoch blocking
            enabled. ``None`` changes nothing.
        retention: which recorded :class:`EpochResult` objects the run
            keeps in RAM: ``all`` (the default — full timeline, the
            pre-retention behaviour), ``window:N`` (the last N, drop-
            oldest), or ``stream`` (none; pair with ``on_result`` or a
            result store). Non-``all`` policies attach a
            :class:`RunningStats` to the :class:`RunResult` so summary
            metrics cover every measured epoch, dropped or not. Retention
            is bookkeeping only — it never changes a single draw.
    """

    #: Upper bound on one block's epoch span (bounds the delivery-plan
    #: outcome tables when ``adapt_interval`` is 0); block splits never
    #: change results, only when draws happen.
    MAX_BLOCK_EPOCHS = 128

    def __init__(
        self,
        deployment: Deployment,
        failure_model: FailureModel,
        scheme: AggregationScheme,
        seed: int = 0,
        energy_model: Optional[EnergyModel] = None,
        adapt_interval: int = 10,
        on_epoch: Optional[Callable[[int, Channel], None]] = None,
        use_blocked: bool = True,
        membership: Optional[DynamicMembership] = None,
        churn_interval: Optional[int] = None,
        faults=None,
        auditor=None,
        checkpoint=None,
        on_result: Optional[Callable[["EpochResult"], None]] = None,
        retention: str = "all",
    ) -> None:
        _parse_retention(retention)  # validate eagerly
        if adapt_interval < 0:
            raise ConfigurationError("adapt_interval cannot be negative")
        if churn_interval is not None and churn_interval < 1:
            raise ConfigurationError("churn_interval must be at least 1")
        if membership is not None and not callable(
            getattr(scheme, "on_membership_change", None)
        ):
            raise ConfigurationError(
                f"scheme {scheme.name!r} does not implement "
                "on_membership_change and cannot run under node churn"
            )
        self._deployment = deployment
        self._scheme = scheme
        self._channel = Channel(deployment, failure_model, seed=seed)
        self._energy_model = energy_model or EnergyModel()
        self._adapt_interval = adapt_interval
        self._on_epoch = on_epoch
        self._use_blocked = use_blocked
        self._membership = membership
        self._churn_interval = churn_interval
        self._seed = seed
        self._auditor = auditor
        self._checkpoint = checkpoint
        self._on_result = on_result
        self._retention = retention
        self._fingerprint: Optional[Dict[str, object]] = None
        if faults is not None or auditor is not None:
            # Lazy import: repro.chaos.auditor/checkpoint import back into
            # this module's dependents; faults is leaf-safe but keeping all
            # chaos imports run-time makes the layering obvious.
            from repro.chaos.faults import ChaosRuntime

            self._channel.chaos = ChaosRuntime(plan=faults, auditor=auditor)

    @property
    def channel(self) -> Channel:
        """The underlying channel (exposed for load inspection)."""
        return self._channel

    @property
    def scheme(self) -> AggregationScheme:
        """The scheme being driven."""
        return self._scheme

    @property
    def membership(self) -> Optional[DynamicMembership]:
        """The churn runtime, when node churn is enabled."""
        return self._membership

    def _effective_churn_interval(self) -> int:
        """The boundary cadence churn events are applied at."""
        if self._churn_interval is not None:
            return self._churn_interval
        return self._adapt_interval if self._adapt_interval else 10

    def _apply_churn(
        self,
        epoch: int,
        offset: int,
        energy: EnergyReport,
        warmup: int,
        readings: ReadingFn,
    ) -> None:
        """Apply the churn events due at a boundary and notify the scheme.

        Repair control traffic is billed through the channel into its
        per-node maps *and* folded into the run's energy totals (the
        boundary's log holds exactly that traffic — the previous epoch's
        log was already consumed); warm-up boundaries are excluded from the
        totals, mirroring how warm-up epochs' logs are. Workloads carrying
        per-node stream state (sliding windows) may expose an
        ``on_membership_change`` hook of their own: an interrupted stream
        must not leak stale windowed values, so the boundary is forwarded
        to them after the scheme rebuilds.
        """
        chaos = self._channel.chaos
        if chaos is not None:
            # Control billing issued at this boundary is stamped with its
            # epoch, and deferred bills due by now land first — both before
            # the membership step, identically in both execution engines.
            chaos.epoch = epoch
            chaos.flush_control(self._channel, epoch)
        update = self._membership.advance(
            epoch, offset, self._channel, self._energy_model
        )
        if update is None:
            return
        control_log = self._channel.reset_log()
        if self._auditor is not None:
            self._auditor.observe_log(control_log)
        if offset >= warmup:
            energy.add_log(control_log, self._energy_model)
        self._scheme.on_membership_change(update)
        readings_hook = getattr(readings, "on_membership_change", None)
        if callable(readings_hook):
            readings_hook(update)
        if self._auditor is not None:
            self._auditor.check_structure(self._scheme, self._membership, epoch)

    def run(
        self,
        num_epochs: int,
        readings: ReadingFn,
        start_epoch: int = 0,
        warmup: int = 0,
    ) -> RunResult:
        """Run ``num_epochs`` epochs (after ``warmup`` unrecorded ones).

        Warm-up epochs execute fully — including adaptation — but are not
        recorded, mirroring the paper's "we begin data collection only after
        the underlying aggregation topologies become stable".
        """
        if num_epochs < 0:
            raise ConfigurationError("num_epochs cannot be negative")
        results = _RetentionBuffer(self._retention)
        energy = EnergyReport()
        total = warmup + num_epochs
        start_offset = 0
        if self._checkpoint is not None:
            self._fingerprint = {
                "scheme": self._scheme.name,
                "total": total,
                "warmup": warmup,
                "start_epoch": start_epoch,
                "seed": self._seed,
                "adapt_interval": self._adapt_interval,
                "churn_interval": self._churn_interval,
            }
            if self._checkpoint.resume:
                payload = self._checkpoint.load()
                if payload is not None:
                    from repro.chaos.checkpoint import restore_run_state

                    start_offset = restore_run_state(
                        self, payload, results, energy, readings,
                        self._fingerprint,
                    )
        if self._blocked_capable():
            self._run_blocked(
                total, warmup, start_epoch, readings, results, energy,
                start_offset,
            )
        else:
            self._run_per_epoch(
                total, warmup, start_epoch, readings, results, energy,
                start_offset,
            )
        chaos = self._channel.chaos
        if chaos is not None:
            # Bills still deferred past the last boundary must land before
            # per-node words are converted to energy.
            chaos.flush_control(self._channel)
        energy.add_node_words(self._channel.per_node_words(), self._energy_model)
        return RunResult(
            scheme_name=self._scheme.name,
            epochs=results.epochs,
            energy=energy,
            stats=results.stats if results.tracked else None,
        )

    def _blocked_capable(self) -> bool:
        """Whether the epoch-blocked fast path applies to this run.

        ``on_epoch`` hooks may mutate topology or the failure model between
        epochs, which would invalidate a mid-block delivery plan — they
        force the per-epoch loop, as does a scheme without ``run_epochs``.
        ``adapt_interval == 1`` caps every block at a single epoch, where a
        plan amortizes nothing and only adds build overhead (convergence
        phases adapt every epoch), so it also keeps the per-epoch loop. A
        scheme built with ``use_batch=False`` asked for the scalar reference
        path — blocking would silently re-vectorize it, so it too runs
        per-epoch (this is what lets the equivalence suites drive the
        scalar path through the simulator).
        """
        return (
            self._use_blocked
            and self._adapt_interval != 1
            and self._on_epoch is None
            and getattr(self._scheme, "_use_batch", True)
            and callable(getattr(self._scheme, "run_epochs", None))
        )

    def _run_per_epoch(
        self,
        total: int,
        warmup: int,
        start_epoch: int,
        readings: ReadingFn,
        results: "_RetentionBuffer",
        energy: EnergyReport,
        start_offset: int = 0,
    ) -> None:
        churn_interval = self._effective_churn_interval()
        auditor = self._auditor
        for offset in range(start_offset, total):
            epoch = start_epoch + offset
            if self._checkpoint is not None and offset > start_offset:
                self._maybe_checkpoint(offset, results, energy, readings)
            if self._membership is not None and offset % churn_interval == 0:
                self._apply_churn(epoch, offset, energy, warmup, readings)
            stray_log = self._channel.reset_log()
            if auditor is not None:
                auditor.observe_log(stray_log)
            outcome = self._scheme.run_epoch(epoch, self._channel, readings)
            log = self._channel.reset_log()
            if auditor is not None:
                auditor.observe_log(log)
                auditor.check_epoch(
                    self._scheme, self._channel, outcome, log, epoch
                )
                auditor.check_billing(self._channel, epoch)
            if offset >= warmup:
                self._record(results, energy, epoch, outcome, log, readings)
            if self._adapt_interval and (offset + 1) % self._adapt_interval == 0:
                self._scheme.adapt(epoch, outcome)
                if auditor is not None:
                    auditor.check_structure(
                        self._scheme, self._membership, epoch
                    )
            if self._on_epoch is not None:
                self._on_epoch(epoch, self._channel)

    def _run_blocked(
        self,
        total: int,
        warmup: int,
        start_epoch: int,
        readings: ReadingFn,
        results: "_RetentionBuffer",
        energy: EnergyReport,
        start_offset: int = 0,
    ) -> None:
        """Execute in adaptation-interval blocks via ``scheme.run_epochs``.

        A block never crosses an adaptation boundary (the plan's lifetime is
        one adaptation interval) nor a churn boundary (membership changes
        invalidate the plan's edge set), and is capped at
        :attr:`MAX_BLOCK_EPOCHS`; per-epoch records, adaptation cadence,
        churn boundaries and epochs are exactly those of the per-epoch loop.
        """
        interval = self._adapt_interval
        churn_interval = self._effective_churn_interval()
        auditor = self._auditor
        offset = start_offset
        while offset < total:
            if self._checkpoint is not None and offset > start_offset:
                self._maybe_checkpoint(offset, results, energy, readings)
            if self._membership is not None and offset % churn_interval == 0:
                self._apply_churn(
                    start_epoch + offset, offset, energy, warmup, readings
                )
            span = interval - (offset % interval) if interval else total - offset
            span = min(span, total - offset, self.MAX_BLOCK_EPOCHS)
            if self._membership is not None:
                span = min(
                    span, churn_interval - (offset % churn_interval)
                )
            if self._checkpoint is not None:
                # Blocks additionally split at checkpoint boundaries; draws
                # are keyed by epoch, so splitting never changes results.
                span = min(span, self._checkpoint.span_cap(offset))
            epochs = [start_epoch + offset + i for i in range(span)]
            pairs = self._scheme.run_epochs(epochs, self._channel, readings)
            for i, (outcome, log) in enumerate(pairs):
                if auditor is not None:
                    auditor.observe_log(log)
                    auditor.check_epoch(
                        self._scheme, self._channel, outcome, log, epochs[i]
                    )
                if offset + i >= warmup:
                    self._record(
                        results, energy, epochs[i], outcome, log, readings
                    )
            if auditor is not None:
                # The blocked engine bills per-node loads block-at-a-time,
                # so conservation holds exactly at block edges only.
                auditor.check_billing(self._channel, epochs[-1])
            offset += span
            if interval and offset % interval == 0:
                self._scheme.adapt(epochs[-1], pairs[-1][0])
                if auditor is not None:
                    auditor.check_structure(
                        self._scheme, self._membership, epochs[-1]
                    )

    def _maybe_checkpoint(
        self,
        offset: int,
        results: "_RetentionBuffer",
        energy: EnergyReport,
        readings: ReadingFn,
    ) -> None:
        """Write a checkpoint if ``offset`` is a boundary (and maybe die).

        Called before the boundary's churn event, so a resumed run replays
        that churn from the restored membership state — identically, since
        churn events are pure keyed-hash functions of (seed, node, epoch).
        """
        if not self._checkpoint.due(offset):
            return
        from repro.chaos.checkpoint import capture_run_state

        payload = capture_run_state(
            self, offset, results, energy, readings, self._fingerprint
        )
        self._checkpoint.write(payload)
        self._checkpoint.maybe_kill(offset)

    def _record(
        self,
        results: "_RetentionBuffer",
        energy: EnergyReport,
        epoch: int,
        outcome: EpochOutcome,
        log: TransmissionLog,
        readings: ReadingFn,
    ) -> None:
        energy.add_log(log, self._energy_model)
        true_value = self._scheme.exact_answer(epoch, readings)
        extra = dict(outcome.extra)
        if self._membership is not None:
            # Diagnostic only under churn, so churn-disabled runs stay
            # byte-identical to a simulator without the feature.
            extra["alive_sensors"] = self._membership.num_alive_sensors
        aggregate = getattr(self._scheme, "aggregate", None)
        if getattr(aggregate, "workload_names", None) is not None:
            # Multi-query workload: exact_answer just stashed every query's
            # loss-free answer; record them beside the per-query estimates
            # the scheme annotated, so the report layer can split this run
            # into per-query RunResults. Single-query runs never get here.
            truths = aggregate.last_exact_evaluations
            if truths is not None:
                extra["workload_truths"] = list(truths)
        if getattr(aggregate, "group_by_spec", None) is not None:
            # Spatial GROUP BY: exact_answer just grouped the loss-free
            # readings by region; record the per-group truths beside the
            # per-group estimates the scheme annotated, so the report layer
            # can compute per-group RMS. Ungrouped runs never get here.
            group_truths = aggregate.last_exact_groups
            if group_truths is not None:
                extra["group_truths"] = dict(group_truths)
        result = EpochResult(
            epoch=epoch,
            estimate=outcome.estimate,
            true_value=true_value,
            contributing=outcome.contributing,
            contributing_estimate=outcome.contributing_estimate,
            log=log,
            extra=extra,
        )
        results.append(result)
        if self._on_result is not None:
            self._on_result(result)
