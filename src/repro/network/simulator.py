"""The epoch-driven execution engine.

One *epoch* is one complete level-by-level aggregation wave: every node
transmits once (possibly retransmitting), partial results flow ring-by-ring
toward the base station, and the base station emits one answer. Continuous
queries repeat this every epoch; the paper collects an answer per epoch for
100 epochs (400 for the timeline experiment) after a warm-up during which the
topology stabilises.

The simulator is scheme-agnostic: anything implementing
:class:`AggregationScheme` (TAG, synopsis diffusion, Tributary-Delta, or the
frequent-items variants) can be driven by it. It owns the clock, the channel,
truth computation, and metric bookkeeping; schemes own topology and algorithm
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.network.energy import EnergyModel, EnergyReport
from repro.network.failures import FailureModel
from repro.network.links import Channel, TransmissionLog
from repro.network.placement import Deployment, NodeId

#: A workload maps (node, epoch) to that node's local query result.
ReadingFn = Callable[[NodeId, int], float]


@dataclass
class EpochOutcome:
    """What a scheme reports for one epoch.

    Attributes:
        estimate: the base station's answer for the epoch.
        contributing: ground-truth number of sensors accounted for in the
            answer (the simulator can see this; a real base station cannot).
        contributing_estimate: the base station's own (approximate) count of
            contributing sensors — this is what drives adaptation.
        extra: free-form per-scheme diagnostics (e.g. delta-region size).
    """

    estimate: float
    contributing: int
    contributing_estimate: float
    extra: Dict[str, object] = field(default_factory=dict)


class AggregationScheme(Protocol):
    """The interface every aggregation scheme implements."""

    name: str

    def run_epoch(self, epoch: int, channel: Channel, readings: ReadingFn) -> EpochOutcome:
        """Execute one aggregation wave and return the epoch's outcome."""
        ...

    def exact_answer(self, epoch: int, readings: ReadingFn) -> float:
        """The loss-free answer over all sensors (ground truth)."""
        ...

    def adapt(self, epoch: int, outcome: EpochOutcome) -> None:
        """Adaptation hook, called at the configured interval."""
        ...


@dataclass
class EpochResult:
    """One epoch's record: estimate, truth, and channel statistics."""

    epoch: int
    estimate: float
    true_value: float
    contributing: int
    contributing_estimate: float
    log: TransmissionLog
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def relative_error(self) -> float:
        """|estimate - truth| / truth (0 when truth is 0 and estimate is 0)."""
        if self.true_value == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - self.true_value) / abs(self.true_value)


@dataclass
class RunResult:
    """A full run: per-epoch results plus aggregate accounting."""

    scheme_name: str
    epochs: List[EpochResult]
    energy: EnergyReport

    @property
    def estimates(self) -> List[float]:
        return [result.estimate for result in self.epochs]

    @property
    def true_values(self) -> List[float]:
        return [result.true_value for result in self.epochs]

    @property
    def relative_errors(self) -> List[float]:
        return [result.relative_error for result in self.epochs]

    def rms_error(self) -> float:
        """Relative RMS error, the paper's Section 7.3 metric.

        Defined as (1/V) * sqrt(sum_t (V_t - V)^2 / T). The paper's V is a
        single actual value; with time-varying truth we normalise each epoch
        by its own truth, which coincides with the paper's definition when
        the truth is constant.
        """
        if not self.epochs:
            return 0.0
        total = 0.0
        for result in self.epochs:
            if result.true_value == 0:
                continue
            deviation = (result.estimate - result.true_value) / result.true_value
            total += deviation * deviation
        return (total / len(self.epochs)) ** 0.5

    def mean_contributing_fraction(self, num_sensors: int) -> float:
        """Average fraction of sensors accounted for across epochs."""
        if not self.epochs or num_sensors == 0:
            return 0.0
        total = sum(result.contributing for result in self.epochs)
        return total / (len(self.epochs) * num_sensors)


class EpochSimulator:
    """Drives a scheme over a sequence of epochs.

    Args:
        deployment: sensor positions.
        failure_model: loss model (may be a :class:`FailureSchedule`).
        scheme: the aggregation scheme under test.
        seed: channel seed; runs with equal seeds see identical loss draws.
        energy_model: converts channel logs to energy figures.
        adapt_interval: call ``scheme.adapt`` every this many epochs (the
            paper adapts every 10 epochs); 0 disables adaptation.
        on_epoch: optional hook called with (epoch, channel) after every
            epoch (warm-up included) — the attachment point for topology
            maintenance (link probing, parent switching) that the paper
            runs "less frequently than aggregation".
    """

    def __init__(
        self,
        deployment: Deployment,
        failure_model: FailureModel,
        scheme: AggregationScheme,
        seed: int = 0,
        energy_model: Optional[EnergyModel] = None,
        adapt_interval: int = 10,
        on_epoch: Optional[Callable[[int, Channel], None]] = None,
    ) -> None:
        if adapt_interval < 0:
            raise ConfigurationError("adapt_interval cannot be negative")
        self._deployment = deployment
        self._scheme = scheme
        self._channel = Channel(deployment, failure_model, seed=seed)
        self._energy_model = energy_model or EnergyModel()
        self._adapt_interval = adapt_interval
        self._on_epoch = on_epoch

    @property
    def channel(self) -> Channel:
        """The underlying channel (exposed for load inspection)."""
        return self._channel

    @property
    def scheme(self) -> AggregationScheme:
        """The scheme being driven."""
        return self._scheme

    def run(
        self,
        num_epochs: int,
        readings: ReadingFn,
        start_epoch: int = 0,
        warmup: int = 0,
    ) -> RunResult:
        """Run ``num_epochs`` epochs (after ``warmup`` unrecorded ones).

        Warm-up epochs execute fully — including adaptation — but are not
        recorded, mirroring the paper's "we begin data collection only after
        the underlying aggregation topologies become stable".
        """
        if num_epochs < 0:
            raise ConfigurationError("num_epochs cannot be negative")
        results: List[EpochResult] = []
        energy = EnergyReport()
        total = warmup + num_epochs
        for offset in range(total):
            epoch = start_epoch + offset
            self._channel.reset_log()
            outcome = self._scheme.run_epoch(epoch, self._channel, readings)
            log = self._channel.reset_log()
            recording = offset >= warmup
            if recording:
                energy.add_log(log, self._energy_model)
                results.append(
                    EpochResult(
                        epoch=epoch,
                        estimate=outcome.estimate,
                        true_value=self._scheme.exact_answer(epoch, readings),
                        contributing=outcome.contributing,
                        contributing_estimate=outcome.contributing_estimate,
                        log=log,
                        extra=dict(outcome.extra),
                    )
                )
            if self._adapt_interval and (offset + 1) % self._adapt_interval == 0:
                self._scheme.adapt(epoch, outcome)
            if self._on_epoch is not None:
                self._on_epoch(epoch, self._channel)
        energy.add_node_words(self._channel.per_node_words(), self._energy_model)
        return RunResult(
            scheme_name=self._scheme.name, epochs=results, energy=energy
        )
