"""Link-quality monitoring and topology maintenance (Section 2, ref [24]).

The paper's background section describes how both aggregation families keep
their topologies healthy between aggregation waves:

* *trees*: "each node monitors the link quality to and from its neighbors
  [24]. This is done less frequently than aggregation, in order to conserve
  energy. If the relative link qualities warrant it, a node will switch to a
  new parent with better link quality";
* *rings*: "nodes can monitor link quality and change levels as warranted".

This module provides those mechanisms for every scheme in the library:

* :class:`LinkQualityMonitor` — a per-directed-link EWMA delivery estimator.
  It can be fed passively (from the outcomes of data transmissions a node
  observes) or actively via cheap probe rounds drawn from the same
  deterministic channel the aggregation uses.
* :class:`TreeMaintainer` — periodic parent switching. Candidate parents are
  restricted to ring level i-1 neighbours, so maintained trees always keep
  the Tributary-Delta synchronisation constraint "tree links are a subset of
  the links in the ring" (Section 4.1).
* :func:`rebuild_rings` — ring-level maintenance: links whose estimated
  quality fell below a floor are dropped from the connectivity graph before
  the BFS levels are recomputed, letting badly-connected nodes move to a
  higher ring where they can still be heard.

None of this changes what the aggregation algorithms compute; it changes the
topology they run over, which is exactly how the paper frames it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import ConfigurationError
from repro.network.links import Channel
from repro.network.placement import BASE_STATION, Deployment, NodeId
from repro.network.rings import RingsTopology
from repro.tree.structure import Tree

#: A directed radio link (sender, receiver).
Link = Tuple[NodeId, NodeId]

#: Probe transmissions draw channel outcomes at attempt numbers far above any
#: data attempt, so probing never perturbs the loss draws data messages see.
_PROBE_ATTEMPT_BASE = 1_000_000


class LinkQualityMonitor:
    """EWMA delivery-rate estimator per directed link.

    Each observation is a Bernoulli delivery outcome; the estimate for a link
    starts at ``prior`` (optimistic, matching a freshly-built topology whose
    links were just good enough to hear the construction broadcasts) and is
    updated as ``estimate <- (1 - alpha) * estimate + alpha * outcome``.

    Args:
        alpha: EWMA weight of the newest observation, in (0, 1].
        prior: initial delivery estimate for unobserved links.
    """

    def __init__(self, alpha: float = 0.2, prior: float = 0.9) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if not 0.0 <= prior <= 1.0:
            raise ConfigurationError("prior must be in [0, 1]")
        self._alpha = alpha
        self._prior = prior
        self._estimates: Dict[Link, float] = {}
        self._observations: Dict[Link, int] = {}

    @property
    def observed_links(self) -> List[Link]:
        """Links with at least one observation, sorted."""
        return sorted(self._estimates)

    def observation_count(self, sender: NodeId, receiver: NodeId) -> int:
        """How many outcomes have been folded into this link's estimate."""
        return self._observations.get((sender, receiver), 0)

    def observe(self, sender: NodeId, receiver: NodeId, delivered: bool) -> float:
        """Fold one delivery outcome into the link's estimate.

        Returns the updated estimate.
        """
        link = (sender, receiver)
        current = self._estimates.get(link, self._prior)
        updated = (1.0 - self._alpha) * current + self._alpha * (
            1.0 if delivered else 0.0
        )
        self._estimates[link] = updated
        self._observations[link] = self._observations.get(link, 0) + 1
        return updated

    def quality(self, sender: NodeId, receiver: NodeId) -> float:
        """Current delivery-rate estimate for the link (prior if unobserved)."""
        return self._estimates.get((sender, receiver), self._prior)

    def probe_round(
        self,
        channel: Channel,
        links: Iterable[Link],
        epoch: int,
        probes_per_link: int = 1,
    ) -> int:
        """Actively probe a set of links and fold the outcomes in.

        Probes draw from the same deterministic channel as data messages but
        at reserved attempt numbers, so the loss patterns data messages see
        are unchanged. The paper notes monitoring "is done less frequently
        than aggregation, in order to conserve energy" — callers control the
        cadence; this method just performs one round.

        Returns the number of probe transmissions performed (for energy
        accounting by the caller).
        """
        if probes_per_link < 1:
            raise ConfigurationError("probes_per_link must be at least 1")
        sent = 0
        for sender, receiver in links:
            for probe in range(probes_per_link):
                attempt = _PROBE_ATTEMPT_BASE + probe
                outcome = channel.delivered(sender, receiver, epoch, attempt)
                self.observe(sender, receiver, outcome)
                sent += 1
        return sent


@dataclass(frozen=True)
class ParentSwitch:
    """One maintenance action: ``node`` re-parented from ``old`` to ``new``."""

    node: NodeId
    old_parent: NodeId
    new_parent: NodeId


class TreeMaintainer:
    """Periodic parent switching driven by link-quality estimates.

    A node switches to the upstream (ring level i-1) neighbour with the best
    estimated link quality when that estimate beats its current parent's by
    more than ``switch_margin`` — the hysteresis that keeps healthy links
    from flapping. Restricting candidates to level i-1 neighbours preserves
    the synchronisation constraint of Section 4.1, so maintained trees remain
    valid Tributary-Delta substrates.

    Args:
        rings: the rings topology that defines candidate parents.
        monitor: the link-quality estimates to act on.
        switch_margin: minimum quality improvement required to switch.
        protected: nodes that may never be re-parented (the bushy
            construction's *pinned* children, whose placement raises the
            domination factor — see Section 6.1.3).
    """

    def __init__(
        self,
        rings: RingsTopology,
        monitor: LinkQualityMonitor,
        switch_margin: float = 0.1,
        protected: Optional[Set[NodeId]] = None,
    ) -> None:
        if switch_margin < 0.0:
            raise ConfigurationError("switch_margin cannot be negative")
        self._rings = rings
        self._monitor = monitor
        self._switch_margin = switch_margin
        self._protected = set(protected or ())

    def best_parent(self, node: NodeId) -> Optional[NodeId]:
        """The upstream neighbour with the highest estimated quality."""
        candidates = self._rings.upstream_neighbors(node)
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda parent: (self._monitor.quality(node, parent), -parent),
        )

    def maintain(self, tree: Tree) -> Tuple[Tree, List[ParentSwitch]]:
        """Re-parent nodes whose best candidate clearly beats their parent.

        Returns the (possibly identical) maintained tree and the switches
        applied. The input tree is not modified.
        """
        switches: List[ParentSwitch] = []
        parents = dict(tree.parents)
        for node in sorted(parents):
            if node in self._protected:
                continue
            current = parents[node]
            if self._rings.level(node) != self._rings.level(current) + 1:
                # Foreign tree (e.g. TAG with same-level parents): leave the
                # link alone rather than guess at its schedule.
                continue
            candidate = self.best_parent(node)
            if candidate is None or candidate == current:
                continue
            gain = self._monitor.quality(node, candidate) - self._monitor.quality(
                node, current
            )
            if gain > self._switch_margin:
                parents[node] = candidate
                switches.append(ParentSwitch(node, current, candidate))
        if not switches:
            return tree, []
        return Tree(parents=parents, root=tree.root), switches


def rebuild_rings(
    deployment: Deployment,
    connectivity: nx.Graph,
    monitor: LinkQualityMonitor,
    min_quality: float = 0.5,
) -> RingsTopology:
    """Recompute ring levels after dropping low-quality links.

    The paper's rings maintenance: "nodes can monitor link quality and change
    levels as warranted". We drop every radio edge whose *worse direction*
    has an estimated quality below ``min_quality``, then re-run the BFS level
    construction. Edges whose removal would disconnect a node from the base
    station are retained (a node prefers a bad ring position over no ring
    position), restoring the best such edge per stranded node.

    Returns the rebuilt :class:`RingsTopology`.
    """
    if not 0.0 <= min_quality <= 1.0:
        raise ConfigurationError("min_quality must be in [0, 1]")
    pruned = nx.Graph()
    pruned.add_nodes_from(connectivity.nodes)
    dropped: List[Tuple[NodeId, NodeId, float]] = []
    for a, b in connectivity.edges:
        quality = min(monitor.quality(a, b), monitor.quality(b, a))
        if quality >= min_quality:
            pruned.add_edge(a, b)
        else:
            dropped.append((a, b, quality))

    # Reconnect stranded nodes through their best dropped edge.
    reachable = set(nx.node_connected_component(pruned, BASE_STATION))
    while True:
        stranded = set(pruned.nodes) - reachable
        if not stranded:
            break
        bridges = [
            (quality, a, b)
            for a, b, quality in dropped
            if (a in stranded) != (b in stranded)
        ]
        if not bridges:
            raise ConfigurationError(
                "connectivity graph cannot reach the base station even with "
                "all links restored"
            )
        _, a, b = max(bridges)
        pruned.add_edge(a, b)
        reachable = set(nx.node_connected_component(pruned, BASE_STATION))

    return RingsTopology.build(deployment, pruned)


class OnlineMaintenance:
    """Periodic monitoring + parent switching wired into a running scheme.

    Implements the paper's maintenance cadence — "this is done less
    frequently than aggregation, in order to conserve energy" — as an
    :class:`~repro.network.simulator.EpochSimulator` ``on_epoch`` hook:
    every ``interval`` epochs it probes each node's candidate parent links
    and, when the estimates warrant it, re-parents the scheme's tree via
    ``scheme.replace_tree``.

    Args:
        scheme: any scheme exposing ``tree`` and ``replace_tree``
            (:class:`~repro.core.tag_scheme.TagScheme` does).
        rings: the rings topology defining candidate parents.
        monitor: the estimator to maintain (defaults to a fresh one).
        interval: epochs between maintenance rounds.
        switch_margin: hysteresis passed to :class:`TreeMaintainer`.
        probes_per_link: probe transmissions per candidate link per round.
    """

    def __init__(
        self,
        scheme,
        rings: RingsTopology,
        monitor: Optional[LinkQualityMonitor] = None,
        interval: int = 10,
        switch_margin: float = 0.1,
        probes_per_link: int = 1,
    ) -> None:
        if interval < 1:
            raise ConfigurationError("maintenance interval must be at least 1")
        if not hasattr(scheme, "replace_tree"):
            raise ConfigurationError(
                f"{type(scheme).__name__} does not support tree replacement"
            )
        self._scheme = scheme
        self._rings = rings
        self.monitor = monitor or LinkQualityMonitor()
        self._interval = interval
        self._probes_per_link = probes_per_link
        self._maintainer = TreeMaintainer(
            rings, self.monitor, switch_margin=switch_margin
        )
        #: All parent switches applied so far, in order.
        self.switch_log: List[ParentSwitch] = []
        #: Total probe transmissions performed (energy bookkeeping).
        self.probes_sent = 0

    def _candidate_links(self) -> List[Link]:
        return [
            (node, candidate)
            for node in self._scheme.tree.parents
            for candidate in self._rings.upstream_neighbors(node)
        ]

    def __call__(self, epoch: int, channel: Channel) -> None:
        """The ``on_epoch`` hook: probe and maintain every ``interval``."""
        if (epoch + 1) % self._interval != 0:
            return
        self.probes_sent += self.monitor.probe_round(
            channel, self._candidate_links(), epoch, self._probes_per_link
        )
        maintained, switches = self._maintainer.maintain(self._scheme.tree)
        if switches:
            self._scheme.replace_tree(maintained)
            self.switch_log.extend(switches)


def feed_monitor_from_channel(
    monitor: LinkQualityMonitor,
    channel: Channel,
    links: Iterable[Link],
    epoch: int,
) -> None:
    """Passively record what each link would have delivered this epoch.

    A convenience for experiments that want monitoring without extra probe
    energy: the data transmissions already drew these outcomes, so folding
    them in models a node snooping on its own traffic.
    """
    for sender, receiver in links:
        monitor.observe(
            sender, receiver, channel.delivered(sender, receiver, epoch, 0)
        )
