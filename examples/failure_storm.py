#!/usr/bin/env python
"""Failure storm: Tributary-Delta riding out bursts, regions, and crashes.

A 250-sensor network runs a continuous Count query through four weather
phases:

  epochs   0- 99   calm            (Global 2% background loss)
  epochs 100-199   regional storm  (one quadrant at 60% loss)
  epochs 200-299   bursty fading   (Gilbert-Elliott, ~25% mean, bursty)
  epochs 300-399   node crashes    (30 motes dead; background loss)

The TD strategy re-shapes its delta region as each phase arrives. The
script prints a per-phase comparison against the static TAG/SD baselines
and a sparkline of TD's relative error across the whole timeline.

Run:  python examples/failure_storm.py
"""

from __future__ import annotations

from repro import (
    ConstantReadings,
    CountAggregate,
    EpochSimulator,
    FailureSchedule,
    GilbertElliottLoss,
    GlobalLoss,
    NodeCrashLoss,
    RegionalLoss,
    SynopsisDiffusionScheme,
    TDGraph,
    TagScheme,
    TributaryDeltaScheme,
    build_bushy_tree,
    initial_modes_by_level,
    make_synthetic_scenario,
)
from repro.core.adaptation import TDFinePolicy
from repro.plotting import sparkline

PHASES = (
    ("calm", 0),
    ("regional storm", 100),
    ("bursty fading", 200),
    ("node crashes", 300),
)
PHASE_LENGTH = 100


def build_schedule(scenario, seed: int) -> FailureSchedule:
    crash_victims = scenario.deployment.sensor_ids[::8][:30]
    return FailureSchedule(
        [
            (0, GlobalLoss(0.02)),
            (100, RegionalLoss(0.6, 0.02)),
            (
                200,
                GilbertElliottLoss(
                    good_loss=0.05,
                    bad_loss=0.8,
                    p_enter_bad=0.1,
                    p_exit_bad=0.25,
                    seed=seed,
                ),
            ),
            (
                300,
                NodeCrashLoss.single_window(
                    crash_victims, start=300, end=400, base=GlobalLoss(0.02)
                ),
            ),
        ]
    )


def main() -> None:
    scenario = make_synthetic_scenario(num_sensors=250, seed=7)
    tree = build_bushy_tree(scenario.rings, seed=7)
    schedule = build_schedule(scenario, seed=7)
    readings = ConstantReadings(1.0)
    sensors = scenario.deployment.num_sensors

    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 0)
    )
    schemes = {
        "TAG": TagScheme(scenario.deployment, tree, CountAggregate()),
        "SD": SynopsisDiffusionScheme(
            scenario.deployment, scenario.rings, CountAggregate()
        ),
        "TD": TributaryDeltaScheme(
            scenario.deployment,
            graph,
            CountAggregate(),
            policy=TDFinePolicy(),
        ),
    }

    print(f"{sensors} sensors; four 100-epoch failure phases\n")
    runs = {}
    for name, scheme in schemes.items():
        interval = 5 if name == "TD" else 0
        simulator = EpochSimulator(
            scenario.deployment,
            schedule,
            scheme,
            seed=3,
            adapt_interval=interval,
        )
        runs[name] = simulator.run(400, readings)

    print(f"{'phase':16s}" + "".join(f"{name:>10s}" for name in schemes))
    for label, start in PHASES:
        row = f"{label:16s}"
        for name in schemes:
            window = runs[name].epochs[start : start + PHASE_LENGTH]
            errors = [epoch.relative_error for epoch in window]
            row += f"{sum(errors) / len(errors):>10.3f}"
        print(row + "   (mean relative error)")

    td_errors = [epoch.relative_error for epoch in runs["TD"].epochs]
    # One sparkline character per 5 epochs.
    compressed = [
        sum(td_errors[i : i + 5]) / 5 for i in range(0, len(td_errors), 5)
    ]
    print("\nTD relative error across the storm (5-epoch buckets):")
    print("  " + sparkline(compressed))
    print(
        f"\nfinal delta region: {len(graph.delta_region())} nodes; "
        f"adaptations performed: {len(schemes['TD'].adaptation_log)}"
    )


if __name__ == "__main__":
    main()
