#!/usr/bin/env python
"""Quickstart: compare TAG, SD and Tributary-Delta on a lossy network.

Builds a 200-sensor deployment, runs a continuous Count query under 20%
message loss with each aggregation scheme, and prints the RMS error and the
fraction of sensors accounted for — the Figure 2 story in miniature.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConstantReadings,
    CountAggregate,
    EpochSimulator,
    GlobalLoss,
    SynopsisDiffusionScheme,
    TDGraph,
    TagScheme,
    TributaryDeltaScheme,
    build_bushy_tree,
    initial_modes_by_level,
    make_synthetic_scenario,
)
from repro.core.adaptation import TDFinePolicy

LOSS_RATE = 0.2
EPOCHS = 40


def main() -> None:
    scenario = make_synthetic_scenario(num_sensors=200, seed=42)
    tree = build_bushy_tree(scenario.rings, seed=42)
    failure = GlobalLoss(LOSS_RATE)
    readings = ConstantReadings(1.0)
    sensors = scenario.deployment.num_sensors
    print(f"deployment: {sensors} sensors, {scenario.rings.depth} rings deep")
    print(f"failure model: Global({LOSS_RATE})\n")

    # The tree baseline (TAG) and the multi-path baseline (SD).
    schemes = {
        "TAG (tree)": TagScheme(scenario.deployment, tree, CountAggregate()),
        "SD (multi-path)": SynopsisDiffusionScheme(
            scenario.deployment, scenario.rings, CountAggregate()
        ),
    }

    # Tributary-Delta: start with a minimal delta and let the TD strategy
    # grow it until ~90% of sensors are accounted for.
    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 0)
    )
    td = TributaryDeltaScheme(
        scenario.deployment, graph, CountAggregate(), policy=TDFinePolicy()
    )
    # Stabilisation phase: adapt every epoch until the delta converges.
    EpochSimulator(
        scenario.deployment, failure, td, seed=1, adapt_interval=1
    ).run(0, readings, warmup=100)
    schemes["Tributary-Delta"] = td

    print(f"{'scheme':18s} {'RMS error':>10s} {'contributing':>13s}")
    for name, scheme in schemes.items():
        interval = 10 if name == "Tributary-Delta" else 0
        simulator = EpochSimulator(
            scenario.deployment, failure, scheme, seed=2, adapt_interval=interval
        )
        run = simulator.run(EPOCHS, readings, start_epoch=100)
        contributing = run.mean_contributing_fraction(sensors)
        print(f"{name:18s} {run.rms_error():>10.3f} {contributing:>12.1%}")

    print(f"\nTributary-Delta delta region: {len(graph.delta_region())} nodes "
          f"of {sensors + 1}")


if __name__ == "__main__":
    main()
