#!/usr/bin/env python
"""Quickstart: compare TAG, SD and Tributary-Delta on a lossy network.

One declarative config describes the run — topology, workload, failure
model, scheme, engine knobs — and one Session executes it; sweeping the
scheme axis reproduces the Figure 2 story in miniature. Every name in the
config resolves through the registries in ``repro.registry``, so a
``register_scheme``/``register_aggregate`` decorator is all it takes to
make a new component sweepable here too.

(The underlying building blocks remain importable for hand-wiring — see
``examples/adaptive_monitoring.py`` — and produce byte-identical results.)

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RunConfig, Session

BASE = RunConfig(
    scheme="TAG",              # swept below
    failure="global:0.2",      # 20% message loss everywhere
    aggregate="count",         # a continuous Count query
    num_sensors=200,
    scenario_seed=42,
    seed=2,
    epochs=40,
    converge_epochs=100,
)


def main() -> None:
    print(f"deployment: {BASE.num_sensors} sensors")
    print(f"failure model: {BASE.failure}\n")
    report = Session().sweep(
        {"scheme": ["TAG", "SD", "TD-Coarse", "TD"]}, base=BASE
    )
    print(report.render())

    # The same config round-trips through JSON — `repro run-config` runs it.
    print("\nthis sweep's base config:")
    print(BASE.to_json(indent=2))


if __name__ == "__main__":
    main()
