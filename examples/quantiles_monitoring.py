#!/usr/bin/env python
"""Quantile monitoring: medians and tails over a lossy sensor field.

Scenario: 180 motes sample a noisy temperature field with a hot region
(think: machine room with a failing chiller). The operator wants the
median and the 90th percentile — aggregates the paper computes via its
quantile algorithms (Sections 5 and 6.1.4).

The script compares, under 25% message loss:

* the pure-tree precision-gradient GK algorithm (exact-ish when messages
  survive, loses whole subtrees when they don't);
* Tributary-Delta quantiles (GK tributaries feeding a weighted-sample
  delta, the library's §5+§6.3 combination).

Run:  python examples/quantiles_monitoring.py
"""

from __future__ import annotations

from repro import (
    GlobalLoss,
    TDGraph,
    build_bushy_tree,
    initial_modes_by_level,
    make_synthetic_scenario,
)
from repro.frequent.td_quantiles import TributaryDeltaQuantiles
from repro.network.links import Channel

LOSS_RATE = 0.25
EPOCHS = 12
READINGS_PER_MOTE = 24


def temperature(node: int, epoch: int, position) -> list[float]:
    """A diurnal base plus a hot corner around (3, 3)."""
    x, y = position
    base = 20.0 + 3.0 * ((epoch % 24) / 24.0)
    hot = 18.0 * max(0.0, 1.0 - ((x - 3.0) ** 2 + (y - 3.0) ** 2) / 40.0)
    return [
        base + hot + ((node * 31 + i * 17) % 20) / 10.0
        for i in range(READINGS_PER_MOTE)
    ]


def main() -> None:
    scenario = make_synthetic_scenario(num_sensors=180, seed=5)
    tree = build_bushy_tree(scenario.rings, seed=5)
    deployment = scenario.deployment

    def items_fn(node, epoch):
        return temperature(node, epoch, deployment.position(node))

    def truth(epoch, phi):
        values = sorted(
            v for node in deployment.sensor_ids for v in items_fn(node, epoch)
        )
        return values[min(len(values) - 1, int(phi * len(values)))]

    # Two topologies: all-tree (the §6.1.4 algorithm alone) and a converged
    # delta covering the three innermost rings.
    all_tree = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, -1)
    )
    mixed = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 3)
    )
    schemes = {
        "tree GK (§6.1.4)": TributaryDeltaQuantiles(all_tree, epsilon=0.05),
        "Tributary-Delta": TributaryDeltaQuantiles(
            mixed, epsilon=0.05, sample_size=192, representatives=24
        ),
    }

    print(
        f"{deployment.num_sensors} motes, Global({LOSS_RATE}) loss, "
        f"{EPOCHS} epochs, {READINGS_PER_MOTE} readings/mote\n"
    )
    print(f"{'scheme':18s} {'median err':>11s} {'p90 err':>9s} {'missed':>7s}")
    for name, scheme in schemes.items():
        median_errors = []
        p90_errors = []
        missed = 0
        for epoch in range(EPOCHS):
            channel = Channel(deployment, GlobalLoss(LOSS_RATE), seed=11)
            outcome = scheme.run_epoch(epoch, channel, items_fn)
            try:
                median = outcome.quantile(0.5)
                p90 = outcome.quantile(0.9)
            except Exception:
                missed += 1
                continue
            median_errors.append(abs(median - truth(epoch, 0.5)))
            p90_errors.append(abs(p90 - truth(epoch, 0.9)))

        def mean(values):
            return sum(values) / len(values) if values else float("nan")

        print(
            f"{name:18s} {mean(median_errors):>10.2f}C {mean(p90_errors):>8.2f}C "
            f"{missed:>5d}/{EPOCHS}"
        )

    print(
        "\nThe tree alone answers precisely when its spine survives but"
        "\ndrops whole subtrees under loss; the delta keeps every epoch's"
        "\nanswer close by accounting for readings along many paths."
    )


if __name__ == "__main__":
    main()
