#!/usr/bin/env python
"""Operating a real-ish deployment: LabData end to end (§7.3 + §7.4.1).

Walks through what a practitioner would do with this library on a concrete
deployment: inspect the topology, check the aggregation tree's domination
factor (which controls the frequent-items bounds), run a day of Sum
queries over the lossy links, and read quantiles off a uniform sample —
all on the 54-mote LabData reconstruction.

Run:  python examples/lab_deployment.py
"""

from __future__ import annotations

from repro import (
    EpochSimulator,
    LabDataScenario,
    SumAggregate,
    SynopsisDiffusionScheme,
    TagScheme,
    UniformSampleAggregate,
    build_bushy_tree,
    build_tag_tree,
    domination_factor,
    quantile_from_sample,
)
from repro.network.links import Channel
from repro.network.failures import NoLoss
from repro.tree.domination import height_profile


def main() -> None:
    lab = LabDataScenario.build()
    print(f"LabData: {lab.num_sensors} motes, rings depth {lab.rings.depth}")
    losses = sorted(lab.base_loss.values())
    print(
        f"link loss: min {losses[0]:.2f}, median {losses[len(losses)//2]:.2f}, "
        f"max {losses[-1]:.2f}\n"
    )

    # -- topology quality (Section 7.4.1) --------------------------------
    bushy = build_bushy_tree(lab.rings, seed=1)
    tag_tree = build_tag_tree(lab.rings, seed=1)
    print("aggregation trees:")
    for name, tree in (("bushy (paper §6.1.3)", bushy), ("standard TAG", tag_tree)):
        print(
            f"  {name:22s} height={tree.height} "
            f"h(i)={height_profile(tree)} d={domination_factor(tree):.2f}"
        )

    # -- a day of Sum queries (Section 7.3) -------------------------------
    failure = lab.failure_model()  # the lab's own lossy links
    readings = lab.readings
    print("\nSum query, 100 epochs over the lab's lossy links:")
    for name, scheme in (
        ("TAG", TagScheme(lab.deployment, bushy, SumAggregate())),
        (
            "SD",
            SynopsisDiffusionScheme(lab.deployment, lab.rings, SumAggregate()),
        ),
    ):
        simulator = EpochSimulator(
            lab.deployment, failure, scheme, seed=9, adapt_interval=0
        )
        run = simulator.run(100, readings)
        print(
            f"  {name:4s} RMS={run.rms_error():.3f} "
            f"contributing={run.mean_contributing_fraction(lab.num_sensors):.1%}"
        )

    # -- quantiles from a uniform sample (Section 5) ----------------------
    sample_aggregate = UniformSampleAggregate(k=32)
    scheme = SynopsisDiffusionScheme(lab.deployment, lab.rings, sample_aggregate)
    channel = Channel(lab.deployment, failure, seed=9)
    outcome = scheme.run_epoch(0, channel, readings)
    # Re-run SG/fusion chain to fetch the sample itself for quantiles.
    sample = None
    for node in lab.deployment.sensor_ids:
        local = sample_aggregate.synopsis_local(node, 0, readings(node, 0))
        sample = local if sample is None else sample.merge(local)
    print("\nlight-level quantiles from a 32-element uniform sample:")
    for phi in (0.25, 0.5, 0.75):
        print(f"  phi={phi:.2f}: {quantile_from_sample(sample, phi):.0f} lux")


if __name__ == "__main__":
    main()
