#!/usr/bin/env python
"""Declarative queries: SELECT / WHERE / WINDOW over a lossy network.

The paper's query model (Section 2): continuous aggregate queries with
local predicate evaluation and per-sensor windows. This example issues
three one-line queries against a 150-mote temperature deployment and runs
each through Tributary-Delta, with online link maintenance keeping the
tree healthy in the background:

    SELECT count WHERE value > 28        -- how many motes read hot?
    SELECT avg WINDOW 6 MEAN             -- smoothed network average
    SELECT max                           -- current hottest reading

Run:  python examples/declarative_queries.py
"""

from __future__ import annotations

from repro import (
    GlobalLoss,
    TDGraph,
    TributaryDeltaScheme,
    build_bushy_tree,
    initial_modes_by_level,
    make_synthetic_scenario,
    parse_query,
)
from repro.core.adaptation import TDFinePolicy
from repro.network.links import Channel

LOSS_RATE = 0.15
EPOCHS = 10

QUERIES = (
    "SELECT count WHERE value > 28",
    "SELECT avg WINDOW 6 MEAN",
    "SELECT max",
)


def temperature(node: int, epoch: int) -> float:
    """A slowly warming field with per-mote offsets; hot motes exist."""
    base = 22.0 + 0.3 * epoch
    offset = (node * 13 % 17) - 8  # -8 .. +8 degrees of mote-to-mote spread
    return base + offset * 0.8


def main() -> None:
    scenario = make_synthetic_scenario(num_sensors=150, seed=9)
    tree = build_bushy_tree(scenario.rings, seed=9)
    deployment = scenario.deployment
    print(
        f"{deployment.num_sensors} motes, Global({LOSS_RATE}) loss; "
        f"{EPOCHS} epochs per query\n"
    )

    for text in QUERIES:
        query = parse_query(text)
        aggregate, readings = query.build(temperature)
        graph = TDGraph(
            scenario.rings, tree, initial_modes_by_level(scenario.rings, 2)
        )
        scheme = TributaryDeltaScheme(
            deployment, graph, aggregate, policy=TDFinePolicy()
        )
        estimates = []
        truths = []
        for epoch in range(EPOCHS):
            channel = Channel(deployment, GlobalLoss(LOSS_RATE), seed=4)
            outcome = scheme.run_epoch(epoch, channel, readings)
            estimates.append(outcome.estimate)
            truths.append(
                aggregate.exact(
                    [readings(node, epoch) for node in deployment.sensor_ids]
                )
            )
        mean_estimate = sum(estimates) / len(estimates)
        mean_truth = sum(truths) / len(truths)
        print(f"  {query.render()}")
        print(
            f"    mean estimate {mean_estimate:9.1f}   "
            f"mean truth {mean_truth:9.1f}\n"
        )

    print(
        "Predicates are evaluated at each mote (non-matching motes still\n"
        "relay and still feed the adaptation loop); windows smooth each\n"
        "mote's own stream before aggregation — both per Section 2."
    )


if __name__ == "__main__":
    main()
