#!/usr/bin/env python
"""Consensus readings in a noisy lab: the frequent-items pipeline (§6).

The paper motivates frequent items with biological/chemical sensing, where
single readings are unreliable and operators want a *consensus measure*.
This script runs all three of the paper's frequent-items algorithms over
the LabData scenario — the Min Total-load tree algorithm, the class-based
multi-path algorithm, and their Tributary-Delta combination — under
moderate message loss, and compares what each one reports against ground
truth.

Run:  python examples/frequent_items.py
"""

from __future__ import annotations

from repro import GlobalLoss, LabDataScenario, build_bushy_tree
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.datasets.streams import exact_item_counts
from repro.frequent.mp_fi import FMOperator, MultipathFrequentItems
from repro.frequent.reporting import (
    false_negative_rate,
    false_positive_rate,
    report_frequent,
    true_frequent,
)
from repro.frequent.td_fi import (
    MultipathFrequentItemsScheme,
    TributaryDeltaFrequentItems,
)
from repro.frequent.tree_fi import TreeFrequentItems
from repro.network.links import Channel

SUPPORT = 0.01  # report items covering >= 1% of all readings
EPSILON = 0.001  # eps-deficient counting tolerance
LOSS = 0.4


def main() -> None:
    lab = LabDataScenario.build()
    tree = build_bushy_tree(lab.rings, seed=1)
    items_fn = lambda node, epoch: lab.item_stream.items(node, epoch)

    counts = exact_item_counts(lab.item_stream, lab.deployment.sensor_ids, 0)
    total = sum(counts.values())
    truth = true_frequent(counts, SUPPORT)
    print(
        f"LabData: {lab.num_sensors} motes, {total} readings this epoch, "
        f"{len(counts)} distinct levels, {len(truth)} truly frequent\n"
    )
    failure = GlobalLoss(LOSS)

    results = {}

    # 1. Tree: Min Total-load (optimal total communication, fragile).
    engine = TreeFrequentItems.min_total_load(tree, EPSILON)
    channel = Channel(lab.deployment, failure, seed=5)
    root, load = engine.aggregate(items_fn, 0, channel=channel)
    reported = report_frequent(root, SUPPORT, EPSILON) if root else []
    results["Min Total-load (tree)"] = (reported, channel.log.words_sent)

    # 2. Multi-path: the class-based algorithm over rings with the
    #    best-effort FM operator of [7].
    algorithm = MultipathFrequentItems(
        epsilon=EPSILON, total_items_hint=total, operator=FMOperator(8)
    )
    scheme = MultipathFrequentItemsScheme(lab.rings, algorithm, support=SUPPORT)
    channel = Channel(lab.deployment, failure, seed=5)
    outcome = scheme.run_epoch(0, channel, items_fn)
    results["Multi-path (rings)"] = (outcome.reported, channel.log.words_sent)

    # 3. Tributary-Delta: tree tributaries feeding a 2-ring delta.
    graph = TDGraph(lab.rings, tree, initial_modes_by_level(lab.rings, 2))
    td = TributaryDeltaFrequentItems(
        graph,
        epsilon=EPSILON,
        support=SUPPORT,
        total_items_hint=total,
        operator=FMOperator(8),
    )
    channel = Channel(lab.deployment, failure, seed=5)
    outcome = td.run_epoch(0, channel, items_fn)
    results["Tributary-Delta"] = (outcome.reported, channel.log.words_sent)

    print(
        f"under Global({LOSS}) loss:\n"
        f"{'algorithm':24s} {'reported':>8s} {'FN%':>6s} {'FP%':>6s} {'words':>8s}"
    )
    for name, (reported, words) in results.items():
        fn = 100 * false_negative_rate(truth, reported)
        fp = 100 * false_positive_rate(truth, reported)
        print(f"{name:24s} {len(reported):>8d} {fn:>5.0f} {fp:>5.0f} {words:>8d}")

    print(
        "\nThe tree algorithm is cheapest but loses whole subtrees; the\n"
        "multi-path algorithm pays larger messages for robustness;\n"
        "Tributary-Delta combines exact tributaries with a robust delta."
    )


if __name__ == "__main__":
    main()
