#!/usr/bin/env python
"""Multi-query aggregation: one message sweep, three concurrent queries.

Section 4.1's adaptation design is deliberately query-agnostic so that one
delta region can serve "a variety of concurrently running queries". This
example runs Count, Sum and Average *simultaneously* through a single
Tributary-Delta sweep via :class:`CompositeAggregate`, and compares the
energy bill against running the three queries as separate sweeps.

It closes with the epoch-schedule latency budget for the deployment (the
Table 1 latency column, quantified) — multi-query sharing keeps latency at
the single-query level because the per-node transmission count is what the
schedule serialises.

Run:  python examples/multi_query.py
"""

from __future__ import annotations

from repro import (
    AverageAggregate,
    CountAggregate,
    EpochSimulator,
    GlobalLoss,
    SumAggregate,
    TDGraph,
    TributaryDeltaScheme,
    build_bushy_tree,
    initial_modes_by_level,
    make_synthetic_scenario,
)
from repro.aggregates import CompositeAggregate
from repro.core.adaptation import TDFinePolicy
from repro.datasets.streams import UniformReadings
from repro.network.latency import LatencyModel, scheme_latency_ms

LOSS_RATE = 0.15
EPOCHS = 30


def run_td(scenario, tree, aggregate, seed=2):
    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 1)
    )
    scheme = TributaryDeltaScheme(
        scenario.deployment, graph, aggregate, policy=TDFinePolicy()
    )
    readings = UniformReadings(10, 30, seed=9)
    # Stabilisation: adapt every epoch until the delta matches the loss.
    EpochSimulator(
        scenario.deployment,
        GlobalLoss(LOSS_RATE),
        scheme,
        seed=seed,
        adapt_interval=1,
    ).run(0, readings, warmup=60)
    simulator = EpochSimulator(
        scenario.deployment, GlobalLoss(LOSS_RATE), scheme, seed=seed
    )
    return simulator.run(EPOCHS, readings, start_epoch=100), scheme


def main() -> None:
    scenario = make_synthetic_scenario(num_sensors=220, seed=3)
    tree = build_bushy_tree(scenario.rings, seed=3)
    sensors = scenario.deployment.num_sensors
    print(f"{sensors} sensors, Global({LOSS_RATE}), {EPOCHS} epochs\n")

    # --- one shared sweep for all three queries --------------------------
    composite = CompositeAggregate(
        [CountAggregate(), SumAggregate(), AverageAggregate()], primary=1
    )
    shared_run, shared_scheme = run_td(scenario, tree, composite)
    answers = composite.evaluations_by_name()
    print("shared sweep (CompositeAggregate):")
    readings = UniformReadings(10, 30, seed=9)
    truth = composite.exact_all(
        [readings(node, EPOCHS + 19) for node in scenario.deployment.sensor_ids]
    )
    contributing = shared_run.mean_contributing_fraction(sensors)
    print(f"  sensors accounted for: {contributing:.0%} (the rest lost to the channel)")
    for (name, value), exact in zip(answers.items(), truth):
        print(f"  {name:8s} estimate {value:10.1f}   truth {exact:10.1f}")
    print(
        f"  energy: {shared_run.energy.total_messages} messages, "
        f"{shared_run.energy.total_words} words, "
        f"{shared_run.energy.total_uj / 1e3:.1f} mJ"
    )

    # --- the same three queries as separate sweeps ------------------------
    separate_messages = 0
    separate_words = 0
    separate_uj = 0.0
    for aggregate in (CountAggregate(), SumAggregate(), AverageAggregate()):
        run, _ = run_td(scenario, tree, aggregate)
        separate_messages += run.energy.total_messages
        separate_words += run.energy.total_words
        separate_uj += run.energy.total_uj
    print("\nthree separate sweeps:")
    print(
        f"  energy: {separate_messages} messages, {separate_words} words, "
        f"{separate_uj / 1e3:.1f} mJ"
    )
    print(
        f"\nsharing saves {1 - shared_run.energy.total_uj / separate_uj:.0%} "
        "of the radio energy (message headers and sweeps amortise; payload "
        "words still add per query)."
    )

    # --- the latency budget ------------------------------------------------
    model = LatencyModel()
    single = scheme_latency_ms(scenario.rings, model)
    print(
        f"\nepoch-schedule latency (ring depth {scenario.rings.depth}): "
        f"{single / 1000:.1f} s per aggregation wave — identical for the "
        "shared sweep, because each node still transmits once per epoch."
    )


if __name__ == "__main__":
    main()
