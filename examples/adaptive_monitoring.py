#!/usr/bin/env python
"""Adaptive monitoring: ride out a moving failure wave (the Figure 6 story).

A 150-sensor network answers a continuous Sum query while network
conditions change underneath it: quiet -> a regional failure -> a global
failure -> quiet again. The Tributary-Delta scheme grows and shrinks its
delta region on the fly; the script prints a phase-by-phase error report
and the delta size over time.

Run:  python examples/adaptive_monitoring.py
"""

from __future__ import annotations

from repro import (
    EpochSimulator,
    FailureSchedule,
    GlobalLoss,
    RegionalLoss,
    SumAggregate,
    SynopsisDiffusionScheme,
    TDGraph,
    TagScheme,
    TributaryDeltaScheme,
    UniformReadings,
    build_bushy_tree,
    initial_modes_by_level,
    make_synthetic_scenario,
)
from repro.core.adaptation import TDFinePolicy

PHASES = [
    (0, "quiet", GlobalLoss(0.0)),
    (50, "regional failure", RegionalLoss(0.3, 0.0)),
    (100, "global failure", GlobalLoss(0.3)),
    (150, "quiet again", GlobalLoss(0.0)),
]
TOTAL_EPOCHS = 200


def main() -> None:
    scenario = make_synthetic_scenario(num_sensors=150, seed=7)
    tree = build_bushy_tree(scenario.rings, seed=7)
    schedule = FailureSchedule([(start, model) for start, _, model in PHASES])
    readings = UniformReadings(10, 100, seed=7)

    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 0)
    )
    schemes = {
        "TAG": TagScheme(scenario.deployment, tree, SumAggregate()),
        "SD": SynopsisDiffusionScheme(
            scenario.deployment, scenario.rings, SumAggregate()
        ),
        "TD": TributaryDeltaScheme(
            scenario.deployment, graph, SumAggregate(), policy=TDFinePolicy()
        ),
    }

    runs = {}
    for name, scheme in schemes.items():
        interval = 5 if name == "TD" else 0
        simulator = EpochSimulator(
            scenario.deployment, schedule, scheme, seed=3, adapt_interval=interval
        )
        runs[name] = simulator.run(TOTAL_EPOCHS, readings)

    boundaries = [start for start, _, _ in PHASES] + [TOTAL_EPOCHS]
    print(f"{'phase':18s}" + "".join(f"{name:>10s}" for name in runs))
    for index, (start, label, _) in enumerate(PHASES):
        end = boundaries[index + 1]
        row = f"{label:18s}"
        for name, run in runs.items():
            window = [
                epoch.relative_error
                for epoch in run.epochs
                if start <= epoch.epoch < end
            ]
            row += f"{sum(window) / len(window):>10.3f}"
        print(row)

    print("\nTD delta size over time (every 10 epochs):")
    sizes = [
        int(epoch.extra.get("delta_size", 0)) for epoch in runs["TD"].epochs
    ]
    for start in range(0, TOTAL_EPOCHS, 50):
        window = sizes[start : start + 50 : 10]
        print(f"  epochs {start:3d}-{start + 49:3d}: {window}")
    print(f"\nTD adaptation log (last 6): {schemes['TD'].adaptation_log[-6:]}")


if __name__ == "__main__":
    main()
