"""Smoke tests for the experiment modules (quick configurations).

These verify that every table/figure regenerator runs end-to-end and that
the paper's qualitative *shape* claims hold at small scale. The benchmarks
run the full-size versions.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.fig_domination import run_figure7a, run_figure7b, run_table2
from repro.experiments.fig_fi_load import run_figure8
from repro.experiments.fig_fi_loss import run_figure9
from repro.experiments.fig_topology import run_figure4
from repro.experiments.metrics import (
    format_table,
    mean,
    relative_error,
    rms_error_series,
)
from repro.experiments.runner import build_schemes, converge_td, run_scheme
from repro.aggregates.count import CountAggregate
from repro.datasets.streams import ConstantReadings
from repro.network.failures import GlobalLoss


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(90, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(1, 0))

    def test_rms_error_series(self):
        assert rms_error_series([100, 100], [100, 100]) == 0.0
        assert rms_error_series([90, 110], [100, 100]) == pytest.approx(0.1)

    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1.0, 3.0]) == 2.0

    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]


class TestRunnerShapes:
    @pytest.fixture(scope="class")
    def comparison(self):
        return build_schemes(CountAggregate, num_sensors=80, seed=3)

    def test_all_schemes_present(self, comparison):
        assert set(comparison.schemes) == {"TAG", "SD", "TD-Coarse", "TD"}

    def test_no_loss_tag_exact_sd_approx(self, comparison):
        readings = ConstantReadings(1.0)
        tag = run_scheme(comparison, "TAG", GlobalLoss(0.0), readings, epochs=5)
        sd = run_scheme(comparison, "SD", GlobalLoss(0.0), readings, epochs=5)
        assert tag.rms_error() == 0.0
        assert 0.0 < sd.rms_error() < 0.5

    def test_high_loss_sd_beats_tag(self, comparison):
        readings = ConstantReadings(1.0)
        tag = run_scheme(comparison, "TAG", GlobalLoss(0.3), readings, epochs=8)
        sd = run_scheme(comparison, "SD", GlobalLoss(0.3), readings, epochs=8)
        assert sd.rms_error() < tag.rms_error()

    def test_td_adapts_between(self, comparison):
        readings = ConstantReadings(1.0)
        failure = GlobalLoss(0.25)
        converge_td(comparison, failure, readings, epochs=60, seed=3)
        td = run_scheme(comparison, "TD", failure, readings, epochs=8)
        tag = run_scheme(comparison, "TAG", failure, readings, epochs=8)
        assert td.rms_error() < tag.rms_error()


class TestFigureSmoke:
    def test_table2_matches_paper(self):
        result = run_table2()
        assert result.te_profile == [37, 10, 6, 1]
        assert result.te_fractions[0] == pytest.approx(37 / 54)
        assert result.t2_fractions == [
            pytest.approx(8 / 15),
            pytest.approx(12 / 15),
            pytest.approx(14 / 15),
            pytest.approx(1.0),
        ]
        # Both example trees are 2-dominating, the property Table 2
        # illustrates.
        assert result.te_domination >= 2.0
        assert result.t2_domination >= 2.0
        assert "Te" in result.render()

    def test_figure7a_our_tree_wins(self):
        result = run_figure7a(quick=True)
        assert len(result.our_tree) == len(result.parameters)
        wins = sum(
            1 for ours, tag in zip(result.our_tree, result.tag_tree) if ours >= tag
        )
        assert wins >= len(result.parameters) - 1

    def test_figure7b_runs(self):
        result = run_figure7b(quick=True, widths=(10, 30))
        assert len(result.our_tree) == 2
        assert result.render()

    def test_figure4_concentrates(self):
        result = run_figure4(inside_rate=0.4, quick=True, converge_epochs=60)
        assert result.delta  # a delta formed
        assert result.concentration > 1.0  # leaning into the failure region
        assert "B" in result.render_map()

    def test_figure4_td_more_directional_than_coarse(self):
        # Section 7.2: TD-Coarse "expands uniformly around the base
        # station", TD "only in the direction of the failure region".
        td = run_figure4(inside_rate=0.3, quick=True, converge_epochs=80)
        coarse = run_figure4(
            inside_rate=0.3, quick=True, converge_epochs=80, strategy="td-coarse"
        )
        assert td.concentration > coarse.concentration

    def test_figure4_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            run_figure4(inside_rate=0.3, quick=True, strategy="nope")

    def test_figure8_orderings(self):
        result = run_figure8(quick=True)
        labels = {row[1] for row in result.rows}
        assert labels == {
            "Min Max-load",
            "Min Total-load",
            "Hybrid",
            "Quantiles-based",
        }
        # The headline orderings of Figure 8.
        lab_quantiles_avg, _ = result.loads("LabData", "Quantiles-based")
        lab_total_avg, _ = result.loads("LabData", "Min Total-load")
        assert lab_quantiles_avg > lab_total_avg
        synthetic_total_avg, _ = result.loads("Synthetic", "Min Total-load")
        synthetic_max_avg, _ = result.loads("Synthetic", "Min Max-load")
        assert synthetic_total_avg < synthetic_max_avg

    def test_figure9_tag_degrades_fastest(self):
        result = run_figure9(quick=True, loss_rates=(0.0, 0.6))
        tag_curve = result.false_negatives["TAG"]
        sd_curve = result.false_negatives["SD"]
        assert tag_curve[-1] > sd_curve[-1]
        assert tag_curve[0] <= 10.0  # near-zero FN without loss


class TestRunPaired:
    def test_paired_runs_share_loss_draws(self, small_scenario):
        from repro.aggregates.count import CountAggregate
        from repro.datasets.streams import ConstantReadings
        from repro.experiments.runner import build_schemes, run_paired
        from repro.network.failures import GlobalLoss
        from repro.tree.construction import build_bushy_tree

        tree = build_bushy_tree(small_scenario.rings, seed=11)
        comparison = build_schemes(
            CountAggregate, scenario=small_scenario, tree=tree
        )
        results = run_paired(
            comparison,
            GlobalLoss(0.2),
            ConstantReadings(1.0),
            epochs=5,
            seed=3,
            names=["TAG", "SD"],
        )
        assert set(results) == {"TAG", "SD"}
        # Identical seeds: re-running TAG reproduces its series exactly.
        again = run_paired(
            comparison,
            GlobalLoss(0.2),
            ConstantReadings(1.0),
            epochs=5,
            seed=3,
            names=["TAG"],
        )
        assert [e.estimate for e in results["TAG"].epochs] == [
            e.estimate for e in again["TAG"].epochs
        ]


class TestLatencyExperiment:
    def test_quick_run_shapes(self):
        from repro.experiments.fig_latency import run_latency

        result = run_latency(quick=True, seed=0)
        assert result.overhead > 1.0
        text = result.render()
        assert "footnote 6" in text
        assert result.table["tree (count)"] == result.table["multi-path (count)"]


class TestLifetimeExperiment:
    def test_quick_run_orderings(self):
        from repro.experiments.fig_lifetime import run_lifetime

        comparison = run_lifetime(quick=True, seed=0)
        assert set(comparison.reports) == {"TAG", "SD", "TD"}
        tag = comparison.reports["TAG"]
        sd = comparison.reports["SD"]
        assert tag.first_death_epochs > sd.first_death_epochs
        assert "first death" in comparison.render()
