"""Tests for the TD-Coarse / TD adaptation policies and damping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.count import CountAggregate
from repro.core.adaptation import (
    AdaptationAction,
    DampedPolicy,
    TDCoarsePolicy,
    TDFinePolicy,
)
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss, NoLoss, RegionalLoss
from repro.network.simulator import EpochOutcome, EpochSimulator


def outcome_with(contributing_estimate, extra=None):
    return EpochOutcome(
        estimate=0.0,
        contributing=0,
        contributing_estimate=contributing_estimate,
        extra=extra or {},
    )


@pytest.fixture()
def graph(small_scenario, small_tree):
    return TDGraph(
        small_scenario.rings,
        small_tree,
        initial_modes_by_level(small_scenario.rings, 0),
    )


class TestTDCoarse:
    def test_expands_below_threshold(self, graph):
        policy = TDCoarsePolicy(threshold=0.9)
        before = len(graph.delta_region())
        action = policy.adjust(graph, outcome_with(0.5 * 60), 60)
        assert action.kind == "expand"
        assert len(graph.delta_region()) > before

    def test_shrinks_well_above_threshold(self, graph):
        policy = TDCoarsePolicy(threshold=0.9, shrink_margin=0.05)
        graph.expand_all()
        action = policy.adjust(graph, outcome_with(60.0), 60)
        assert action.kind == "shrink"

    def test_holds_in_band(self, graph):
        policy = TDCoarsePolicy(threshold=0.9, shrink_margin=0.05)
        action = policy.adjust(graph, outcome_with(0.92 * 60), 60)
        assert action.kind == "none"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TDCoarsePolicy(threshold=0.0)
        with pytest.raises(ConfigurationError):
            TDCoarsePolicy(shrink_margin=-0.1)


class TestTDFine:
    def test_bootstrap_from_all_tree(self, small_scenario, small_tree):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, -1),
        )
        policy = TDFinePolicy()
        action = policy.adjust(graph, outcome_with(10.0), 60)
        assert action.kind == "expand"
        assert graph.delta_region()  # the root switched

    def test_expand_targets_max_missing(self, graph):
        policy = TDFinePolicy(expand_cut=1.0)
        switchable = graph.switchable_m_nodes()
        target = switchable[0]
        children_before = [
            child
            for child in graph.tree_children(target)
            if graph.is_switchable_t(child)
        ]
        stats = {node: (50 if node == target else 1) for node in switchable}
        action = policy.adjust(
            graph, outcome_with(10.0, {"missing_stats": stats}), 60
        )
        assert action.kind == "expand"
        assert set(action.switched) == set(children_before)

    def test_expand_cut_targets_many(self, graph):
        policy = TDFinePolicy(expand_cut=0.5)
        switchable = graph.switchable_m_nodes()
        stats = {node: 40 for node in switchable}
        action = policy.adjust(
            graph, outcome_with(10.0, {"missing_stats": stats}), 60
        )
        assert action.kind == "expand"
        # All tied at the max: every switchable node's children switch.
        assert len(action.switched) >= len(
            [c for c in graph.tree_children(switchable[0])]
        )

    def test_shrink_targets_min_missing(self, graph):
        policy = TDFinePolicy()
        graph.expand_all()
        switchable = graph.switchable_m_nodes()
        stats = {node: index for index, node in enumerate(switchable)}
        action = policy.adjust(
            graph, outcome_with(60.0, {"missing_stats": stats}), 60
        )
        assert action.kind == "shrink"
        assert action.switched == (switchable[0],)

    def test_no_stats_no_action_with_delta(self, graph):
        policy = TDFinePolicy()
        action = policy.adjust(graph, outcome_with(10.0, {}), 60)
        # The delta exists but reported nothing: stay put this round.
        assert action.kind in ("none", "expand")

    def test_zero_missing_no_expand(self, graph):
        policy = TDFinePolicy()
        stats = {node: 0 for node in graph.switchable_m_nodes()}
        action = policy.adjust(
            graph, outcome_with(10.0, {"missing_stats": stats}), 60
        )
        assert action.kind == "none"


class TestTDTopK:
    """The paper's §4.2 top-k expansion heuristic."""

    @pytest.fixture()
    def wide_graph(self, small_scenario, small_tree):
        """A delta spanning rings 0-1, giving several switchable M nodes."""
        return TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )

    def test_top_1_matches_paper_base_design(self, graph):
        """top_k=1 targets exactly the single max-missing subtree, like the
        paper's base design (expand_cut=1.0 with a unique maximum)."""
        switchable = graph.switchable_m_nodes()
        target = switchable[0]
        stats = {node: (50 if node == target else 5) for node in switchable}
        expected_children = {
            child
            for child in graph.tree_children(target)
            if graph.is_switchable_t(child)
        }
        topk = TDFinePolicy(top_k=1)
        action = topk.adjust(
            graph, outcome_with(10.0, {"missing_stats": stats}), 60
        )
        assert action.kind == "expand"
        assert set(action.switched) == expected_children

    def test_top_k_bounds_targets(self, wide_graph):
        graph = wide_graph
        switchable = graph.switchable_m_nodes()
        if len(switchable) < 3:
            pytest.skip("scenario has too few switchable M nodes")
        stats = {node: 10 + index for index, node in enumerate(switchable)}
        # Targets are the two highest-missing nodes only.
        ranked = sorted(switchable, key=lambda node: -stats[node])[:2]
        expected = {
            child
            for target in ranked
            for child in graph.tree_children(target)
            if graph.is_switchable_t(child)
        }
        topk = TDFinePolicy(top_k=2)
        action = topk.adjust(
            graph, outcome_with(10.0, {"missing_stats": stats}), 60
        )
        assert set(action.switched) == expected
        assert expected  # the scenario must actually exercise the heuristic

    def test_top_k_ignores_zero_missing_nodes(self, graph):
        switchable = graph.switchable_m_nodes()
        target = switchable[0]
        stats = {node: (7 if node == target else 0) for node in switchable}
        expected = {
            child
            for child in graph.tree_children(target)
            if graph.is_switchable_t(child)
        }
        topk = TDFinePolicy(top_k=5)
        action = topk.adjust(
            graph, outcome_with(10.0, {"missing_stats": stats}), 60
        )
        assert set(action.switched) == expected

    def test_ties_break_deterministically(self, wide_graph):
        graph = wide_graph
        switchable = graph.switchable_m_nodes()
        if len(switchable) < 2:
            pytest.skip("scenario has too few switchable M nodes")
        stats = {node: 10 for node in switchable}
        first = TDFinePolicy(top_k=1)
        second = TDFinePolicy(top_k=1)
        action_a = first.adjust(
            graph, outcome_with(10.0, {"missing_stats": dict(stats)}), 60
        )
        # Rebuild an identical graph state for the replay.
        for node in action_a.switched:
            graph.switch_to_tree(node)
        action_b = second.adjust(
            graph, outcome_with(10.0, {"missing_stats": dict(stats)}), 60
        )
        assert action_a.switched == action_b.switched

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TDFinePolicy(top_k=0)


class TestDamping:
    class FlipFlopPolicy:
        """Always alternates expand/shrink with a switched node."""

        def __init__(self):
            self.turn = 0

        def adjust(self, graph, outcome, num_sensors):
            self.turn += 1
            kind = "expand" if self.turn % 2 else "shrink"
            return AdaptationAction(kind, (1,), control_messages=1)

    def test_oscillation_triggers_skip(self, graph):
        damped = DampedPolicy(self.FlipFlopPolicy(), window=4, max_skip=8)
        kinds = []
        for _ in range(12):
            action = damped.adjust(graph, outcome_with(0.0), 60)
            kinds.append(action.kind)
        assert "damped" in kinds

    def test_skip_grows_geometrically(self, graph):
        damped = DampedPolicy(self.FlipFlopPolicy(), window=2, max_skip=8)
        damped_counts = []
        streak = 0
        for _ in range(40):
            action = damped.adjust(graph, outcome_with(0.0), 60)
            if action.kind == "damped":
                streak += 1
            elif streak:
                damped_counts.append(streak)
                streak = 0
        assert damped_counts
        assert max(damped_counts) > min(damped_counts) or len(damped_counts) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DampedPolicy(self.FlipFlopPolicy(), window=1)


class TestEndToEndAdaptation:
    def test_no_loss_converges_to_all_tree(self, small_scenario, small_tree):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 2),
        )
        scheme = TributaryDeltaScheme(
            small_scenario.deployment, graph, CountAggregate(), policy=TDFinePolicy()
        )
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), scheme, seed=1, adapt_interval=1
        )
        simulator.run(0, ConstantReadings(1.0), warmup=40)
        assert graph.delta_region() == set()

    def test_heavy_loss_expands_delta(self, small_scenario, small_tree):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 0),
        )
        scheme = TributaryDeltaScheme(
            small_scenario.deployment, graph, CountAggregate(), policy=TDFinePolicy()
        )
        simulator = EpochSimulator(
            small_scenario.deployment,
            GlobalLoss(0.3),
            scheme,
            seed=1,
            adapt_interval=1,
        )
        simulator.run(0, ConstantReadings(1.0), warmup=60)
        assert len(graph.delta_region()) > 10

    def test_regional_loss_concentrates_delta(self, medium_scenario, medium_tree):
        failure = RegionalLoss(0.6, 0.02)
        graph = TDGraph(
            medium_scenario.rings,
            medium_tree,
            initial_modes_by_level(medium_scenario.rings, 0),
        )
        scheme = TributaryDeltaScheme(
            medium_scenario.deployment, graph, CountAggregate(), policy=TDFinePolicy()
        )
        simulator = EpochSimulator(
            medium_scenario.deployment, failure, scheme, seed=1, adapt_interval=1
        )
        simulator.run(0, ConstantReadings(1.0), warmup=80)
        delta = graph.delta_region() - {0}
        assert delta
        deployment = medium_scenario.deployment
        inside_delta = sum(
            1 for n in delta if failure.contains(deployment, n)
        )
        inside_all = sum(
            1 for n in deployment.sensor_ids if failure.contains(deployment, n)
        )
        delta_share = inside_delta / len(delta)
        node_share = inside_all / deployment.num_sensors
        assert delta_share > node_share  # leans into the failure region


class TestAdaptationInvariants:
    """Property: no sequence of policy actions can break graph correctness."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.2),  # contributing frac
                st.booleans(),  # coarse or fine policy this round
            ),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_random_feedback_keeps_graph_valid(
        self, small_scenario, small_tree, rounds
    ):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        coarse = TDCoarsePolicy(smoothing=1)
        fine = TDFinePolicy(smoothing=1)
        sensors = small_scenario.deployment.num_sensors
        for fraction, use_coarse in rounds:
            stats = {
                node: (node * 7) % 5 for node in graph.switchable_m_nodes()
            }
            outcome = outcome_with(
                fraction * sensors, {"missing_stats": stats}
            )
            policy = coarse if use_coarse else fine
            policy.adjust(graph, outcome, sensors)
            graph.validate()  # Property 1 must hold after every action
