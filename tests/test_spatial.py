"""Tests for the spatial GROUP BY subsystem: regions, cubes, schemes.

Covers the region layer (hierarchy construction, path algebra, spec
parsing), the grouped aggregate (cell-wise merge, normalization,
multiresolution coarsening, word billing), grouped runs over all three
schemes through the declarative API (including the blocked/per-epoch
byte-identity and the loss-0 standalone equivalence), the amortization
claim (one grouped pass bills fewer words than per-region standalone
runs), and the service planner's grouped slot sharing.
"""

from __future__ import annotations

import pytest

from repro.aggregates.average import AverageAggregate
from repro.aggregates.count import CountAggregate
from repro.api import RunConfig, Session, build_scenario, config_digest
from repro.errors import ConfigurationError
from repro.registry import build_aggregate, build_regions
from repro.serialization import to_jsonable
from repro.spatial import (
    GroupedAggregate,
    GroupedReadings,
    RegionFilteredAggregate,
    apply_grouping,
    grid_hierarchy,
    is_region_prefix,
    parse_region_spec,
    quadtree_hierarchy,
    region_ancestor,
    region_depth,
    region_parent,
)

SCHEMES = ["TAG", "SD", "TD", "TD-Coarse"]


def fast_config(**overrides) -> RunConfig:
    base = dict(
        scheme="TAG",
        num_sensors=60,
        scenario_seed=11,
        epochs=4,
        converge_epochs=0,
        failure="none",
        reading="uniform:10:100:0",
    )
    base.update(overrides)
    return RunConfig(**base)


# -- the region layer ------------------------------------------------------


class TestRegionAlgebra:
    def test_parse_region_spec_defaults(self):
        assert parse_region_spec("region") == ("region", 1, None)
        assert parse_region_spec("region:2") == ("region", 2, None)
        assert parse_region_spec("grid:3:40") == ("grid", 3, 40)

    @pytest.mark.parametrize(
        "bad", ["", ":2", "region:zz", "region:-1", "region:99",
                "region:2:1", "region:2:3:4"]
    )
    def test_parse_region_spec_rejects(self, bad):
        with pytest.raises(ConfigurationError) as err:
            parse_region_spec(bad)
        message = str(err.value)
        # Always actionable: the message names the offending spec and
        # either the grammar or the violated bound.
        assert repr(bad) in message or "GROUP BY spec" in message
        assert "NAME[:DEPTH[:BUDGET]]" in message or "between" in message \
            or "at least" in message

    def test_path_helpers(self):
        assert region_depth("r") == 0
        assert region_depth("r/3/0") == 2
        assert region_parent("r/3/0") == "r/3"
        assert region_ancestor("r/3/0", 1) == "r/3"
        assert is_region_prefix("r/3", "r/3/0")
        assert is_region_prefix("r/3", "r/3")
        assert not is_region_prefix("r/3", "r/30")


class TestRegionHierarchy:
    def test_quadtree_partitions_each_depth(self, small_scenario):
        hierarchy = quadtree_hierarchy(small_scenario.deployment)
        sensors = set(small_scenario.deployment.sensor_ids) | {0}
        for depth in (0, 1, 2, 3):
            regions = hierarchy.regions_at(depth)
            seen: set = set()
            for region in regions:
                members = set(hierarchy.members(region))
                assert not members & seen  # disjoint
                seen |= members
            assert seen == sensors  # covering
        assert hierarchy.regions_at(0) == ["r"]

    def test_region_of_is_ancestor_consistent(self, small_scenario):
        hierarchy = quadtree_hierarchy(small_scenario.deployment)
        for node in list(small_scenario.deployment.sensor_ids)[:10]:
            deep = hierarchy.region_of(node, 3)
            assert hierarchy.region_of(node, 1) == region_ancestor(deep, 1)

    def test_grid_uses_nine_way_split(self, small_scenario):
        hierarchy = grid_hierarchy(small_scenario.deployment)
        digits = {
            path.split("/")[1] for path in hierarchy.regions_at(1)
        }
        assert digits <= {str(d) for d in range(9)}
        assert len(digits) > 4  # a 60-node field occupies >4 of 9 cells

    def test_depth_and_node_validation(self, small_scenario):
        hierarchy = quadtree_hierarchy(small_scenario.deployment, max_depth=2)
        with pytest.raises(ConfigurationError):
            hierarchy.region_of(1, 3)
        with pytest.raises(ConfigurationError):
            hierarchy.region_of(10**9, 1)


# -- the grouped aggregate --------------------------------------------------


class TestGroupedAggregate:
    def test_cell_wise_merge(self, small_scenario):
        hierarchy = quadtree_hierarchy(small_scenario.deployment)
        grouped, readings = apply_grouping(
            CountAggregate(), lambda n, e: 1.0, hierarchy, 1
        )
        nodes = list(small_scenario.deployment.sensor_ids)
        cube = grouped.tree_empty()
        for node in nodes:
            cube = grouped.tree_merge(
                cube, grouped.tree_local(node, 0, readings(node, 0))
            )
        assert grouped.tree_eval(cube) == float(len(nodes))
        groups = grouped.last_group_evaluations
        assert sum(groups.values()) == float(len(nodes))
        for path, count in groups.items():
            members = set(hierarchy.members(path)) - {0}
            assert count == float(len(members))

    def test_normalization_folds_into_present_ancestor(self):
        grouped = GroupedAggregate(
            CountAggregate(), _StubHierarchy(), depth=2
        )
        cube = grouped.tree_merge({"r/0": 3}, {"r/0/1": 2, "r/1/0": 4})
        assert cube == {"r/0": 5, "r/1/0": 4}

    def test_coarsening_respects_budget(self):
        grouped = GroupedAggregate(
            CountAggregate(), _StubHierarchy(), depth=2, word_budget=5
        )
        cube = grouped.tree_merge(
            {"r/0/0": 1, "r/0/1": 2}, {"r/1/0": 3, "r/1/1": 4}
        )
        # 4 leaf cells would bill 1 + 4*2 = 9 words; the budget of 5
        # admits at most two cells — deepest fold into their parents.
        assert grouped.tree_words(cube) <= 5
        assert sum(cube.values()) == 10  # nothing lost, only coarsened
        assert all(region_depth(path) <= 1 for path in cube)

    def test_word_billing(self):
        grouped = GroupedAggregate(CountAggregate(), _StubHierarchy(), 1)
        assert grouped.tree_words({}) == 1
        assert grouped.tree_words({"r/0": 4}) == 1 + (1 + 1)
        assert grouped.tree_words({"r/0": 4, "r/1": 1}) == 1 + 2 * 2

    def test_ungroupable_inner_rejected(self):
        quantiles = build_aggregate("quantiles:0.05:0.5")
        with pytest.raises(ConfigurationError):
            GroupedAggregate(quantiles, _StubHierarchy(), 1)

    def test_no_nested_group_by(self):
        grouped = GroupedAggregate(CountAggregate(), _StubHierarchy(), 1)
        assert not grouped.supports_group_by()

    def test_exact_records_per_group_truths(self):
        grouped = GroupedAggregate(CountAggregate(), _StubHierarchy(), 1)
        total = grouped.exact([(1.0, "r/0"), (1.0, "r/0"), (1.0, "r/1")])
        assert total == 3.0
        assert grouped.last_exact_groups == {"r/0": 2.0, "r/1": 1.0}


class _StubHierarchy:
    """Minimal hierarchy stand-in for unit tests of the cube algebra."""

    name = "region"
    max_depth = 8

    def region_of(self, node, depth):  # pragma: no cover - unused here
        return "r"


# -- grouped runs over the schemes -----------------------------------------


class TestGroupedRuns:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_per_region_results_all_schemes(self, scheme):
        config = fast_config(
            scheme=scheme, query="SELECT avg GROUP BY region:2"
        )
        report = Session().run(config)
        names = report.group_names()
        assert names and all(name.startswith("r/") for name in names)
        assert report.is_grouped()
        # Under no loss every scheme's tree path is exact per group.
        for name in names:
            estimates = report.group_estimates(name)
            truths = report.group_truths(name)
            assert len(estimates) == config.epochs
            if scheme == "TAG":
                assert estimates == truths

    @pytest.mark.parametrize("scheme", ["TAG", "SD", "TD"])
    def test_blocked_and_per_epoch_byte_identical(self, scheme):
        config = fast_config(
            scheme=scheme,
            failure="global:0.3",
            query="SELECT avg GROUP BY region:2",
        )
        blocked = Session().run(config).result
        stepped = Session().run(config.replace(use_blocked=False)).result
        assert to_jsonable(blocked) == to_jsonable(stepped)

    def test_loss0_groups_match_standalone_filtered_runs(self):
        config = fast_config()
        scenario = build_scenario(config)
        hierarchy, depth, _ = build_regions(
            "region:1", scenario.topology.deployment
        )
        grouped, readings = apply_grouping(
            AverageAggregate(), scenario.source, hierarchy, depth
        )
        scheme = scenario.build_scheme(grouped)
        result = scenario.build_simulator(scheme).run(
            config.epochs, readings, start_epoch=config.start_epoch
        )
        grouped_series = {
            path: [
                epoch.extra["group_estimates"].get(path)
                for epoch in result.epochs
            ]
            for path in result.epochs[0].extra["group_estimates"]
        }
        for path in grouped_series:
            standalone = RegionFilteredAggregate(AverageAggregate(), path)
            tagged = GroupedReadings(scenario.source, hierarchy, depth)
            alone = scenario.build_simulator(
                scenario.build_scheme(standalone)
            ).run(config.epochs, tagged, start_epoch=config.start_epoch)
            assert grouped_series[path] == [
                epoch.estimate for epoch in alone.epochs
            ]
            # ... and both equal the loss-free truth.
            assert grouped_series[path] == [
                epoch.true_value for epoch in alone.epochs
            ]

    def test_group_truths_recorded(self):
        report = Session().run(
            fast_config(query="SELECT count GROUP BY region:1")
        )
        for name in report.group_names():
            truths = set(report.group_truths(name))
            assert len(truths) == 1  # static membership, constant count
            assert truths.pop() > 0

    def test_group_by_off_keeps_legacy_payload(self):
        config = fast_config()
        payload = config.to_jsonable()
        assert "group_by" not in payload
        assert payload["version"] == 2
        report = Session().run(config)
        assert not report.is_grouped()
        assert all(
            "group_estimates" not in epoch.extra
            and "group_truths" not in epoch.extra
            for epoch in report.result.epochs
        )

    def test_grouped_digest_differs_and_round_trips(self):
        plain = fast_config()
        grouped = plain.replace(group_by="region:1")
        assert config_digest(plain) != config_digest(grouped)
        assert RunConfig.from_json(grouped.to_json()) == grouped
        assert grouped.to_jsonable()["version"] == 7


# -- amortization ----------------------------------------------------------


class TestAmortization:
    def test_one_grouped_pass_bills_fewer_words(self):
        """The headline economics: one grouped run vs per-region runs."""
        config = fast_config(epochs=3)
        scenario = build_scenario(config)
        hierarchy, depth, _ = build_regions(
            "region:2", scenario.topology.deployment
        )
        grouped, readings = apply_grouping(
            AverageAggregate(), scenario.source, hierarchy, depth
        )
        result = scenario.build_simulator(
            scenario.build_scheme(grouped)
        ).run(config.epochs, readings, start_epoch=config.start_epoch)
        grouped_words = result.energy.total_words

        standalone_words = 0
        tagged = GroupedReadings(scenario.source, hierarchy, depth)
        regions = [
            path
            for path in hierarchy.regions_at(depth)
            if set(hierarchy.members(path)) - {0}
        ]
        assert len(regions) > 1
        for path in regions:
            alone = scenario.build_simulator(
                scenario.build_scheme(
                    RegionFilteredAggregate(AverageAggregate(), path)
                )
            ).run(config.epochs, tagged, start_epoch=config.start_epoch)
            standalone_words += alone.energy.total_words
        assert grouped_words < standalone_words


# -- service integration ---------------------------------------------------


class TestServiceGrouping:
    class _Spec:
        def __init__(self, name, query):
            self.name = name
            self.query = query
            self.aggregate = None

    def test_grouped_avg_decomposes_into_shared_grouped_slots(self):
        from repro.service.admission import AdmissionController
        from repro.service.planner import QueryPlanner

        scenario = build_scenario(fast_config())
        deployment = scenario.topology.deployment
        planner = QueryPlanner(scenario.source, deployment=deployment)
        admission = AdmissionController(
            scenario.source, deployment=deployment
        )
        planned = planner.plan(
            [self._Spec("gavg", "SELECT avg GROUP BY region:1")]
        )
        [pq] = planned
        assert pq.keys == (
            "SELECT sum GROUP BY region:1",
            "SELECT count GROUP BY region:1",
        )
        words = {
            part.render(): admission.estimate_words(part)
            for part in planner.new_parts(planned)
        }
        assert all(estimate >= 3 for estimate in words.values())
        planner.acquire(planned, words)
        # A grouped sum subscription shares the existing grouped slot.
        second = planner.plan(
            [self._Spec("gsum", "SELECT sum GROUP BY region:1")]
        )
        assert planner.new_parts(second) == []
        planner.acquire(second)
        assert planner.shared_acquires == 1
        workload, readings = planner.build_workload()
        value = readings(3, 0)
        partial = workload.tree_local(3, 0, value)
        assert all(isinstance(cell, dict) for cell in partial)

    def test_service_config_rejects_group_by_field(self):
        from repro.service.engine import AggregationService

        with pytest.raises(ConfigurationError) as err:
            AggregationService(fast_config(group_by="region:1"))
        assert "subscribe" in str(err.value)


# -- packed-tier guard -----------------------------------------------------


class TestPackedConnectivityGuard:
    def test_connectivity_refuses_above_node_limit(self, monkeypatch):
        from repro.network import packed

        config = fast_config(
            engine={"state": "packed"}, scheme="TAG", num_sensors=40
        )
        scenario = build_scenario(config)
        rings = scenario.topology.rings
        monkeypatch.setattr(packed, "CONNECTIVITY_NODE_LIMIT", 10)
        with pytest.raises(ConfigurationError) as err:
            rings.connectivity
        assert "refusing to inflate" in str(err.value)
        assert "10" in str(err.value)

    def test_connectivity_builds_below_limit(self):
        config = fast_config(
            engine={"state": "packed"}, scheme="TAG", num_sensors=40
        )
        scenario = build_scenario(config)
        graph = scenario.topology.rings.connectivity
        assert graph.number_of_nodes() == 41
