"""Tests for the declarative query layer (predicates, windows, parsing)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.count import CountAggregate
from repro.aggregates.minmax import MinAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel
from repro.query import (
    AGGREGATE_FACTORIES,
    ContinuousQuery,
    FilteredAggregate,
    WhereClause,
    WindowedReadings,
    parse_query,
)


def sawtooth(node, epoch):
    """A deterministic per-(node, epoch) reading in [0, 10)."""
    return float((node * 7 + epoch * 3) % 10)


class TestWindowedReadings:
    def test_last_is_source(self):
        window = WindowedReadings(sawtooth, size=4, op="LAST")
        assert window(3, 9) == sawtooth(3, 9)

    def test_mean_over_window(self):
        window = WindowedReadings(sawtooth, size=3, op="MEAN")
        expected = (sawtooth(2, 3) + sawtooth(2, 4) + sawtooth(2, 5)) / 3
        assert window(2, 5) == pytest.approx(expected)

    def test_window_fills_from_epoch_zero(self):
        window = WindowedReadings(sawtooth, size=10, op="SUM")
        # At epoch 2 only epochs 0..2 exist.
        expected = sum(sawtooth(1, e) for e in range(3))
        assert window(1, 2) == pytest.approx(expected)

    def test_min_max_ops(self):
        low = WindowedReadings(sawtooth, size=5, op="MIN")
        high = WindowedReadings(sawtooth, size=5, op="MAX")
        assert low(4, 10) <= high(4, 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedReadings(sawtooth, size=0)
        with pytest.raises(ConfigurationError):
            WindowedReadings(sawtooth, size=3, op="MEDIAN")

    @given(
        size=st.integers(min_value=1, max_value=12),
        epoch=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_within_source_range(self, size, epoch):
        window = WindowedReadings(sawtooth, size=size, op="MEAN")
        assert 0.0 <= window(5, epoch) < 10.0

    @staticmethod
    def _naive(size, op, node, epoch):
        """The pre-deque reference: re-reduce the whole window."""
        from repro.query import _WINDOW_OPS

        start = max(0, epoch - size + 1)
        values = [sawtooth(node, e) for e in range(start, epoch + 1)]
        return _WINDOW_OPS[op](values)

    @pytest.mark.parametrize("op", ["MEAN", "SUM", "MIN", "MAX", "LAST"])
    def test_rolling_deque_identical_to_naive(self, op):
        """The O(1) rolling window must match naive re-reduction exactly
        across sequential, repeated, gapped, and backward accesses."""
        window = WindowedReadings(sawtooth, size=4, op=op)
        pattern = [0, 1, 1, 2, 3, 4, 4, 7, 8, 2, 3, 20, 21, 5, 6, 6, 7]
        for epoch in pattern:
            for node in (1, 2, 9):
                assert window(node, epoch) == self._naive(4, op, node, epoch), (
                    f"{op} diverged at node={node} epoch={epoch}"
                )

    @given(
        size=st.integers(min_value=1, max_value=6),
        epochs=st.lists(
            st.integers(min_value=0, max_value=25), min_size=1, max_size=30
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_rolling_deque_identical_under_random_access(self, size, epochs):
        window = WindowedReadings(sawtooth, size=size, op="MEAN")
        for epoch in epochs:
            assert window(3, epoch) == self._naive(size, "MEAN", 3, epoch)

    def test_rolling_is_constant_source_calls_per_epoch(self):
        calls = []

        def counting(node, epoch):
            calls.append((node, epoch))
            return sawtooth(node, epoch)

        window = WindowedReadings(counting, size=10, op="SUM")
        for epoch in range(50):
            window(2, epoch)
            window(2, epoch)  # same-epoch re-query: served from cache
        # One new source reading per epoch, not one window per call.
        assert len(calls) == 50


class TestFilteredAggregate:
    def test_non_matching_contributes_neutral(self):
        aggregate = FilteredAggregate(SumAggregate(), lambda v: v >= 5)
        assert aggregate.tree_local(1, 0, 3.0) == 0
        assert aggregate.tree_local(1, 0, 7.0) == 7

    def test_exact_filters(self):
        aggregate = FilteredAggregate(CountAggregate(), lambda v: v > 5)
        assert aggregate.exact([1.0, 6.0, 9.0]) == 2.0

    def test_exact_with_nothing_matching(self):
        count = FilteredAggregate(CountAggregate(), lambda v: False)
        assert count.exact([1.0, 2.0]) == 0.0
        low = FilteredAggregate(MinAggregate(), lambda v: False)
        assert low.exact([1.0]) == float("inf")

    def test_counts_contributors_disabled(self):
        aggregate = FilteredAggregate(CountAggregate(), lambda v: v > 5)
        assert not aggregate.synopsis_counts_contributors()

    def test_name_is_tagged(self):
        aggregate = FilteredAggregate(SumAggregate(), lambda v: True)
        assert aggregate.name == "sum[filtered]"


class TestWhereClause:
    def test_comparators(self):
        assert WhereClause(">", 5.0).predicate()(6.0)
        assert not WhereClause(">", 5.0).predicate()(5.0)
        assert WhereClause("<=", 5.0).predicate()(5.0)
        assert WhereClause("!=", 5.0).predicate()(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WhereClause("~", 5.0)


class TestParseQuery:
    def test_minimal(self):
        query = parse_query("SELECT count")
        assert query.select == "count"
        assert query.where is None
        assert query.window is None

    def test_full(self):
        query = parse_query("SELECT avg WHERE value > 20 WINDOW 5 MEAN")
        assert query.select == "avg"
        assert query.where == WhereClause(">", 20.0)
        assert query.window == 5
        assert query.window_op == "MEAN"

    def test_case_insensitive_keywords(self):
        query = parse_query("select max where VALUE <= 3 window 2")
        assert query.select == "max"
        assert query.where == WhereClause("<=", 3.0)
        assert query.window == 2

    def test_window_without_op_defaults_to_mean(self):
        assert parse_query("SELECT sum WINDOW 3").window_op == "MEAN"

    def test_render_roundtrip(self):
        text = "SELECT avg WHERE value > 20 WINDOW 5 MEAN"
        assert parse_query(text).render() == text

    def test_errors(self):
        for bad in (
            "",
            "PICK count",
            "SELECT histogram",
            "SELECT sum WHERE temp > 3",
            "SELECT sum WHERE value > banana",
            "SELECT sum WINDOW many",
            "SELECT sum EXTRA",
        ):
            with pytest.raises(ConfigurationError):
                parse_query(bad)

    def test_every_registered_aggregate_parses(self):
        for name in AGGREGATE_FACTORIES:
            assert parse_query(f"SELECT {name}").select == name

    def test_select_targets_cover_aggregate_registry(self):
        """The SELECT surface *is* the aggregate registry — including the
        holistic aggregates (distinct, moments)."""
        from repro.registry import AGGREGATES

        assert set(AGGREGATE_FACTORIES) == set(AGGREGATES.available())
        for name in ("distinct", "moments"):
            assert parse_query(f"SELECT {name}").select == name


class TestGroupByClause:
    def test_parse_and_render_roundtrip(self):
        text = "SELECT avg WHERE value > 20 GROUP BY region:2 WINDOW 5 MEAN"
        query = parse_query(text)
        assert query.group_by == "region:2"
        assert query.render() == text

    def test_bare_group_by(self):
        query = parse_query("SELECT count GROUP BY grid")
        assert query.group_by == "grid"
        assert query.render() == "SELECT count GROUP BY grid"

    def test_non_groupable_aggregate_names_clause_and_supported_set(self):
        with pytest.raises(ConfigurationError) as err:
            parse_query("SELECT quantiles:0.05:0.5 GROUP BY region:1")
        message = str(err.value)
        assert "GROUP BY region:1" in message
        assert "quantiles:0.05:0.5" in message
        # The supported set is spelled out, not just alluded to.
        for name in ("avg", "count", "distinct", "max", "min", "sum"):
            assert name in message

    def test_malformed_region_spec_names_clause(self):
        with pytest.raises(ConfigurationError) as err:
            parse_query("SELECT avg GROUP BY region:zz")
        assert "region:zz" in str(err.value)
        assert "NAME[:DEPTH[:BUDGET]]" in str(err.value)

    def test_unknown_hierarchy_lists_registered(self):
        with pytest.raises(ConfigurationError) as err:
            parse_query("SELECT avg GROUP BY voronoi:2")
        message = str(err.value)
        assert "voronoi" in message
        assert "region" in message and "grid" in message

    def test_missing_spec_after_group_by(self):
        with pytest.raises(ConfigurationError):
            parse_query("SELECT avg GROUP BY")
        with pytest.raises(ConfigurationError):
            parse_query("SELECT avg GROUP region:1")

    def test_build_without_deployment_is_actionable(self):
        query = parse_query("SELECT avg GROUP BY region:1")
        with pytest.raises(ConfigurationError) as err:
            query.build(sawtooth)
        assert "deployment" in str(err.value)

    def test_grouped_build_over_tag(self, small_scenario, small_tree):
        aggregate, readings = parse_query(
            "SELECT count GROUP BY region:1"
        ).build(sawtooth, deployment=small_scenario.deployment)
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, readings)
        assert outcome.estimate == small_scenario.deployment.num_sensors
        groups = aggregate.last_group_evaluations
        assert sum(groups.values()) == outcome.estimate


class TestQueriesOverSchemes:
    def test_filtered_count_over_tag(self, small_scenario, small_tree):
        aggregate, readings = parse_query(
            "SELECT count WHERE value >= 5"
        ).build(sawtooth)
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, readings)
        truth = aggregate.exact(
            [sawtooth(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == truth
        assert 0 < truth < small_scenario.deployment.num_sensors

    def test_windowed_sum_over_tag(self, small_scenario, small_tree):
        aggregate, readings = parse_query("SELECT sum WINDOW 4 MEAN").build(
            sawtooth
        )
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(6, channel, readings)
        truth = aggregate.exact(
            [readings(n, 6) for n in small_scenario.deployment.sensor_ids]
        )
        # Sum truncates windowed means to ints at each node.
        assert outcome.estimate == pytest.approx(truth, rel=0.2)

    def test_filtered_query_over_td_under_loss(self, small_scenario, small_tree):
        aggregate, readings = parse_query(
            "SELECT count WHERE value >= 5"
        ).build(sawtooth)
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 2),
        )
        scheme = TributaryDeltaScheme(small_scenario.deployment, graph, aggregate)
        estimates = []
        truths = []
        for epoch in range(6):
            channel = Channel(small_scenario.deployment, GlobalLoss(0.2), seed=3)
            outcome = scheme.run_epoch(epoch, channel, readings)
            estimates.append(outcome.estimate)
            truths.append(
                aggregate.exact(
                    [
                        sawtooth(n, epoch)
                        for n in small_scenario.deployment.sensor_ids
                    ]
                )
            )
        mean_estimate = sum(estimates) / len(estimates)
        mean_truth = sum(truths) / len(truths)
        assert mean_estimate == pytest.approx(mean_truth, rel=0.4)

    def test_distinct_query_over_tag(self, small_scenario, small_tree):
        aggregate, readings = parse_query("SELECT distinct").build(sawtooth)
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, readings)
        truth = aggregate.exact(
            [sawtooth(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        # The tree side of distinct-count is exact under no loss.
        assert outcome.estimate == truth
        assert truth <= 10  # sawtooth readings live in [0, 10)

    def test_moments_query_over_tag(self, small_scenario, small_tree):
        aggregate, readings = parse_query("SELECT moments").build(sawtooth)
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, readings)
        truth = aggregate.exact(
            [sawtooth(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == pytest.approx(truth)
        assert truth > 0  # the sawtooth is not constant

    def test_filtered_windowed_distinct_composes(self, small_scenario, small_tree):
        aggregate, readings = parse_query(
            "SELECT distinct WHERE value >= 2 WINDOW 3 MAX"
        ).build(sawtooth)
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(5, channel, readings)
        truth = aggregate.exact(
            [readings(n, 5) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == truth

    def test_adaptation_feedback_counts_all_relays(self, small_scenario, small_tree):
        """A highly selective query must not shrink the %-contributing
        feedback: filtered nodes still relay and register."""
        aggregate, readings = parse_query(
            "SELECT count WHERE value >= 9"
        ).build(sawtooth)
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        scheme = TributaryDeltaScheme(small_scenario.deployment, graph, aggregate)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, readings)
        sensors = small_scenario.deployment.num_sensors
        assert outcome.contributing == sensors
        assert outcome.contributing_estimate == pytest.approx(
            sensors, rel=0.35
        )
        # ... while the answer reflects only the matching sensors.
        assert outcome.estimate < sensors / 2
