"""Tests for epsilon-deficient summaries and Algorithm 1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.frequent.summary import Summary, exact_counts, generate_summary


class TestSummaryBasics:
    def test_from_items_exact(self):
        summary = Summary.from_items([1, 1, 2, 3, 3, 3])
        assert summary.n == 6
        assert summary.epsilon == 0.0
        assert summary.estimate(3) == 3.0
        assert summary.estimate(9) == 0.0

    def test_words(self):
        summary = Summary.from_items([1, 2, 3])
        assert summary.words() == 2 + 2 * 3

    def test_items_over(self):
        summary = Summary.from_items([1, 1, 1, 2])
        assert summary.items_over(2.0) == [1]

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            Summary(n=-1, epsilon=0.0, counts={})


class TestAlgorithm1:
    def test_merge_without_slack_is_exact(self):
        a = Summary.from_items([1, 2])
        b = Summary.from_items([2, 3])
        own = Summary.from_items([3])
        merged = generate_summary([a, b], own, epsilon_k=0.0)
        assert merged.n == 5
        assert merged.estimate(2) == 2.0
        assert merged.estimate(3) == 2.0

    def test_slack_decrements_and_drops(self):
        children = [Summary.from_items([1] * 10 + [2])]
        own = Summary.from_items([])
        merged = generate_summary(children, own, epsilon_k=0.2)
        # slack = 0.2 * 11 = 2.2: item 2 (count 1) is dropped, item 1 keeps
        # 10 - 2.2 = 7.8.
        assert merged.estimate(2) == 0.0
        assert merged.estimate(1) == pytest.approx(7.8)

    def test_requires_exact_own_summary(self):
        lossy_own = Summary(n=3, epsilon=0.1, counts={1: 2.0})
        with pytest.raises(ConfigurationError):
            generate_summary([], lossy_own, epsilon_k=0.2)

    def test_rejects_decreasing_gradient(self):
        child = Summary(n=10, epsilon=0.3, counts={1: 5.0})
        own = Summary.from_items([])
        with pytest.raises(ConfigurationError):
            generate_summary([child], own, epsilon_k=0.1)

    def test_deficiency_invariant_single_level(self):
        items = [1] * 20 + [2] * 5 + [3]
        own = Summary.from_items(items)
        merged = generate_summary([], own, epsilon_k=0.1)
        truth = exact_counts([items])
        for item, true_count in truth.items():
            estimate = merged.estimate(item)
            assert estimate <= true_count + 1e-9
            assert estimate >= max(0, true_count - 0.1 * merged.n) - 1e-9


@st.composite
def item_collections(draw):
    """A list of small item collections (one per node)."""
    num_nodes = draw(st.integers(min_value=1, max_value=8))
    return [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=12), min_size=0, max_size=30
            )
        )
        for _ in range(num_nodes)
    ]


class TestDeficiencyProperty:
    @given(item_collections(), st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=60, deadline=None)
    def test_invariant_over_chain_aggregation(self, collections, epsilon):
        # Aggregate the collections along a chain with a linear gradient;
        # the final estimates must satisfy the epsilon-deficiency bounds.
        height = len(collections)
        current = None
        for index, items in enumerate(collections, start=1):
            own = Summary.from_items(items)
            children = [current] if current is not None else []
            epsilon_k = epsilon * index / height
            current = generate_summary(children, own, epsilon_k)
        truth = exact_counts(collections)
        total = sum(truth.values())
        assert current.n == total
        for item, true_count in truth.items():
            estimate = current.estimate(item)
            assert estimate <= true_count + 1e-9
            assert estimate >= max(0.0, true_count - epsilon * total) - 1e-9

    @given(item_collections())
    @settings(max_examples=30, deadline=None)
    def test_star_merge_counts(self, collections):
        # Merging all collections at one node with eps=0 is exact counting.
        children = [Summary.from_items(items) for items in collections]
        merged = generate_summary(children, Summary.from_items([]), 0.0)
        truth = exact_counts(collections)
        for item, count in truth.items():
            assert merged.estimate(item) == pytest.approx(count)
