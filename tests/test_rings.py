"""Tests for the rings topology."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.network.placement import BASE_STATION, grid_random_placement
from repro.network.radio import DiscRadio
from repro.network.rings import RingsTopology


@pytest.fixture(scope="module")
def rings():
    deployment = grid_random_placement(120, width=15, height=15, seed=3)
    graph = DiscRadio(2.8).connectivity(deployment)
    return RingsTopology.build(deployment, graph), deployment, graph


class TestConstruction:
    def test_base_station_is_level_zero(self, rings):
        topology, _, _ = rings
        assert topology.level(BASE_STATION) == 0

    def test_levels_are_hop_counts(self, rings):
        topology, _, graph = rings
        shortest = nx.single_source_shortest_path_length(graph, BASE_STATION)
        assert dict(topology.levels) == dict(shortest)

    def test_edges_span_at_most_one_ring(self, rings):
        topology, _, graph = rings
        for a, b in graph.edges:
            assert abs(topology.level(a) - topology.level(b)) <= 1

    def test_validate_passes(self, rings):
        topology, _, _ = rings
        topology.validate()

    def test_every_node_has_upstream(self, rings):
        topology, deployment, _ = rings
        for node in deployment.sensor_ids:
            assert topology.upstream_neighbors(node), node


class TestNeighbourQueries:
    def test_upstream_levels(self, rings):
        topology, deployment, _ = rings
        for node in deployment.sensor_ids:
            own = topology.level(node)
            for upstream in topology.upstream_neighbors(node):
                assert topology.level(upstream) == own - 1

    def test_downstream_mirrors_upstream(self, rings):
        topology, deployment, _ = rings
        for node in deployment.sensor_ids[:40]:
            for downstream in topology.downstream_neighbors(node):
                assert node in topology.upstream_neighbors(downstream)

    def test_same_level_neighbors(self, rings):
        topology, deployment, _ = rings
        for node in deployment.sensor_ids[:40]:
            for peer in topology.same_level_neighbors(node):
                assert topology.level(peer) == topology.level(node)
                assert peer != node

    def test_nodes_at_level_partition(self, rings):
        topology, deployment, _ = rings
        seen = []
        for level in range(topology.depth + 1):
            seen.extend(topology.nodes_at_level(level))
        assert sorted(seen) == deployment.node_ids

    def test_levels_descending_order(self, rings):
        topology, _, _ = rings
        order = topology.levels_descending()
        assert order == sorted(order, reverse=True)
        assert order[-1] == 1

    def test_ring_edges_directed_upstream(self, rings):
        topology, _, _ = rings
        for child, parent in topology.ring_edges():
            assert topology.level(child) == topology.level(parent) + 1
