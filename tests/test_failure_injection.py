"""End-to-end failure injection: bursts, crashes, and topology maintenance.

These integration tests drive full schemes through the new failure models
and the link-maintenance machinery, checking the qualitative behaviours the
paper's robustness story predicts.
"""

from __future__ import annotations

import pytest

from repro.aggregates.count import CountAggregate
from repro.core.adaptation import TDFinePolicy
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings
from repro.network.burst import (
    GilbertElliottLoss,
    NodeCrashLoss,
    matched_gilbert_elliott,
)
from repro.network.failures import GlobalLoss, LinkLossTable
from repro.network.linkquality import LinkQualityMonitor, TreeMaintainer
from repro.network.links import Channel
from repro.network.simulator import EpochSimulator


class TestBurstyLossEndToEnd:
    def test_all_schemes_survive_bursts(self, small_scenario, small_tree):
        """Every scheme completes a bursty run with sane outputs."""
        failure = matched_gilbert_elliott(target_loss=0.2, seed=5)
        readings = ConstantReadings(1.0)
        sensors = small_scenario.deployment.num_sensors
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 2),
        )
        schemes = [
            TagScheme(small_scenario.deployment, small_tree, CountAggregate()),
            SynopsisDiffusionScheme(
                small_scenario.deployment, small_scenario.rings, CountAggregate()
            ),
            TributaryDeltaScheme(
                small_scenario.deployment, graph, CountAggregate()
            ),
        ]
        for scheme in schemes:
            simulator = EpochSimulator(
                small_scenario.deployment, failure, scheme, seed=4
            )
            run = simulator.run(25, readings)
            assert all(0 <= e.estimate <= 2.5 * sensors for e in run.epochs)
            assert run.mean_contributing_fraction(sensors) > 0.2

    def test_multipath_beats_tree_under_bursts(self, small_scenario, small_tree):
        """The paper's robustness ordering holds under correlated loss too."""
        failure = matched_gilbert_elliott(target_loss=0.25, seed=9)
        readings = ConstantReadings(1.0)
        tag = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        sd = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        tag_run = EpochSimulator(
            small_scenario.deployment, failure, tag, seed=6
        ).run(30, readings)
        sd_run = EpochSimulator(
            small_scenario.deployment, failure, sd, seed=6
        ).run(30, readings)
        assert sd_run.rms_error() < tag_run.rms_error()

    def test_burst_epochs_are_worse_than_quiet_epochs(self, small_scenario, small_tree):
        """Within one tree run, epochs with many bad links lose more."""
        failure = GilbertElliottLoss(
            good_loss=0.0,
            bad_loss=0.9,
            p_enter_bad=0.15,
            p_exit_bad=0.25,
            seed=3,
        )
        tag = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        simulator = EpochSimulator(
            small_scenario.deployment, failure, tag, seed=2
        )
        run = simulator.run(60, ConstantReadings(1.0))
        # Count the tree links inside a burst at each epoch.
        contributions = []
        for result in run.epochs:
            bad_links = sum(
                failure.is_bad(child, parent, result.epoch)
                for child, parent in small_tree.parents.items()
            )
            contributions.append((bad_links, result.contributing))
        quiet = [c for bad, c in contributions if bad == 0]
        stormy = [c for bad, c in contributions if bad >= 5]
        if quiet and stormy:
            assert sum(stormy) / len(stormy) < sum(quiet) / len(quiet)


class TestCrashesEndToEnd:
    def test_contributing_drops_during_crash_window(
        self, small_scenario, small_tree
    ):
        victims = small_scenario.deployment.sensor_ids[:10]
        failure = NodeCrashLoss.single_window(victims, start=10, end=20)
        tag = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        simulator = EpochSimulator(
            small_scenario.deployment, failure, tag, seed=0
        )
        run = simulator.run(30, ConstantReadings(1.0))
        sensors = small_scenario.deployment.num_sensors
        before = [e.contributing for e in run.epochs if e.epoch < 10]
        during = [e.contributing for e in run.epochs if 10 <= e.epoch < 20]
        after = [e.contributing for e in run.epochs if e.epoch >= 20]
        assert all(c == sensors for c in before)
        assert all(c == sensors for c in after)
        # Crashed senders drop themselves and anything routed through them.
        assert all(c <= sensors - len(victims) for c in during)

    def test_td_adapts_around_crashed_region(self, medium_scenario, medium_tree):
        """Crashing a contiguous region pushes TD's delta outward."""
        victims = medium_scenario.deployment.nodes_in_rect((0, 0), (10, 10))
        failure = NodeCrashLoss.single_window(
            victims, start=0, end=10_000, base=GlobalLoss(0.02)
        )
        graph = TDGraph(
            medium_scenario.rings,
            medium_tree,
            initial_modes_by_level(medium_scenario.rings, 0),
        )
        scheme = TributaryDeltaScheme(
            medium_scenario.deployment,
            graph,
            CountAggregate(),
            policy=TDFinePolicy(threshold=0.95),
        )
        before = len(graph.delta_region())
        EpochSimulator(
            medium_scenario.deployment, failure, scheme, seed=1, adapt_interval=1
        ).run(0, ConstantReadings(1.0), warmup=40)
        assert len(graph.delta_region()) > before


class TestMaintenanceEndToEnd:
    def test_parent_switching_restores_tag_accuracy(self, small_scenario):
        """TAG over a tree with a few terrible links recovers most of its
        contributing fraction once maintenance re-parents around them."""
        from repro.tree.construction import build_bushy_tree

        rings = small_scenario.rings
        tree = build_bushy_tree(rings, seed=11)
        # Sabotage the tree links of the nodes that have an alternative.
        rates = {}
        for child, parent in tree.parents.items():
            if len(rings.upstream_neighbors(child)) >= 2:
                rates[(child, parent)] = 0.8
        table = LinkLossTable(rates=rates, default=0.0)
        readings = ConstantReadings(1.0)
        deployment = small_scenario.deployment

        broken = TagScheme(deployment, tree, CountAggregate())
        broken_run = EpochSimulator(deployment, table, broken, seed=2).run(
            20, readings
        )

        monitor = LinkQualityMonitor(alpha=0.3, prior=0.9)
        channel = Channel(deployment, table, seed=2)
        links = [
            (node, candidate)
            for node in tree.parents
            for candidate in rings.upstream_neighbors(node)
        ]
        for epoch in range(30):
            monitor.probe_round(channel, links, epoch)
        maintained, switches = TreeMaintainer(
            rings, monitor, switch_margin=0.2
        ).maintain(tree)
        assert switches

        fixed = TagScheme(deployment, maintained, CountAggregate())
        fixed_run = EpochSimulator(deployment, table, fixed, seed=2).run(
            20, readings
        )
        sensors = deployment.num_sensors
        assert fixed_run.mean_contributing_fraction(sensors) > (
            broken_run.mean_contributing_fraction(sensors) + 0.1
        )

    def test_maintained_tree_stays_td_compatible(self, small_scenario):
        """Maintained trees still satisfy TDGraph's rings-subset invariant."""
        from repro.tree.construction import build_bushy_tree

        rings = small_scenario.rings
        tree = build_bushy_tree(rings, seed=11)
        monitor = LinkQualityMonitor(alpha=1.0, prior=0.5)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.5), seed=8)
        links = [
            (node, candidate)
            for node in tree.parents
            for candidate in rings.upstream_neighbors(node)
        ]
        for epoch in range(12):
            monitor.probe_round(channel, links, epoch)
        maintained, _ = TreeMaintainer(rings, monitor, switch_margin=0.0).maintain(
            tree
        )
        # TDGraph's constructor re-checks the synchronisation constraint.
        graph = TDGraph(rings, maintained, initial_modes_by_level(rings, 0))
        graph.validate()
