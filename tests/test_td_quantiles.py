"""Tests for the Tributary-Delta quantiles scheme and its synopsis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import TDGraph, initial_modes_by_level
from repro.errors import ConfigurationError
from repro.frequent.gk import GKSummary
from repro.frequent.td_quantiles import (
    QuantileSynopsis,
    TributaryDeltaQuantiles,
    convert_summary,
    synopsis_from_readings,
)
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel


def keyed(values, weight=1.0, salt=0):
    return [(hash((salt, index)) & ((1 << 62) - 1), float(v), weight)
            for index, v in enumerate(values)]


class TestQuantileSynopsis:
    def test_small_input_keeps_everything(self):
        synopsis = QuantileSynopsis.from_weighted_values(10, keyed([1, 2, 3]))
        assert sorted(synopsis.values()) == [1.0, 2.0, 3.0]
        assert synopsis.population_weight == 3.0

    def test_capacity_enforced(self):
        synopsis = QuantileSynopsis.from_weighted_values(
            5, keyed(range(100))
        )
        assert len(synopsis.entries) == 5
        assert synopsis.population_weight == 100.0

    def test_merge_is_idempotent(self):
        synopsis = QuantileSynopsis.from_weighted_values(8, keyed(range(20)))
        again = synopsis.merge(synopsis)
        assert again.entries == synopsis.entries
        assert again.population_weight == synopsis.population_weight

    def test_merge_is_commutative_and_associative(self):
        a = QuantileSynopsis.from_weighted_values(8, keyed(range(10), salt=1))
        b = QuantileSynopsis.from_weighted_values(8, keyed(range(10), salt=2))
        c = QuantileSynopsis.from_weighted_values(8, keyed(range(10), salt=3))
        assert a.merge(b).entries == b.merge(a).entries
        assert a.merge(b).merge(c).entries == a.merge(b.merge(c)).entries

    def test_duplicate_insensitive_entry_union(self):
        """The ODI core: fusing along two different paths cannot change the
        surviving entry set."""
        shared = synopsis_from_readings(5, 0, [1.0, 2.0, 3.0], capacity=8)
        left = synopsis_from_readings(6, 0, [4.0], capacity=8).merge(shared)
        right = synopsis_from_readings(7, 0, [5.0], capacity=8).merge(shared)
        once = left.merge(right)
        twice = left.merge(right).merge(shared)
        assert once.entries == twice.entries

    def test_quantile_reads_weighted_median(self):
        entries = keyed([10.0], weight=9.0) + keyed([20.0], weight=1.0, salt=9)
        synopsis = QuantileSynopsis.from_weighted_values(8, entries)
        assert synopsis.quantile(0.5) == 10.0
        assert synopsis.quantile(1.0) == 20.0

    def test_quantile_validation(self):
        synopsis = QuantileSynopsis.empty(4)
        with pytest.raises(ConfigurationError):
            synopsis.quantile(0.5)
        filled = QuantileSynopsis.from_weighted_values(4, keyed([1.0]))
        with pytest.raises(ConfigurationError):
            filled.quantile(1.5)

    def test_words_scale_with_entries(self):
        small = QuantileSynopsis.from_weighted_values(16, keyed(range(3)))
        large = QuantileSynopsis.from_weighted_values(16, keyed(range(12)))
        assert large.words() > small.words()

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileSynopsis.empty(0)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60
        ),
        capacity=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantile_always_a_surviving_value(self, values, capacity):
        synopsis = QuantileSynopsis.from_weighted_values(
            capacity, keyed(values)
        )
        result = synopsis.quantile(0.5)
        assert result in synopsis.values()

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_merge_union_property(self, data):
        """Survivors of a merge are exactly the k smallest of the union."""
        values_a = data.draw(
            st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30)
        )
        values_b = data.draw(
            st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30)
        )
        a = QuantileSynopsis.from_weighted_values(8, keyed(values_a, salt=1))
        b = QuantileSynopsis.from_weighted_values(8, keyed(values_b, salt=2))
        merged = a.merge(b)
        union = sorted(set(a.entries) | set(b.entries))
        assert merged.entries == tuple(union[:8])


class TestSynopsisFromReadings:
    def test_deterministic_in_node_and_epoch(self):
        a = synopsis_from_readings(3, 7, [1.0, 2.0], capacity=8)
        b = synopsis_from_readings(3, 7, [1.0, 2.0], capacity=8)
        assert a.entries == b.entries

    def test_different_nodes_differ(self):
        a = synopsis_from_readings(3, 7, [1.0, 2.0], capacity=8)
        b = synopsis_from_readings(4, 7, [1.0, 2.0], capacity=8)
        assert a.entries != b.entries


class TestConvertSummary:
    def test_empty_summary_converts_to_none(self):
        summary = GKSummary.from_values([])
        assert convert_summary(summary, 1, 0, capacity=8) is None

    def test_weight_preserves_population(self):
        summary = GKSummary.from_values(range(100))
        synopsis = convert_summary(
            summary, 1, 0, capacity=64, representatives=10
        )
        assert synopsis.population_weight == pytest.approx(100.0)
        # 10 representatives, each weight 10.
        assert all(weight == 10.0 for _, _, _, weight in synopsis.entries)

    def test_representatives_track_distribution(self):
        summary = GKSummary.from_values(range(1000))
        synopsis = convert_summary(
            summary, 2, 0, capacity=64, representatives=20
        )
        median = synopsis.quantile(0.5)
        assert median == pytest.approx(500, abs=75)

    def test_deterministic(self):
        summary = GKSummary.from_values(range(50))
        a = convert_summary(summary, 1, 3, capacity=16)
        b = convert_summary(summary, 1, 3, capacity=16)
        assert a.entries == b.entries

    def test_validation(self):
        summary = GKSummary.from_values([1.0])
        with pytest.raises(ConfigurationError):
            convert_summary(summary, 1, 0, capacity=8, representatives=0)


def _uniform_items(node, epoch):
    """60 readings per node spread over [0, 100), distinct per node."""
    return [float((node * 37 + i * 13) % 100) for i in range(60)]


class TestTributaryDeltaQuantiles:
    @pytest.fixture()
    def graph(self, small_scenario, small_tree):
        return TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )

    def _truth(self, deployment, phi):
        values = sorted(
            value
            for node in deployment.sensor_ids
            for value in _uniform_items(node, 0)
        )
        return values[min(len(values) - 1, int(phi * len(values)))]

    def test_all_tree_matches_gk_error(self, small_scenario, small_tree):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, -1),
        )
        scheme = TributaryDeltaQuantiles(graph, epsilon=0.05, sample_size=64)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, _uniform_items)
        assert outcome.summary is not None
        for phi in (0.25, 0.5, 0.75):
            estimate = outcome.quantile(phi)
            truth = self._truth(small_scenario.deployment, phi)
            assert estimate == pytest.approx(truth, abs=12.0)

    def test_mixed_delta_answers_quantiles(self, small_scenario, graph):
        scheme = TributaryDeltaQuantiles(
            graph, epsilon=0.05, sample_size=256, representatives=32
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, _uniform_items)
        assert outcome.synopsis is not None
        median = outcome.quantile(0.5)
        truth = self._truth(small_scenario.deployment, 0.5)
        assert median == pytest.approx(truth, abs=20.0)

    def test_all_multipath_robust_to_loss(self, small_scenario, small_tree):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(
                small_scenario.rings, small_scenario.rings.depth
            ),
        )
        scheme = TributaryDeltaQuantiles(graph, sample_size=128)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.25), seed=3)
        outcome = scheme.run_epoch(0, channel, _uniform_items)
        median = outcome.quantile(0.5)
        truth = self._truth(small_scenario.deployment, 0.5)
        # Multi-path keeps the answer in the right region despite 25% loss.
        assert median == pytest.approx(truth, abs=25.0)

    def test_total_loss_yields_empty_outcome(self, small_scenario, graph):
        scheme = TributaryDeltaQuantiles(graph)
        channel = Channel(small_scenario.deployment, GlobalLoss(1.0), seed=0)
        outcome = scheme.run_epoch(0, channel, _uniform_items)
        with pytest.raises(ConfigurationError):
            outcome.quantile(0.5)

    def test_one_transmission_per_node(self, small_scenario, graph):
        scheme = TributaryDeltaQuantiles(graph)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        scheme.run_epoch(0, channel, _uniform_items)
        assert channel.log.transmissions == small_scenario.deployment.num_sensors

    def test_validation(self, graph):
        with pytest.raises(ConfigurationError):
            TributaryDeltaQuantiles(graph, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            TributaryDeltaQuantiles(graph, sample_size=0)
        with pytest.raises(ConfigurationError):
            TributaryDeltaQuantiles(graph, tree_attempts=0)

    def test_quantiles_batch(self, small_scenario, graph):
        scheme = TributaryDeltaQuantiles(graph, sample_size=128)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, _uniform_items)
        results = outcome.quantiles([0.25, 0.5, 0.75])
        assert results == sorted(results)
