"""Tests for the Quantiles-based FI baseline and precision-gradient quantiles."""

from __future__ import annotations

import pytest

from repro.datasets.streams import ZipfItemStream, exact_item_counts
from repro.frequent.quantiles_fi import QuantilesBasedFrequentItems
from repro.frequent.reporting import false_negative_rate, true_frequent
from repro.frequent.tree_fi import TreeFrequentItems
from repro.frequent.tree_quantiles import TreeQuantiles
from repro.network.failures import GlobalLoss
from repro.network.links import Channel


@pytest.fixture(scope="module")
def stream():
    return ZipfItemStream(items_per_node=100, universe=120, alpha=1.2, seed=8)


class TestQuantilesBaseline:
    def test_no_false_negatives_lossless(self, small_tree, stream):
        support, epsilon = 0.02, 0.005
        engine = QuantilesBasedFrequentItems(small_tree, epsilon)
        root, _ = engine.aggregate(lambda n, e: stream.items(n, e))
        nodes = [n for n in small_tree.nodes if n != small_tree.root]
        truth = true_frequent(exact_item_counts(stream, nodes, 0), support)
        reported = engine.frequent_items(root, support)
        assert false_negative_rate(truth, reported) == 0.0

    def test_loads_exceed_summary_algorithms(self, small_tree, stream):
        # Figure 8: the Quantiles-based baseline pays far more communication
        # than the epsilon-deficient summaries.
        epsilon = 0.01
        items_fn = lambda n, e: stream.items(n, e)
        quantiles = QuantilesBasedFrequentItems(small_tree, epsilon)
        summaries = TreeFrequentItems.min_total_load(small_tree, epsilon)
        _, quantile_report = quantiles.aggregate(items_fn)
        _, summary_report = summaries.aggregate(items_fn)
        assert quantile_report.total_words > summary_report.total_words

    def test_lossy_operation(self, small_tree, small_scenario, stream):
        engine = QuantilesBasedFrequentItems(small_tree, 0.01)
        channel = Channel(small_scenario.deployment, GlobalLoss(1.0), seed=1)
        root, _ = engine.aggregate(
            lambda n, e: stream.items(n, e), 0, channel=channel
        )
        assert root is None


class TestTreeQuantiles:
    def test_quantile_accuracy(self, small_tree, stream):
        engine = TreeQuantiles.min_total_load(small_tree, epsilon=0.05)
        root, _ = engine.aggregate(lambda n, e: stream.items(n, e))
        nodes = [n for n in small_tree.nodes if n != small_tree.root]
        everything = sorted(
            item for node in nodes for item in stream.items(node, 0)
        )
        total = len(everything)
        for phi in (0.25, 0.5, 0.75):
            answer = engine.quantiles(root, [phi])[0]
            target_rank = phi * total
            low = everything[max(0, int(target_rank - 0.1 * total))]
            high = everything[min(total - 1, int(target_rank + 0.1 * total))]
            assert low <= answer <= high

    def test_total_load_scales_like_min_total(self, medium_tree, stream):
        # The gradient-budgeted quantiles keep total communication within a
        # constant of m/eps (the Section 6.1.4 claim), far below the
        # uniform-budget baseline on the same tree.
        epsilon = 0.05
        items_fn = lambda n, e: stream.items(n, e)
        gradient_engine = TreeQuantiles.min_total_load(medium_tree, epsilon)
        uniform_engine = QuantilesBasedFrequentItems(medium_tree, epsilon)
        _, gradient_report = gradient_engine.aggregate(items_fn)
        _, uniform_report = uniform_engine.aggregate(items_fn)
        assert gradient_report.total_words < uniform_report.total_words

    def test_lossless_counts(self, small_tree, stream):
        engine = TreeQuantiles.min_total_load(small_tree, epsilon=0.05)
        root, _ = engine.aggregate(lambda n, e: stream.items(n, e))
        assert root.n == 100 * (small_tree.size - 1)
