"""Tests for the tree frequent-items engine (Lemma 3 included)."""

from __future__ import annotations

import pytest

from repro.datasets.streams import DisjointUniformItemStream, ZipfItemStream, exact_item_counts
from repro.frequent.reporting import (
    false_negative_rate,
    report_frequent,
    true_frequent,
)
from repro.frequent.tree_fi import TreeFrequentItems
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel
from repro.tree.domination import domination_factor
from repro.tree.structure import Tree


@pytest.fixture(scope="module")
def zipf_stream():
    return ZipfItemStream(items_per_node=80, universe=300, alpha=1.2, seed=4)


class TestLossless:
    def test_counts_all_items(self, small_tree, zipf_stream):
        engine = TreeFrequentItems.min_total_load(small_tree, epsilon=0.01)
        root, _ = engine.aggregate(lambda n, e: zipf_stream.items(n, e))
        expected = 80 * (small_tree.size - 1)
        assert root.n == expected

    def test_no_false_negatives_without_loss(self, small_tree, zipf_stream):
        # The epsilon-deficient guarantee: everything with frequency >= sN
        # is reported when communication is exact.
        support, epsilon = 0.02, 0.002
        engine = TreeFrequentItems.min_total_load(small_tree, epsilon=epsilon)
        items_fn = lambda n, e: zipf_stream.items(n, e)
        root, _ = engine.aggregate(items_fn)
        nodes = [n for n in small_tree.nodes if n != small_tree.root]
        truth = true_frequent(exact_item_counts(zipf_stream, nodes, 0), support)
        reported = report_frequent(root, support, epsilon)
        assert false_negative_rate(truth, reported) == 0.0

    def test_false_positives_bounded_by_tolerance(self, small_tree, zipf_stream):
        support, epsilon = 0.02, 0.002
        engine = TreeFrequentItems.min_total_load(small_tree, epsilon=epsilon)
        items_fn = lambda n, e: zipf_stream.items(n, e)
        root, _ = engine.aggregate(items_fn)
        nodes = [n for n in small_tree.nodes if n != small_tree.root]
        counts = exact_item_counts(zipf_stream, nodes, 0)
        total = sum(counts.values())
        for item in report_frequent(root, support, epsilon):
            # every reported item truly has frequency > (s - eps) N
            assert counts.get(item, 0) > (support - epsilon) * total - 1e-9

    def test_lemma3_total_communication_bound(self, medium_tree):
        # Total words <= 2 * counters-bound + headers; counters bound is
        # (1 + 2/(sqrt(d)-1)) * m / eps for the tree's domination factor.
        epsilon = 0.05
        stream = DisjointUniformItemStream(items_per_node=60, values_per_node=30, seed=1)
        engine = TreeFrequentItems.min_total_load(medium_tree, epsilon=epsilon)
        _, report = engine.aggregate(lambda n, e: stream.items(n, e))
        d = domination_factor(medium_tree)
        m = medium_tree.size
        counter_bound = (1 + 2 / (d**0.5 - 1)) * m / epsilon
        word_bound = 2 * counter_bound + 2 * m  # 2 words/counter + headers
        assert report.total_words <= word_bound


class TestGradientsDiffer:
    def test_min_total_beats_min_max_on_disjoint_stream(self, medium_tree):
        # Figure 8's synthetic claim: roughly half the total load.
        epsilon = 0.02
        stream = DisjointUniformItemStream(
            items_per_node=200, values_per_node=100, seed=2
        )
        items_fn = lambda n, e: stream.items(n, e)
        total_engine = TreeFrequentItems.min_total_load(medium_tree, epsilon)
        max_engine = TreeFrequentItems.min_max_load(medium_tree, epsilon)
        _, total_report = total_engine.aggregate(items_fn)
        _, max_report = max_engine.aggregate(items_fn)
        assert total_report.total_words < max_report.total_words

    def test_hybrid_max_load_within_two_of_min_max(self, medium_tree):
        epsilon = 0.02
        stream = DisjointUniformItemStream(
            items_per_node=200, values_per_node=100, seed=2
        )
        items_fn = lambda n, e: stream.items(n, e)
        hybrid = TreeFrequentItems.hybrid(medium_tree, epsilon)
        max_engine = TreeFrequentItems.min_max_load(medium_tree, epsilon)
        _, hybrid_report = hybrid.aggregate(items_fn)
        _, max_report = max_engine.aggregate(items_fn)
        assert hybrid_report.max_load <= 2 * max_report.max_load + 4


class TestLossy:
    def test_loss_reduces_observed_total(self, small_tree, zipf_stream, small_scenario):
        engine = TreeFrequentItems.min_total_load(small_tree, epsilon=0.01)
        items_fn = lambda n, e: zipf_stream.items(n, e)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.4), seed=2)
        root, _ = engine.aggregate(items_fn, 0, channel=channel)
        lossless_root, _ = engine.aggregate(items_fn, 0)
        assert root is None or root.n < lossless_root.n

    def test_total_loss_returns_none(self, small_tree, zipf_stream, small_scenario):
        engine = TreeFrequentItems.min_total_load(small_tree, epsilon=0.01)
        channel = Channel(small_scenario.deployment, GlobalLoss(1.0), seed=2)
        root, _ = engine.aggregate(
            lambda n, e: zipf_stream.items(n, e), 0, channel=channel
        )
        assert root is None

    def test_retransmissions_recover_mass(self, small_tree, zipf_stream, small_scenario):
        items_fn = lambda n, e: zipf_stream.items(n, e)
        totals = {}
        for attempts in (1, 3):
            engine = TreeFrequentItems.min_total_load(
                small_tree, epsilon=0.01, attempts=attempts
            )
            survived = 0
            for epoch in range(5):
                channel = Channel(
                    small_scenario.deployment, GlobalLoss(0.4), seed=2
                )
                root, _ = engine.aggregate(items_fn, epoch, channel=channel)
                survived += root.n if root else 0
            totals[attempts] = survived
        assert totals[3] > totals[1]
