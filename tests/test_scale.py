"""The memory-lean scale tier: packed state, retention, result stores.

The load-bearing guarantees, in paper terms:

* **Packed state is an implementation detail** — a run under
  ``engine.state = "packed"`` (ndarray node state behind the dict-shaped
  API) is *byte-identical* to the dict-path run for every scheme and loss
  level: same placement draws, same radio graph, same rings, same tree,
  same per-epoch messages. The dict path stays as the oracle.
* **Retention changes what is kept, not what is computed** — a
  ``stream``/``window:N`` run reports the same RMS error, contributing
  fraction and words/epoch as the retained run; only the in-RAM timeline
  shrinks.
* **Stores round-trip byte-identically** — epochs spilled to ``jsonl``
  or ``sqlite`` reload equal to the retained epochs, and
  ``RunReport.load_epochs`` is the lazy path back.
* **The scale topology holds at 20k nodes** — the packed ring builder
  and the dict builder agree on every level and every tree parent.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    CONFIG_SCHEMA_VERSION,
    EngineOptions,
    RunConfig,
    RunReport,
    config_digest,
    run_config_result,
)
from repro.errors import ConfigurationError
from repro.serialization import from_jsonable, to_jsonable
from repro.storage import (
    MemoryStore,
    count_epochs,
    load_epochs,
    store_names,
    validate_store_spec,
)

BASE = dict(
    aggregate="sum",
    reading="uniform:10:100:0",
    converge_epochs=0,
    seed=0,
)


def _dumps(result) -> str:
    return json.dumps(to_jsonable(result), sort_keys=True)


def _run(config: RunConfig):
    return run_config_result(config)


# -- packed-vs-dict byte identity -------------------------------------------


@pytest.mark.parametrize("scheme", ["TAG", "SD", "TD"])
@pytest.mark.parametrize("failure", ["none", "global:0.3"])
def test_packed_is_byte_identical_600(scheme, failure):
    """The 600-node golden scenario: packed == dict, bit for bit."""
    base = dict(
        scheme=scheme, failure=failure, num_sensors=600, epochs=3, **BASE
    )
    plain = _run(RunConfig(**base))
    packed = _run(RunConfig(engine=EngineOptions(state="packed"), **base))
    assert _dumps(plain) == _dumps(packed)


def test_packed_identity_on_labdata_conversion():
    """Topologies without a native packed builder go through pack_topology."""
    base = dict(
        scheme="TAG", failure="global:0.2", topology="labdata",
        num_sensors=54, epochs=3, **BASE,
    )
    plain = _run(RunConfig(**base))
    packed = _run(RunConfig(engine=EngineOptions(state="packed"), **base))
    assert _dumps(plain) == _dumps(packed)


def test_packed_state_validated():
    with pytest.raises(ConfigurationError, match="state"):
        EngineOptions(state="sparse")


# -- the 20k-node scale topology --------------------------------------------


def test_scale_topology_parity_20k():
    """Packed and dict builders agree on 20k-node levels and parents."""
    from repro.datasets.synthetic import make_scale_scenario
    from repro.network.packed import build_packed_topology
    from repro.tree.construction import build_bushy_tree

    num = 20_000
    scenario = make_scale_scenario(num, seed=0)
    packed = build_packed_topology("synthetic-scale", num, 0)
    assert packed is not None
    assert packed.deployment.num_sensors == num
    for node in (0, 1, num // 2, num):
        assert packed.rings.level(node) == scenario.rings.level(node)
    assert all(
        packed.rings.level(node) == scenario.rings.level(node)
        for node in scenario.deployment.node_ids
    )
    dict_tree = build_bushy_tree(scenario.rings, seed=0)
    packed_tree = build_bushy_tree(packed.rings, seed=0)
    assert dict_tree.parents == packed_tree.parents


def test_packed_20k_short_run_smoke(tmp_path):
    """A 20k-node TAG run completes streamed + spilled, with sane stats."""
    config = RunConfig(
        scheme="TAG",
        failure="none",
        topology="synthetic-scale",
        num_sensors=20_000,
        epochs=2,
        engine=EngineOptions(state="packed"),
        retention="stream",
        storage=f"jsonl:{tmp_path}",
        **BASE,
    )
    result = _run(config)
    assert result.epochs == []  # nothing retained...
    assert result.num_epochs == 2  # ...but the run still counts
    # Lossless TAG sum bills two words per sensor per epoch.
    report = RunReport(config=config, result=result)
    assert report.words_per_epoch() == 40_000
    assert report.rms_error() == 0.0
    assert count_epochs(config.storage, config_digest(config)) == 2


# -- retention ---------------------------------------------------------------


@pytest.fixture(scope="module")
def retained_run():
    config = RunConfig(
        scheme="TAG", failure="global:0.2", num_sensors=40, epochs=6, **BASE
    )
    return config, _run(config)


def test_stream_retention_preserves_aggregates(retained_run):
    config, full = retained_run
    streamed = _run(config.replace(retention="stream"))
    assert streamed.epochs == []
    assert streamed.num_epochs == full.num_epochs == 6
    assert streamed.rms_error() == full.rms_error()
    assert streamed.mean_contributing_fraction(
        40
    ) == full.mean_contributing_fraction(40)
    assert _dumps(streamed.energy) == _dumps(full.energy)


def test_window_retention_keeps_the_tail(retained_run):
    config, full = retained_run
    windowed = _run(config.replace(retention="window:2"))
    assert [epoch.epoch for epoch in windowed.epochs] == [
        epoch.epoch for epoch in full.epochs[-2:]
    ]
    assert _dumps(windowed.epochs[-1]) == _dumps(full.epochs[-1])
    assert windowed.num_epochs == 6
    assert windowed.rms_error() == full.rms_error()


def test_streamed_results_still_fire_on_result(retained_run):
    config, full = retained_run
    from repro.aggregates.sum_ import SumAggregate
    from repro.api import build_scenario

    seen = []
    scenario = build_scenario(config.replace(retention="stream"))
    scheme = scenario.build_scheme(SumAggregate())
    simulator = scenario.build_simulator(scheme, on_result=seen.append)
    simulator.run(6, scenario.source, start_epoch=config.start_epoch)
    assert [epoch.epoch for epoch in seen] == [
        epoch.epoch for epoch in full.epochs
    ]


def test_retention_validation():
    config = RunConfig(
        scheme="TAG", failure="none", num_sensors=20, epochs=2, **BASE
    )
    with pytest.raises(ConfigurationError, match="retention"):
        config.replace(retention="window:0")
    with pytest.raises(ConfigurationError, match="retention"):
        config.replace(retention="ring")


# -- stores ------------------------------------------------------------------


def test_store_registry_and_validation():
    assert {"jsonl", "memory", "sqlite"} <= set(store_names())
    validate_store_spec("memory")
    with pytest.raises(ConfigurationError, match="registered stores"):
        validate_store_spec("mongo:somewhere")
    with pytest.raises(ConfigurationError, match="target"):
        validate_store_spec("jsonl")
    with pytest.raises(ConfigurationError, match="no target"):
        validate_store_spec("memory:what")


@pytest.mark.parametrize("backend", ["memory", "jsonl", "sqlite"])
def test_store_round_trip(backend, tmp_path):
    MemoryStore.clear()
    spec = {
        "memory": "memory",
        "jsonl": f"jsonl:{tmp_path / 'rows'}",
        "sqlite": f"sqlite:{tmp_path / 'rows.db'}",
    }[backend]
    config = RunConfig(
        scheme="TAG", failure="global:0.2", num_sensors=30, epochs=4,
        storage=spec, **BASE,
    )
    result = _run(config)
    digest = config_digest(config)
    reloaded = load_epochs(spec, digest)
    assert count_epochs(spec, digest) == 4
    assert [_dumps(epoch) for epoch in reloaded] == [
        _dumps(epoch) for epoch in result.epochs
    ]


def test_report_load_epochs_reloads_lazily(tmp_path):
    spec = f"sqlite:{tmp_path / 'runs.db'}"
    config = RunConfig(
        scheme="TAG", failure="global:0.2", num_sensors=30, epochs=4,
        retention="stream", storage=spec, **BASE,
    )
    result = _run(config)
    report = RunReport(config=config, result=result)
    assert result.epochs == []
    epochs = report.load_epochs()
    assert [epoch.epoch for epoch in epochs] == [1000, 1001, 1002, 1003]
    # And the reloaded epochs match a fully retained reference run.
    reference = _run(config.replace(retention="all", storage=None))
    assert [_dumps(e) for e in epochs] == [
        _dumps(e) for e in reference.epochs
    ]


# -- config surface ----------------------------------------------------------


def test_scale_fields_version_gate():
    """Configs not using the tier keep their old digests (v2 payloads)."""
    plain = RunConfig(
        scheme="TAG", failure="none", num_sensors=20, epochs=2, **BASE
    )
    assert plain.to_jsonable()["version"] == 2
    assert "retention" not in plain.to_jsonable()
    assert "storage" not in plain.to_jsonable()
    for upgraded in (
        plain.replace(retention="stream"),
        plain.replace(storage="memory"),
        plain.replace(engine=EngineOptions(state="packed")),
    ):
        payload = upgraded.to_jsonable()
        # Scale fields gate at v6; later tiers (GROUP BY) sit above it.
        assert payload["version"] == 6 <= CONFIG_SCHEMA_VERSION
        rebuilt = RunConfig.from_jsonable(payload)
        assert rebuilt == upgraded
        assert config_digest(rebuilt) == config_digest(upgraded)
        assert config_digest(rebuilt) != config_digest(plain)


def test_run_report_round_trips_with_stats():
    config = RunConfig(
        scheme="TAG", failure="global:0.2", num_sensors=30, epochs=3,
        retention="stream", **BASE,
    )
    report = RunReport(config=config, result=_run(config))
    rebuilt = from_jsonable(to_jsonable(report))
    assert rebuilt.result.num_epochs == 3
    assert rebuilt.result.rms_error() == report.result.rms_error()
    assert rebuilt.words_per_epoch() == report.words_per_epoch()
