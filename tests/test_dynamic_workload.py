"""Dynamic workload membership: admissions and evictions at block
boundaries must not perturb surviving queries.

The physical argument: delivery draws are keyed hashes of
``(seed, sender, receiver, epoch, attempt)`` — payload-independent — and
every piggyback slot's state is per-slot, so adding or removing a slot
between blocks changes the *message contents* but not the *delivery
pattern* or any other slot's arithmetic. These suites check the strong
form of that claim on the live service engine:

* a query that outlives a departing co-tenant produces **byte-identical**
  per-epoch results to a service that never admitted the departed query;
* a query admitted at a later boundary produces byte-identical results
  (over its own epochs) to one subscribed from the start;
* the service engine's per-epoch answers equal the one-shot
  ``Session.run`` of the equivalent workload config — the service is the
  same engine, not a parallel implementation.

TAG covers the non-adaptive path; TD covers the adaptive path (blocks
aligned to the adaptation interval).
"""

from __future__ import annotations

import pytest

from repro.api import QuerySpec, RunConfig, Session
from repro.service import AggregationService
from repro.service.streams import QuerySubmit


def _config(scheme="TAG", **overrides) -> RunConfig:
    merged = dict(
        scheme=scheme,
        failure="global:0.2",
        num_sensors=24,
        converge_epochs=0 if scheme == "TAG" else 10,
        reading="uniform:10:100:0",
        epochs=0,
    )
    merged.update(overrides)
    return RunConfig(**merged)


def _submit(queries, epochs=None) -> QuerySubmit:
    specs = tuple(
        QuerySpec(name=name, query=query) for name, query in queries
    )
    return QuerySubmit(queries=specs, epochs=epochs)


def _records(subscriber):
    """Drain a subscriber's queued records without blocking."""
    collected = []
    for item in subscriber.records(timeout=0.05):
        if isinstance(item, str):
            break
        collected.append(item)
    return collected


def _estimates(records, name):
    return [record.results[name].estimate for record in records]


def _epochs(records):
    return [record.epoch for record in records]


class TestDeparture:
    @pytest.mark.parametrize("scheme", ["TAG", "TD"])
    def test_departure_leaves_survivor_bytes_untouched(self, scheme):
        config = _config(scheme)

        # Dynamic: count subscribes open-ended, sum leaves after block 1.
        dynamic = AggregationService(config)
        survivor = dynamic.subscribe(_submit([("c", "SELECT count")]))
        block = dynamic.block_epochs
        departing = dynamic.subscribe(
            _submit([("s", "SELECT sum")], epochs=block)
        )
        assert dynamic.run_block() == block  # both queries live
        assert departing.done  # limit reached: released at next boundary
        assert dynamic.run_block() == block  # survivor only
        dynamic_records = _records(survivor)

        # Static: a service that never admitted sum.
        static = AggregationService(config)
        only = static.subscribe(_submit([("c", "SELECT count")]))
        assert static.run_block() == block
        assert static.run_block() == block
        static_records = _records(only)

        assert _epochs(dynamic_records) == _epochs(static_records)
        assert _estimates(dynamic_records, "c") == _estimates(
            static_records, "c"
        )
        # The departed query's slot is really gone.
        assert dynamic.stats()["planner"]["keys"] == ["SELECT count"]

    def test_workload_may_empty_and_refill(self):
        service = AggregationService(_config())
        block = service.block_epochs
        first = service.subscribe(_submit([("c", "SELECT count")], epochs=block))
        assert service.run_block() == block
        assert first.done
        # All subscribers gone: the boundary empties the workload and the
        # engine idles instead of running dead epochs.
        assert service.run_block() == 0
        # A later arrival picks up at the cursor, on the same scenario.
        second = service.subscribe(_submit([("c", "SELECT count")], epochs=block))
        assert service.run_block() == block
        records = _records(second)
        assert len(records) == block
        assert records[0].epoch == config_start(service) + block
        assert service.stats()["engine"]["epochs_run"] == 2 * block


def config_start(service) -> int:
    return service.config.start_epoch


class TestArrival:
    @pytest.mark.parametrize("scheme", ["TAG", "TD"])
    def test_late_arrival_matches_day_one_subscriber(self, scheme):
        config = _config(scheme)

        # Dynamic: count from the start, sum admitted at the boundary.
        dynamic = AggregationService(config)
        dynamic.subscribe(_submit([("c", "SELECT count")]))
        block = dynamic.block_epochs
        assert dynamic.run_block() == block
        late = dynamic.subscribe(_submit([("s", "SELECT sum")]))
        assert dynamic.run_block() == block
        late_records = _records(late)

        # Static: sum subscribed from the very first block.
        static = AggregationService(config)
        early = static.subscribe(_submit([("s", "SELECT sum")]))
        assert static.run_block() == block
        assert static.run_block() == block
        early_records = _records(early)

        # Over the late subscriber's own epochs (block 2), its results are
        # byte-identical to the day-one subscription's.
        tail = [r for r in early_records if r.epoch >= late_records[0].epoch]
        assert _epochs(late_records) == _epochs(tail)
        assert _estimates(late_records, "s") == _estimates(tail, "s")


class TestSessionEquivalence:
    @pytest.mark.parametrize("scheme", ["TAG", "TD"])
    def test_service_answers_equal_one_shot_workload_run(self, scheme):
        config = _config(scheme)
        service = AggregationService(config)
        block = service.block_epochs
        subscriber = service.subscribe(
            _submit([("mean", "SELECT avg"), ("n", "SELECT count")])
        )
        assert service.run_block() == block
        records = _records(subscriber)

        workload = config.replace(
            queries=[
                {"name": "mean", "query": "SELECT avg"},
                {"name": "n", "query": "SELECT count"},
            ],
            epochs=block,
        )
        report = Session().run(workload)

        assert _estimates(records, "mean") == report.query("mean").estimates
        assert _estimates(records, "n") == report.query("n").estimates
        truths = [record.results["mean"].truth for record in records]
        assert truths == report.query("mean").true_values
