"""Tests for the q-digest summary (Shrivastava et al., SenSys'04).

Pins the two guarantees the structure is used for — the space bound
(~3k counted ranges for budget k) and the rank-error bound
(``epsilon * n``) — plus mergeability, the first-class ``quantiles_qd``
registry/SELECT surface, and a GK-vs-q-digest sanity comparison.
"""

from __future__ import annotations

import pytest

from repro.aggregates.frequent import QuantilesAggregate, QuantilesQDAggregate
from repro.api import RunConfig, Session
from repro.errors import ConfigurationError
from repro.frequent.qdigest import QDigest
from repro.query import parse_query
from repro.registry import AGGREGATES, SUMMARIES, build_aggregate


def true_rank(values, answer) -> int:
    """How many values are <= the reported answer."""
    return sum(1 for value in values if value <= answer)


class TestQDigestStructure:
    def test_from_values_counts_everything(self):
        digest = QDigest.from_values([1, 5, 9, 5], log_universe=4, budget=8)
        assert digest.n == 4

    def test_space_bound(self):
        """At most ~3k counted ranges regardless of input size."""
        budget = 20
        values = [((i * 7919) % 1000) for i in range(5000)]
        digest = QDigest.from_values(values, log_universe=10, budget=budget)
        # The SenSys'04 bound is 3k; the floor(n/k) threshold admits a
        # small constant slop on non-divisible n.
        assert digest.size <= 3 * budget + 2
        assert digest.n == 5000

    def test_rank_error_within_bound(self):
        epsilon = 0.1
        log_universe = 10
        budget = -(-log_universe // epsilon)  # ceil(log_u / eps)
        values = [((i * 7919) % 1024) for i in range(4000)]
        digest = QDigest.from_values(
            values, log_universe=log_universe, budget=int(budget)
        )
        for phi in (0.1, 0.25, 0.5, 0.75, 0.9):
            answer = digest.query_quantile(phi)
            target = max(1, round(phi * len(values)))
            assert abs(true_rank(values, answer) - target) <= (
                epsilon * len(values)
            )

    def test_merge_is_lossless_on_counts_and_bounded_on_rank(self):
        epsilon = 0.1
        parts = [
            QDigest.from_values(
                [((i * 31 + j * 977) % 1024) for i in range(500)],
                log_universe=10,
                budget=100,
            )
            for j in range(8)
        ]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        assert merged.n == 4000
        values = [
            ((i * 31 + j * 977) % 1024)
            for j in range(8)
            for i in range(500)
        ]
        answer = merged.query_quantile(0.5)
        assert abs(true_rank(values, answer) - 2000) <= epsilon * 4000

    def test_merge_with_empty_is_identity(self):
        digest = QDigest.from_values([3, 7], log_universe=4, budget=8)
        empty = QDigest.empty(log_universe=4, budget=8)
        assert digest.merge(empty) == digest
        assert empty.merge(digest) == digest

    def test_words_track_size(self):
        digest = QDigest.from_values(range(100), log_universe=8, budget=10)
        assert digest.words() == 3 + 2 * digest.size


class TestQuantilesQDAggregate:
    def test_registered_as_summary_and_aggregate(self):
        assert "quantiles_qd" in SUMMARIES
        assert "quantiles_qd" in AGGREGATES
        aggregate = build_aggregate("quantiles_qd:0.1:0.5")
        assert isinstance(aggregate, QuantilesQDAggregate)
        assert parse_query("SELECT quantiles_qd:0.1").select == (
            "quantiles_qd:0.1"
        )

    def test_spec_validation(self):
        for bad in ("quantiles_qd:0", "quantiles_qd:0.1:2",
                    "quantiles_qd:0.1:0.5:99"):
            with pytest.raises(ConfigurationError):
                build_aggregate(bad)

    def test_tree_path_median_within_epsilon(self, small_scenario):
        epsilon = 0.1
        aggregate = QuantilesQDAggregate(epsilon=epsilon, phi=0.5)
        nodes = list(small_scenario.deployment.sensor_ids)
        readings = {n: float((n * 37) % 500) for n in nodes}
        partial = aggregate.tree_empty()
        for node in nodes:
            partial = aggregate.tree_merge(
                partial, aggregate.tree_local(node, 0, readings[node])
            )
        answer = aggregate.tree_eval(partial)
        values = sorted(readings.values())
        target = max(1, round(0.5 * len(values)))
        assert abs(true_rank(values, answer) - target) <= max(
            1, epsilon * len(values)
        )

    def test_exact_matches_gk_exact(self):
        values = [float((i * 13) % 97) for i in range(200)]
        gk = QuantilesAggregate(epsilon=0.05, phi=0.5)
        qd = QuantilesQDAggregate(epsilon=0.05, phi=0.5)
        assert qd.exact(values) == gk.exact(values)

    @pytest.mark.parametrize("scheme", ["TAG", "SD", "TD"])
    def test_runs_over_every_scheme(self, scheme):
        config = RunConfig(
            scheme=scheme,
            num_sensors=60,
            scenario_seed=11,
            epochs=2,
            converge_epochs=0,
            failure="none",
            reading="uniform:10:100:0",
            query="SELECT quantiles_qd:0.1",
        )
        report = Session().run(config)
        truth = report.result.epochs[0].true_value
        estimate = report.result.epochs[0].estimate
        assert 10 <= estimate <= 100
        # Under no loss the estimate tracks the true median closely.
        assert estimate == pytest.approx(truth, rel=0.35)
