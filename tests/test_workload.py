"""Multi-query workloads: one network run serves N concurrent queries.

The load-bearing suites:

* :class:`TestSingleQueryByteIdentity` — a one-entry workload IS its
  single-query run: same engine path, results byte-identical to the seed
  engine (golden digests recorded from commit 4893711), same
  ``config_digest`` (the shared result cache stays warm across the v2->v3
  schema migration).
* :class:`TestWorkloadByteIdentity` — the acceptance scenario: a 4-query
  workload (count, sum, avg-with-WHERE, heavy_hitters) through one
  simulator pass, each query's estimates and truths byte-identical to its
  standalone run under the same seed (TAG and SD exactly; TD exactly for
  every query whose standalone run drives adaptation from the shared
  contributing piggyback — i.e. all but count-like aggregates, whose
  standalone runs read their own count synopsis instead).
* :class:`TestSharedChannel` — all queries of a workload observe identical
  delivery sets (per-epoch transmission/delivery/drop counts match every
  standalone run's: delivery draws are payload-independent keyed hashes).
* :class:`TestBlockedEquivalence` — the epoch-blocked engine and the
  per-epoch loop agree per query on a multi-query workload (one
  ``DeliveryPlan`` serves all queries).
* :class:`TestWindowChurn` — the regression suite for windowed streams
  under churn: a node that dies mid-window stops contributing, and a
  rejoining node's window restarts instead of spanning readings it never
  sensed.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.api import (
    QuerySpec,
    QueryWorkload,
    RunConfig,
    RunReport,
    Session,
    config_digest,
    describe_experiment,
    run_config_result,
    split_workload_result,
)
from repro.errors import ConfigurationError
from repro.query import WindowedReadings, parse_queries, parse_query
from repro.registry import available, build_aggregate

QUICK = dict(
    num_sensors=40, epochs=5, converge_epochs=8, scenario_seed=4, seed=1
)

#: The acceptance portfolio: scalar pair + predicated windowed average +
#: a Section 6 heavy-hitters summary.
PORTFOLIO = (
    {"name": "count", "aggregate": "count"},
    {"name": "sum", "aggregate": "sum"},
    {"name": "hot", "query": "SELECT avg WHERE value > 50 WINDOW 5 MEAN"},
    {"name": "heavy", "aggregate": "heavy_hitters:0.1"},
)


def workload_config(scheme: str, queries=PORTFOLIO, **overrides) -> RunConfig:
    settings = dict(
        scheme=scheme,
        failure="global:0.3",
        reading="uniform:10:100:0",
        queries=list(queries),
        **QUICK,
    )
    settings.update(overrides)
    return RunConfig(**settings)


def standalone_config(scheme: str, spec, **overrides) -> RunConfig:
    settings = dict(
        scheme=scheme,
        failure="global:0.3",
        reading="uniform:10:100:0",
        aggregate=spec.get("aggregate", "count"),
        query=spec.get("query"),
        **QUICK,
    )
    settings.update(overrides)
    return RunConfig(**settings)


def _digest(result) -> str:
    """The full result fingerprint (same recipe as tests/test_churn.py)."""
    payload = repr(
        (
            [e.estimate for e in result.epochs],
            [e.contributing for e in result.epochs],
            [e.contributing_estimate for e in result.epochs],
            [
                (
                    e.log.transmissions,
                    e.log.deliveries,
                    e.log.drops,
                    e.log.words_sent,
                    e.log.messages_sent,
                )
                for e in result.epochs
            ],
            sorted(result.energy.per_node_uj.items()),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Seed-engine fingerprints (recorded from commit 4893711; identical to the
#: pre-workload GOLDEN_DIGESTS of tests/test_churn.py for these configs).
GOLDEN_DIGESTS = {
    "TAG": "39662a49fa19947f10d855cbd64d2aa3b9661988c90e3f98d766f817569382d8",
    "SD": "bbd4ddc5bcef4f7fee16b53302fd12cb7b32a09e2abc5f1260837b511200fea5",
    "TD": "cf624e4744f584e6c325388b5386a9ebcd198b20ee0e1d1f1bc64730e48bcf15",
}


class TestSingleQueryByteIdentity:
    """A one-entry workload runs the seed engine path, byte for byte."""

    @pytest.mark.parametrize("scheme", ["TAG", "SD", "TD"])
    def test_golden_digests(self, scheme):
        config = RunConfig(
            scheme=scheme,
            failure="global:0.3",
            num_sensors=60,
            epochs=12,
            converge_epochs=10,
            reading="uniform:10:100:0",
            seed=1,
            scenario_seed=0,
            queries=[{"name": "the-sum", "aggregate": "sum"}],
        )
        result = Session().run(config).result
        assert _digest(result) == GOLDEN_DIGESTS[scheme]

    def test_digest_matches_v2_equivalent(self):
        workload = RunConfig(
            scheme="TAG",
            queries=[{"name": "anything", "aggregate": "sum"}],
            **QUICK,
        )
        plain = RunConfig(scheme="TAG", aggregate="sum", **QUICK)
        assert config_digest(workload) == config_digest(plain)
        # The name is a report handle, not an execution knob.
        renamed = workload.replace(
            queries=[{"name": "other", "aggregate": "sum"}]
        )
        assert config_digest(renamed) == config_digest(plain)

    def test_one_query_report_uses_spec_name(self):
        config = RunConfig(
            scheme="TAG",
            queries=[{"name": "population", "aggregate": "count"}],
            **QUICK,
        )
        report = Session().run(config)
        assert report.query_names() == ["population"]
        assert report.query("population") is report.result


class TestSchemaMigration:
    """v2 payloads load unchanged; workloads are v3; errors actionable."""

    def test_workload_free_configs_still_encode_v2(self):
        payload = RunConfig(scheme="TAG", **QUICK).to_jsonable()
        assert payload["version"] == 2
        assert "queries" not in payload

    def test_workload_configs_encode_v3_and_round_trip(self):
        config = workload_config("TAG")
        payload = config.to_jsonable()
        assert payload["version"] == 3
        assert [entry["name"] for entry in payload["queries"]] == [
            "count", "sum", "hot", "heavy",
        ]
        assert RunConfig.from_json(config.to_json()) == config

    def test_v2_payload_loads_unchanged(self):
        v2 = {
            "type": "run-config",
            "version": 2,
            "scheme": "SD",
            "aggregate": "sum",
            "epochs": 7,
        }
        config = RunConfig.from_jsonable(v2)
        assert config.queries is None
        assert config.aggregate == "sum"

    def test_malformed_queries_are_actionable(self):
        cases = [
            ("a string", "list"),
            ([], "empty"),
            ([42], "queries\\[0\\]"),
            ([{"name": "x"}], "exactly one"),
            (
                [{"name": "x", "aggregate": "count", "query": "SELECT sum"}],
                "exactly one",
            ),
            ([{"name": "x", "aggregates": "count"}], "unknown keys"),
            ([{"name": "x", "aggregate": "nope"}], "available"),
            (
                [
                    {"name": "x", "aggregate": "count"},
                    {"name": "x", "aggregate": "sum"},
                ],
                "duplicate",
            ),
            ([{"name": "x", "query": "SELECT count, sum"}], "targets"),
            ([{"name": 7, "aggregate": "count"}], "name"),
        ]
        for queries, match in cases:
            with pytest.raises(ConfigurationError, match=match):
                RunConfig(scheme="TAG", queries=queries, **QUICK)

    def test_query_and_queries_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="both"):
            RunConfig(
                scheme="TAG",
                query="SELECT count",
                queries=[{"name": "s", "aggregate": "sum"}],
                **QUICK,
            )

    def test_aggregate_and_queries_are_mutually_exclusive(self):
        """A non-default 'aggregate' beside 'queries' would be silently
        ignored — reject it like the 'query' combination."""
        with pytest.raises(ConfigurationError, match="both"):
            RunConfig(
                scheme="TAG",
                aggregate="sum",
                queries=[{"name": "c", "aggregate": "count"}],
                **QUICK,
            )

    def test_multi_target_one_liner_encodes_v3(self):
        """A multi-target 'query' is a workload: pre-workload readers must
        be stopped by the version guard, not a parse error."""
        config = RunConfig(scheme="TAG", query="SELECT count, sum", **QUICK)
        assert config.to_jsonable()["version"] == 3
        single = RunConfig(scheme="TAG", query="SELECT count", **QUICK)
        assert single.to_jsonable()["version"] == 2

    def test_queries_entry_names_default(self):
        config = RunConfig(
            scheme="TAG",
            queries=[
                {"aggregate": "count"},
                {"query": "SELECT sum"},
            ],
            **QUICK,
        )
        assert [spec.name for spec in config.queries] == ["count", "q2"]

    def test_wrongly_typed_queries_value(self):
        with pytest.raises(ConfigurationError, match="queries"):
            RunConfig.from_jsonable(
                {"scheme": "TAG", "queries": "SELECT count"}
            )


class TestWorkloadByteIdentity:
    """Each query of a shared pass matches its standalone run exactly."""

    @pytest.mark.parametrize("scheme", ["TAG", "SD"])
    def test_four_query_portfolio(self, scheme):
        report = Session().run(workload_config(scheme))
        assert report.is_workload()
        for spec in PORTFOLIO:
            standalone = run_config_result(standalone_config(scheme, spec))
            view = report.query(spec["name"])
            assert view.estimates == standalone.estimates, spec["name"]
            assert view.true_values == standalone.true_values, spec["name"]

    def test_td_piggyback_feedback_queries(self):
        """TD workloads drive adaptation from the shared contributing
        piggyback — exactly what every non-count standalone run does, so
        those queries stay byte-identical under the adaptive scheme too."""
        specs = [spec for spec in PORTFOLIO if spec["name"] != "count"]
        report = Session().run(workload_config("TD", queries=specs))
        for spec in specs:
            standalone = run_config_result(standalone_config("TD", spec))
            view = report.query(spec["name"])
            assert view.estimates == standalone.estimates, spec["name"]
            assert view.true_values == standalone.true_values, spec["name"]

    def test_combined_billing_beats_separate_runs(self):
        """One pass bills the piggybacks once: total words land strictly
        between the heaviest single run and the sum of all runs."""
        workload_words = Session().run(
            workload_config("SD")
        ).result.energy.total_words
        singles = [
            run_config_result(
                standalone_config("SD", spec)
            ).energy.total_words
            for spec in PORTFOLIO
        ]
        assert max(singles) < workload_words < sum(singles)

    def test_split_requires_workload_extras(self):
        plain = run_config_result(RunConfig(scheme="TAG", **QUICK))
        with pytest.raises(ConfigurationError, match="per-query"):
            split_workload_result(plain, ["a", "b"])


class TestSharedChannel:
    """Every query observes the same delivery sets (paired by design)."""

    @pytest.mark.parametrize("scheme", ["TAG", "SD"])
    def test_delivery_counts_match_standalones(self, scheme):
        report = Session().run(workload_config(scheme))
        shared = [
            (e.log.transmissions, e.log.deliveries, e.log.drops)
            for e in report.result.epochs
        ]
        for spec in PORTFOLIO:
            standalone = run_config_result(standalone_config(scheme, spec))
            assert shared == [
                (e.log.transmissions, e.log.deliveries, e.log.drops)
                for e in standalone.epochs
            ], spec["name"]

    def test_per_query_views_share_logs_and_energy(self):
        report = Session().run(workload_config("TAG"))
        views = list(report.query_results.values())
        for view in views[1:]:
            assert view.energy is views[0].energy
            for left, right in zip(view.epochs, views[0].epochs):
                assert left.log is right.log


class TestBlockedEquivalence:
    """One DeliveryPlan serves all queries: blocked == per-epoch, and the
    vectorized channel == the scalar reference, per query."""

    @pytest.mark.parametrize("scheme", ["TAG", "SD", "TD"])
    def test_blocked_vs_per_epoch(self, scheme):
        config = workload_config(scheme, epochs=12)
        blocked = RunReport(config, run_config_result(config))
        per_epoch = RunReport(
            config, run_config_result(config.replace(use_blocked=False))
        )
        for name in blocked.query_names():
            assert (
                blocked.query(name).estimates
                == per_epoch.query(name).estimates
            ), name

    def test_batch_vs_scalar(self):
        config = workload_config("TD")
        batch = RunReport(config, run_config_result(config))
        scalar = RunReport(
            config,
            run_config_result(
                config.replace(use_batch=False, use_blocked=False)
            ),
        )
        for name in batch.query_names():
            assert (
                batch.query(name).estimates == scalar.query(name).estimates
            ), name


class TestMultiTargetQuery:
    """``SELECT a, b, ...`` one-liners expand into workloads."""

    def test_parse_queries_shares_clauses(self):
        queries = parse_queries(
            "SELECT count, sum, max WHERE value > 5 WINDOW 3 SUM"
        )
        assert [q.select for q in queries] == ["count", "sum", "max"]
        assert all(q.where is not None for q in queries)
        assert all(q.window == 3 and q.window_op == "SUM" for q in queries)

    def test_parse_query_rejects_multi_target(self):
        with pytest.raises(ConfigurationError, match="targets"):
            parse_query("SELECT count, sum")
        with pytest.raises(ConfigurationError, match="stray comma"):
            parse_queries("SELECT count,, sum")

    def test_one_liner_runs_as_workload(self):
        config = RunConfig(
            scheme="TAG", query="SELECT count, sum", **QUICK
        )
        report = Session().run(config)
        assert report.query_names() == ["count", "sum"]
        for name in ("count", "sum"):
            standalone = run_config_result(
                RunConfig(scheme="TAG", query=f"SELECT {name}", **QUICK)
            )
            assert report.query(name).estimates == standalone.estimates

    def test_duplicate_targets_get_distinct_handles(self):
        workload = QueryWorkload.from_config(
            RunConfig(scheme="TAG", query="SELECT count, count", **QUICK)
        )
        assert workload.names == ("count", "count#2")


class TestFrequentSummaries:
    """frequent/ summaries are first-class query targets."""

    def test_registry_lists_summaries(self):
        names = available()
        assert names["summaries"] == (
            "heavy_hitters", "quantiles", "quantiles_qd"
        )
        assert "heavy_hitters" in names["aggregates"]
        assert "quantiles" in names["aggregates"]
        assert "quantiles_qd" in names["aggregates"]

    def test_spec_strings_resolve(self):
        assert build_aggregate("heavy_hitters:0.2").phi == 0.2
        quantiles = build_aggregate("quantiles:0.1:0.9")
        assert quantiles.epsilon == 0.1 and quantiles.phi == 0.9
        with pytest.raises(ConfigurationError, match="bad aggregate spec"):
            build_aggregate("heavy_hitters:lots")
        with pytest.raises(ConfigurationError, match="available"):
            build_aggregate("frequent_items:0.1")

    def test_plain_aggregates_take_no_spec_args(self):
        """register_aggregate factories are zero-argument by contract:
        'count:zzz' must fail fast, not leak a string into the run."""
        for bad in ("count:zzz", "count:20", "sum:1"):
            with pytest.raises(ConfigurationError, match="no spec arguments"):
                build_aggregate(bad)
        with pytest.raises(ConfigurationError, match="no spec arguments"):
            RunConfig(scheme="TAG", aggregate="count:20", **QUICK)
        with pytest.raises(ConfigurationError, match="no spec arguments"):
            parse_query("SELECT count:20")

    def test_select_target(self):
        assert parse_query("SELECT heavy_hitters:0.2").select == (
            "heavy_hitters:0.2"
        )

    def test_heavy_hitters_exact_over_lossless_tree(self):
        config = RunConfig(
            scheme="TAG",
            failure="none",
            aggregate="heavy_hitters:0.1",
            reading="uniform:10:20:0",
            **QUICK,
        )
        result = run_config_result(config)
        assert result.estimates == result.true_values
        assert all(value >= 0.0 for value in result.estimates)

    def test_quantiles_exact_over_lossless_tree(self):
        config = RunConfig(
            scheme="TAG",
            failure="none",
            aggregate="quantiles:0.05:0.5",
            reading="uniform:10:100:0",
            **QUICK,
        )
        result = run_config_result(config)
        assert result.estimates == result.true_values

    def test_quantiles_runs_under_sd_and_td(self):
        for scheme in ("SD", "TD"):
            result = run_config_result(
                RunConfig(
                    scheme=scheme,
                    failure="global:0.2",
                    aggregate="quantiles:0.1",
                    reading="uniform:10:100:0",
                    **QUICK,
                )
            )
            truth = result.true_values[0]
            assert all(10 <= value <= 100 for value in result.estimates)
            assert 10 <= truth <= 100

    def test_filtered_heavy_hitters(self):
        result = run_config_result(
            RunConfig(
                scheme="TAG",
                failure="none",
                query="SELECT heavy_hitters:0.1 WHERE value > 50",
                reading="uniform:10:100:0",
                **QUICK,
            )
        )
        assert result.estimates == result.true_values


class TestWindowChurn:
    """Windowed streams under churn: no stale contributions."""

    def _update(self, died=(), joined=(), epoch=0):
        class Update:
            pass

        update = Update()
        update.died = tuple(died)
        update.joined = tuple(joined)
        update.epoch = epoch
        return update

    def test_death_drops_cached_window(self):
        source = lambda node, epoch: float(epoch)
        window = WindowedReadings(source, 5)
        for epoch in range(10, 14):
            window(7, epoch)
        window.on_membership_change(self._update(died=[7]))
        assert 7 not in window._windows

    def test_rejoin_restarts_window(self):
        source = lambda node, epoch: float(epoch)
        window = WindowedReadings(source, 5)
        for epoch in range(10, 14):
            window(7, epoch)
        window.on_membership_change(self._update(died=[7]))
        window.on_membership_change(self._update(joined=[7], epoch=20))
        # The window must span 20..21 only — never the dead epochs.
        assert window(7, 21) == pytest.approx((20.0 + 21.0) / 2)
        # Incremental advance stays inside the segment too.
        assert window(7, 22) == pytest.approx((20.0 + 21.0 + 22.0) / 3)
        # Once the window has refilled, behaviour is the steady state.
        assert window(7, 27) == pytest.approx(25.0)

    def test_deaths_churn_with_window_stays_consistent(self):
        """Regression: deaths churn + WINDOW 5 MEAN over a lossless tree
        must keep estimate == truth every epoch (a dead node's window
        state must not leak into either side)."""
        config = RunConfig(
            scheme="TAG",
            num_sensors=30,
            epochs=20,
            converge_epochs=0,
            failure="none",
            reading="uniform:10:100:3",
            query="SELECT sum WINDOW 5 MEAN",
            churn="deaths:1006:5:1",
            churn_interval=5,
            seed=2,
        )
        result = run_config_result(config)
        alive = [e.extra["alive_sensors"] for e in result.epochs]
        assert min(alive) == 25 and alive[0] == 30
        assert result.estimates == result.true_values

    def test_rejoin_churn_with_window_stays_consistent(self):
        config = RunConfig(
            scheme="TAG",
            num_sensors=30,
            epochs=30,
            converge_epochs=0,
            failure="none",
            reading="uniform:10:100:3",
            query="SELECT sum WINDOW 5 MEAN",
            churn="blackout:1005:0:0:10:10:1015",
            churn_interval=5,
            seed=2,
        )
        result = run_config_result(config)
        alive = [e.extra["alive_sensors"] for e in result.epochs]
        assert min(alive) < 30 and alive[-1] == 30
        assert result.estimates == result.true_values

    def test_workload_forwards_churn_to_every_window(self):
        """A workload's per-query windows restart too (the hook fans out)."""
        config = RunConfig(
            scheme="TAG",
            num_sensors=30,
            epochs=30,
            converge_epochs=0,
            failure="none",
            reading="uniform:10:100:3",
            queries=[
                {"name": "w5", "query": "SELECT sum WINDOW 5 MEAN"},
                {"name": "raw", "aggregate": "sum"},
            ],
            churn="blackout:1005:0:0:10:10:1015",
            churn_interval=5,
            seed=2,
        )
        report = RunReport(config, run_config_result(config))
        for name in ("w5", "raw"):
            view = report.query(name)
            assert view.estimates == view.true_values, name


class TestReportsAndSession:
    def test_render_lists_queries(self):
        report = Session().run(workload_config("TAG"))
        text = report.render()
        assert "workload[4 queries]" in text
        for spec in PORTFOLIO:
            assert f"query {spec['name']}:" in text

    def test_unknown_query_name_actionable(self):
        report = Session().run(workload_config("TAG"))
        with pytest.raises(ConfigurationError, match="heavy"):
            report.query("nope")

    def test_cache_round_trip_preserves_query_views(self, tmp_path):
        config = workload_config("TAG")
        first = Session(cache_dir=tmp_path).run(config)
        second = Session(cache_dir=tmp_path).run(config)
        for name in first.query_names():
            assert (
                first.query(name).estimates == second.query(name).estimates
            )
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_sweep_with_workload_configs(self):
        report = Session().sweep(
            [workload_config("TAG"), workload_config("SD")]
        )
        series = report.rms_by_query()
        assert ("TAG", "heavy") in series and ("SD", "sum") in series
        assert "rms_error" in report.render()

    def test_multiquery_experiment_describes_and_round_trips(self):
        config = describe_experiment("multiquery")
        assert config.queries is not None and len(config.queries) == 4
        assert RunConfig.from_json(config.to_json()) == config

    def test_serialization_codec_round_trip(self):
        from repro.serialization import dumps, loads

        config = workload_config("SD")
        assert loads(dumps(config)) == config
        report = Session().run(config)
        decoded = loads(dumps(report))
        for name in report.query_names():
            assert (
                decoded.query(name).estimates == report.query(name).estimates
            )

    def test_query_spec_objects_accepted(self):
        config = RunConfig(
            scheme="TAG",
            queries=[
                QuerySpec(name="a", aggregate="count"),
                QuerySpec(name="b", query="SELECT sum"),
            ],
            **QUICK,
        )
        assert config.queries[0].name == "a"
        report = Session().run(config)
        assert set(report.query_results) == {"a", "b"}
