"""Tests for the mergeable Greenwald-Khanna quantile summaries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.frequent.gk import GKSummary


def true_rank(values, x):
    return sum(1 for v in values if v <= x)


class TestExactSummary:
    def test_from_values(self):
        summary = GKSummary.from_values([3.0, 1.0, 2.0])
        assert summary.n == 3
        assert summary.rank_error == 0.0
        assert [entry[0] for entry in summary.entries] == [1.0, 2.0, 3.0]

    def test_query_rank_exact(self):
        summary = GKSummary.from_values(range(1, 11))
        for rank in range(1, 11):
            assert summary.query_rank(rank) == float(rank)

    def test_query_quantile(self):
        summary = GKSummary.from_values(range(1, 101))
        assert summary.query_quantile(0.5) == pytest.approx(50.0, abs=1)

    def test_query_empty_raises(self):
        with pytest.raises(ConfigurationError):
            GKSummary.from_values([]).query_rank(1)

    def test_rank_bounds_exact(self):
        values = [1.0, 2.0, 2.0, 5.0]
        summary = GKSummary.from_values(values)
        low, high = summary.rank_bounds(2.0)
        assert low <= true_rank(values, 2.0) <= high


class TestMerge:
    def test_merge_sizes_add(self):
        a = GKSummary.from_values([1, 3, 5])
        b = GKSummary.from_values([2, 4, 6])
        merged = a.merge(b)
        assert merged.n == 6
        assert merged.size == 6

    def test_merge_exact_ranks(self):
        values_a = [1.0, 4.0, 9.0]
        values_b = [2.0, 3.0, 10.0]
        merged = GKSummary.from_values(values_a).merge(
            GKSummary.from_values(values_b)
        )
        combined = sorted(values_a + values_b)
        for value, rmin, rmax in merged.entries:
            truth = true_rank(combined, value)
            assert rmin <= truth <= rmax

    def test_merge_with_empty(self):
        a = GKSummary.from_values([1, 2])
        empty = GKSummary.from_values([])
        assert a.merge(empty) is a
        assert empty.merge(a) is a


class TestPrune:
    def test_prune_shrinks(self):
        summary = GKSummary.from_values(range(100))
        pruned = summary.prune(10)
        assert pruned.size <= 11
        assert pruned.n == 100

    def test_prune_adds_bounded_error(self):
        summary = GKSummary.from_values(range(100))
        pruned = summary.prune(10)
        assert pruned.rank_error == pytest.approx(100 / 20)

    def test_prune_noop_when_small(self):
        summary = GKSummary.from_values([1, 2, 3])
        assert summary.prune(10) is summary

    def test_prune_rejects_zero_budget(self):
        with pytest.raises(ConfigurationError):
            GKSummary.from_values([1, 2, 3, 4]).prune(0)

    def test_query_error_within_guarantee(self):
        values = list(range(1, 1001))
        summary = GKSummary.from_values(values).prune(20)
        for phi in (0.1, 0.25, 0.5, 0.75, 0.9):
            answer = summary.query_quantile(phi)
            target = phi * 1000
            assert abs(answer - target) <= summary.rank_error + 1


class TestFrequencyEstimate:
    def test_exact_summary_frequencies(self):
        values = [1.0] * 10 + [2.0] * 5 + [3.0]
        summary = GKSummary.from_values(values)
        assert summary.frequency_estimate(1.0) == pytest.approx(10)
        assert summary.frequency_estimate(2.0) == pytest.approx(5)
        assert summary.frequency_estimate(3.0) == pytest.approx(1)

    def test_candidates(self):
        summary = GKSummary.from_values([1.0, 1.0, 2.0])
        assert summary.candidate_values() == [1.0, 2.0]


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_rank_bounds_valid(self, raw_a, raw_b):
        values_a = [float(v) for v in raw_a]
        values_b = [float(v) for v in raw_b]
        merged = GKSummary.from_values(values_a).merge(
            GKSummary.from_values(values_b)
        )
        combined = sorted(values_a + values_b)
        for value, rmin, rmax in merged.entries:
            truth = true_rank(combined, value)
            # rmin may undercount duplicates spread across both sides, but
            # the bracket [rmin, rmax] must always contain a valid rank of
            # an equal element.
            first_equal = sum(1 for v in combined if v < value) + 1
            assert rmin <= truth
            assert rmax >= first_equal

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=20, max_size=200),
        st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_prune_then_query_error_bound(self, raw, budget):
        values = sorted(float(v) for v in raw)
        summary = GKSummary.from_values(values).prune(budget)
        for phi in (0.0, 0.5, 1.0):
            answer = summary.query_quantile(phi)
            rank = max(1, round(phi * len(values)))
            truth_low = values[max(0, rank - 1 - int(summary.rank_error) - 1)]
            truth_high = values[
                min(len(values) - 1, rank - 1 + int(summary.rank_error) + 1)
            ]
            assert truth_low <= answer <= truth_high
