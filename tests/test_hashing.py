"""Tests for repro._hashing: stability, distribution, substreams."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._hashing import (
    geometric_level,
    hash_key,
    hash_unit,
    splitmix64,
    stream_rng,
)


class TestHashKey:
    def test_deterministic(self):
        assert hash_key("count", 3) == hash_key("count", 3)

    def test_token_order_matters(self):
        assert hash_key("a", "b") != hash_key("b", "a")

    def test_distinct_tokens_distinct_hashes(self):
        values = {hash_key("item", i) for i in range(10_000)}
        assert len(values) == 10_000

    def test_mixed_token_types(self):
        assert hash_key(1, "x", 2.5, None) == hash_key(1, "x", 2.5, None)

    def test_int_vs_str_differ(self):
        assert hash_key(1) != hash_key("1")

    def test_tuple_token_flattens_consistently(self):
        assert hash_key(("a", 1)) == hash_key(("a", 1))

    @given(st.lists(st.integers(), min_size=1, max_size=5))
    def test_always_64_bit(self, tokens):
        value = hash_key(*tokens)
        assert 0 <= value < 1 << 64


class TestSplitmix:
    def test_avalanche_on_single_bit(self):
        a = splitmix64(0)
        b = splitmix64(1)
        assert bin(a ^ b).count("1") > 16

    def test_range(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(value) < 1 << 64


class TestHashUnit:
    def test_in_unit_interval(self):
        for i in range(1000):
            assert 0.0 <= hash_unit("u", i) < 1.0

    def test_roughly_uniform(self):
        values = [hash_unit("uniform", i) for i in range(20_000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.02


class TestGeometricLevel:
    def test_distribution(self):
        counts = {}
        trials = 40_000
        for i in range(trials):
            level = geometric_level("geo", i)
            counts[level] = counts.get(level, 0) + 1
        # level 0 should hit ~1/2, level 1 ~1/4, level 2 ~1/8.
        assert abs(counts[0] / trials - 0.5) < 0.02
        assert abs(counts[1] / trials - 0.25) < 0.02
        assert abs(counts[2] / trials - 0.125) < 0.02

    def test_deterministic(self):
        assert geometric_level("x", 42) == geometric_level("x", 42)


class TestStreamRng:
    def test_same_key_same_stream(self):
        a = stream_rng("s", 1)
        b = stream_rng("s", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_keys_different_streams(self):
        a = stream_rng("s", 1)
        b = stream_rng("s", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
