"""Tests for d-domination analytics (Section 6.1.2, Table 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tree.domination import (
    domination_factor,
    height_profile,
    height_profile_fractions,
    is_d_dominating,
    min_children_of_lower_height,
    profile_is_d_dominating,
    tree_from_height_profile,
)
from repro.tree.structure import Tree


class TestHeightProfile:
    def test_star(self):
        star = Tree(parents={i: 0 for i in range(1, 6)})
        assert height_profile(star) == [5, 1]

    def test_chain(self):
        chain = Tree(parents={1: 0, 2: 1, 3: 2})
        assert height_profile(chain) == [1, 1, 1, 1]

    def test_fractions(self):
        assert height_profile_fractions([8, 4, 2, 1]) == [
            pytest.approx(8 / 15),
            pytest.approx(12 / 15),
            pytest.approx(14 / 15),
            pytest.approx(1.0),
        ]

    def test_fractions_reject_empty(self):
        with pytest.raises(ConfigurationError):
            height_profile_fractions([])


class TestDomination:
    def test_every_tree_is_1_dominating(self):
        chain = Tree(parents={1: 0, 2: 1, 3: 2})
        assert is_d_dominating(chain, 1.0)

    def test_regular_binary_tree_is_2_dominating(self):
        # Lemma 2: every internal node has 2 children of one lower height.
        t2 = tree_from_height_profile([8, 4, 2, 1])
        assert is_d_dominating(t2, 2.0)
        assert min_children_of_lower_height(t2) == 2

    def test_paper_table2_fractions(self):
        te = tree_from_height_profile([37, 10, 6, 1])
        fractions = height_profile_fractions(height_profile(te))
        assert fractions[0] == pytest.approx(37 / 54)
        assert fractions[1] == pytest.approx(47 / 54)
        assert fractions[2] == pytest.approx(53 / 54)
        assert fractions[3] == pytest.approx(1.0)

    def test_te_dominates_t2(self):
        # The paper's argument: H_Te(i) >= H_T2(i) for all i, so Te is
        # (at least) 2-dominating.
        te = tree_from_height_profile([37, 10, 6, 1])
        assert is_d_dominating(te, 2.0)

    def test_monotone_in_d(self):
        profile = [37, 10, 6, 1]
        previous = True
        for step in range(1, 60):
            d = 1.0 + step * 0.05
            current = profile_is_d_dominating(profile, d)
            if not previous:
                assert not current  # once it fails it stays failed
            previous = current

    def test_domination_factor_long_chain_is_1(self):
        # Short chains satisfy the inequalities vacuously; a long chain's
        # H(i) = i/n falls below the geometric bound for any d > 1.
        chain = Tree(parents={i: i - 1 for i in range(1, 41)})
        assert domination_factor(chain) == pytest.approx(1.0)

    def test_domination_factor_star_is_large(self):
        star = Tree(parents={i: 0 for i in range(1, 30)})
        assert domination_factor(star) > 5.0

    def test_rejects_d_below_1(self):
        chain = Tree(parents={1: 0})
        with pytest.raises(ConfigurationError):
            is_d_dominating(chain, 0.5)


class TestTreeFromProfile:
    def test_realises_profile_exactly(self):
        tree = tree_from_height_profile([5, 3, 1])
        assert height_profile(tree) == [5, 3, 1]

    def test_table2_profiles(self):
        te = tree_from_height_profile([37, 10, 6, 1])
        assert height_profile(te) == [37, 10, 6, 1]
        assert te.size == 54

    def test_rejects_increasing_profile(self):
        with pytest.raises(ConfigurationError):
            tree_from_height_profile([2, 5, 1])

    def test_rejects_multi_root(self):
        with pytest.raises(ConfigurationError):
            tree_from_height_profile([4, 2])

    def test_rejects_zero_entry(self):
        with pytest.raises(ConfigurationError):
            tree_from_height_profile([3, 0, 1])

    @given(
        st.lists(
            st.integers(min_value=1, max_value=20), min_size=1, max_size=5
        )
    )
    def test_property_any_sorted_profile(self, raw):
        profile = sorted(raw, reverse=True)
        profile[-1] = 1
        profile = [max(c, 1) for c in profile]
        # enforce non-increasing after the final-1 tweak
        for i in range(len(profile) - 2, -1, -1):
            profile[i] = max(profile[i], profile[i + 1])
        tree = tree_from_height_profile(profile)
        assert height_profile(tree) == profile


class TestLemma2:
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=4))
    def test_regular_trees(self, degree, height):
        # A regular degree-d tree of any height is d-dominating.
        profile = [degree ** (height - level) for level in range(1, height + 1)]
        tree = tree_from_height_profile(profile)
        assert is_d_dominating(tree, float(degree))
