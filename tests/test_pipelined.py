"""Tests for pipelined tree aggregation."""

from __future__ import annotations

import pytest

from repro.aggregates.count import CountAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.pipelined import PipelinedTagScheme
from repro.core.tag_scheme import TagScheme
from repro.datasets.streams import ConstantReadings
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel
from repro.network.simulator import EpochSimulator


def varying(node, epoch):
    """Per-epoch-varying readings for staleness checks."""
    return float(node % 7 + epoch * 10)


class TestFillPhase:
    def test_first_epochs_are_partial(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        sensors = small_scenario.deployment.num_sensors
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        counts = []
        for epoch in range(scheme.depth + 3):
            outcome = scheme.run_epoch(epoch, channel, ConstantReadings(1.0))
            counts.append(outcome.contributing)
        # Epoch 0 only hears ring-1 nodes; full coverage by epoch depth-1.
        assert counts[0] < sensors
        assert counts[scheme.depth - 1] == sensors
        assert all(c == sensors for c in counts[scheme.depth - 1 :])

    def test_fill_flag_reported(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        outcome = scheme.run_epoch(0, channel, ConstantReadings(1.0))
        assert outcome.extra["pipeline_fill"] is True


class TestSteadyState:
    def test_constant_readings_match_snapshot(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, SumAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        readings = ConstantReadings(2.0)
        outcome = None
        for epoch in range(scheme.depth + 2):
            outcome = scheme.run_epoch(epoch, channel, readings)
        assert outcome.estimate == scheme.exact_answer(0, readings)

    def test_varying_readings_match_mixed_truth(self, small_scenario, small_tree):
        """The pipelined answer equals the age-adjusted truth exactly."""
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, SumAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        for epoch in range(scheme.depth + 4):
            outcome = scheme.run_epoch(epoch, channel, varying)
        final_epoch = scheme.depth + 3
        assert outcome.estimate == scheme.mixed_truth(final_epoch, varying)
        # ... and differs from the snapshot truth (readings drift by epoch).
        assert outcome.estimate != scheme.exact_answer(final_epoch, varying)

    def test_staleness_equals_deepest_contribution(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        for epoch in range(scheme.depth + 2):
            outcome = scheme.run_epoch(epoch, channel, ConstantReadings(1.0))
        assert outcome.extra["staleness"] == scheme.depth - 1

    def test_one_transmission_per_node_per_epoch(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        scheme.run_epoch(0, channel, ConstantReadings(1.0))
        assert (
            channel.log.transmissions == small_scenario.deployment.num_sensors
        )


class TestUnderLoss:
    def test_loss_drops_accumulated_state(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        sensors = small_scenario.deployment.num_sensors
        channel = Channel(small_scenario.deployment, GlobalLoss(0.25), seed=3)
        contributing = []
        for epoch in range(scheme.depth + 15):
            outcome = scheme.run_epoch(epoch, channel, ConstantReadings(1.0))
            if epoch >= scheme.depth:
                contributing.append(outcome.contributing)
        mean = sum(contributing) / len(contributing)
        assert 0 < mean < sensors

    def test_simulator_drives_pipelined_scheme(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        simulator = EpochSimulator(
            small_scenario.deployment, GlobalLoss(0.1), scheme, seed=1
        )
        run = simulator.run(20, ConstantReadings(1.0), warmup=scheme.depth)
        assert len(run.epochs) == 20
        assert run.rms_error() < 1.0


class TestThroughputVsSnapshot:
    def test_pipelined_produces_an_answer_every_epoch(
        self, small_scenario, small_tree
    ):
        """Both schemes emit one answer per simulator epoch; the pipelined
        one's epochs are radio epochs (short), the snapshot one's are whole
        waves (depth x longer) — the throughput argument from [10]."""
        pipelined = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        snapshot = TagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        readings = ConstantReadings(1.0)
        for epoch in range(pipelined.depth + 1):
            pipelined_outcome = pipelined.run_epoch(epoch, channel, readings)
        snapshot_outcome = snapshot.run_epoch(0, channel, readings)
        assert pipelined_outcome.estimate == snapshot_outcome.estimate

    def test_reset_drains_pipeline(self, small_scenario, small_tree):
        scheme = PipelinedTagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        for epoch in range(scheme.depth + 2):
            scheme.run_epoch(epoch, channel, ConstantReadings(1.0))
        scheme.reset()
        outcome = scheme.run_epoch(0, channel, ConstantReadings(1.0))
        assert outcome.contributing < small_scenario.deployment.num_sensors

    def test_validation(self, small_scenario, small_tree):
        with pytest.raises(ConfigurationError):
            PipelinedTagScheme(
                small_scenario.deployment,
                small_tree,
                CountAggregate(),
                attempts=0,
            )
