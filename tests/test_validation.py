"""Tests for topology auditing (Properties 1 and 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.modes import Mode
from repro.core.validation import (
    LabelledTopology,
    audit,
    delta_region_is_sink_closed,
    edge_correctness_violations,
    is_edge_correct,
    is_path_correct,
    path_correctness_violations,
    topology_of_td_graph,
)

T, M = Mode.TREE, Mode.MULTIPATH


class TestEdgeCorrectness:
    def test_detects_m_edge_into_t(self):
        topology = LabelledTopology.build([(1, 2)], {1: M, 2: T})
        assert edge_correctness_violations(topology) == [(1, 2)]
        assert not is_edge_correct(topology)

    def test_t_into_m_is_fine(self):
        topology = LabelledTopology.build([(1, 2)], {1: T, 2: M})
        assert is_edge_correct(topology)

    def test_figure3_topology_is_correct(self):
        # The paper's Figure 3: T1..T5 tree vertices feeding M1..M4.
        modes = {f"T{i}": T for i in range(1, 6)} | {f"M{i}": M for i in range(1, 5)}
        edges = [
            ("T4", "T2"),
            ("T5", "T2"),
            ("T2", "T1"),
            ("T3", "T1"),
            ("T1", "M3"),
            ("M1", "M3"),
            ("M2", "M3"),
            ("M3", "M4"),
        ]
        topology = LabelledTopology.build(edges, modes)
        assert is_edge_correct(topology)
        assert is_path_correct(topology)


class TestPathCorrectness:
    def test_detects_t_after_m(self):
        topology = LabelledTopology.build(
            [(1, 2), (2, 3)], {1: M, 2: T, 3: T}
        )
        violations = path_correctness_violations(topology)
        assert violations == [((1, 2), (2, 3))]
        assert not is_path_correct(topology)

    def test_edge_correct_implies_path_correct(self):
        # Property 1 => Property 2 (the easy direction of the equivalence).
        topology = LabelledTopology.build(
            [(1, 2), (2, 3), (3, 0), (4, 3)], {0: M, 1: T, 2: T, 3: M, 4: M}
        )
        assert is_edge_correct(topology)
        assert is_path_correct(topology)


class TestAudit:
    def test_clean_report(self):
        topology = LabelledTopology.build([(1, 0)], {0: M, 1: T})
        report = audit(topology)
        assert report.correct
        assert "OK" in report.render()

    def test_dirty_report_lists_violations(self):
        topology = LabelledTopology.build([(1, 2)], {1: M, 2: T})
        report = audit(topology)
        assert not report.correct
        assert "incident on T vertex" in report.render()

    def test_sink_closure(self):
        good = LabelledTopology.build([(1, 0)], {0: T, 1: M})
        assert delta_region_is_sink_closed(good, base_station=0)
        bad = LabelledTopology.build([(1, 2)], {1: M, 2: T})
        assert not delta_region_is_sink_closed(bad, base_station=0)


class TestTDGraphExtraction:
    def test_every_reachable_configuration_audits_clean(
        self, small_scenario, small_tree
    ):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        report = audit(topology_of_td_graph(graph))
        assert report.correct

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 999)), max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_random_switch_sequences_stay_correct(
        self, small_scenario, small_tree, moves
    ):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 0),
        )
        for expand, pick in moves:
            candidates = (
                graph.switchable_t_nodes() if expand else graph.switchable_m_nodes()
            )
            if not candidates:
                continue
            node = candidates[pick % len(candidates)]
            if expand:
                graph.switch_to_multipath(node)
            else:
                graph.switch_to_tree(node)
        report = audit(topology_of_td_graph(graph))
        assert report.correct
        assert report.delta_sink_closed


class TestRepair:
    def test_correct_topology_unchanged(self):
        from repro.core.validation import repair

        topology = LabelledTopology.build([(2, 1), (1, 0)], {0: M, 1: M, 2: T})
        repaired, promoted = repair(topology)
        assert promoted == []
        assert repaired is topology

    def test_single_violation_promoted(self):
        from repro.core.validation import repair

        topology = LabelledTopology.build([(1, 2)], {1: M, 2: T})
        repaired, promoted = repair(topology)
        assert promoted == [2]
        assert is_edge_correct(repaired)
        assert is_path_correct(repaired)

    def test_promotion_cascades_along_paths(self):
        from repro.core.validation import repair

        # M at the leaf; the whole chain to the sink must promote.
        topology = LabelledTopology.build(
            [(3, 2), (2, 1), (1, 0)], {3: M, 2: T, 1: T, 0: T}
        )
        repaired, promoted = repair(topology)
        assert promoted == [0, 1, 2]
        assert is_edge_correct(repaired)

    def test_branches_not_reachable_from_m_stay_tree(self):
        from repro.core.validation import repair

        # 4 -> 1 is a pure-T branch; only the M-reachable chain promotes.
        topology = LabelledTopology.build(
            [(3, 2), (2, 1), (4, 1), (1, 0)],
            {3: M, 2: T, 4: T, 1: T, 0: M},
        )
        repaired, promoted = repair(topology)
        assert 4 not in promoted
        assert set(promoted) == {1, 2}
        assert is_edge_correct(repaired)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_repair_always_restores_both_properties(self, data):
        from repro.core.validation import repair

        num_nodes = data.draw(st.integers(min_value=2, max_value=10))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, num_nodes - 1),
                    st.integers(0, num_nodes - 1),
                ).filter(lambda edge: edge[0] != edge[1]),
                max_size=20,
            )
        )
        modes = {
            node: data.draw(st.sampled_from([T, M]), label=f"mode{node}")
            for node in range(num_nodes)
        }
        topology = LabelledTopology.build(edges, modes)
        repaired, promoted = repair(topology)
        assert is_edge_correct(repaired)
        assert is_path_correct(repaired)
        # Promotions only ever add M labels.
        for node in promoted:
            assert topology.modes[node].is_tree
            assert repaired.modes[node].is_multipath
