"""Tests for the Tree value type."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.tree.structure import Tree


@pytest.fixture()
def sample_tree():
    #        0
    #      /   \
    #     1     2
    #    / \     \
    #   3   4     5
    #  /
    # 6
    return Tree(parents={1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 3})


@st.composite
def random_trees(draw):
    """Random parent maps: node i attaches to a previous node."""
    size = draw(st.integers(min_value=1, max_value=40))
    parents = {}
    for node in range(1, size + 1):
        parents[node] = draw(st.integers(min_value=0, max_value=node - 1))
    return Tree(parents=parents)


class TestValidation:
    def test_rejects_cycle(self):
        with pytest.raises(TopologyError):
            Tree(parents={1: 2, 2: 1})

    def test_rejects_root_with_parent(self):
        with pytest.raises(TopologyError):
            Tree(parents={0: 1, 1: 0}, root=0)

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError):
            Tree(parents={1: 0, 3: 9})


class TestAccessors:
    def test_nodes_and_size(self, sample_tree):
        assert sample_tree.nodes == [0, 1, 2, 3, 4, 5, 6]
        assert sample_tree.size == 7

    def test_parent(self, sample_tree):
        assert sample_tree.parent(3) == 1
        assert sample_tree.parent(0) is None

    def test_children(self, sample_tree):
        assert sample_tree.children(1) == [3, 4]
        assert sample_tree.children(6) == []

    def test_is_leaf(self, sample_tree):
        assert sample_tree.is_leaf(6)
        assert not sample_tree.is_leaf(1)


class TestDerived:
    def test_levels(self, sample_tree):
        levels = sample_tree.levels()
        assert levels[0] == 0
        assert levels[1] == levels[2] == 1
        assert levels[6] == 3

    def test_heights_match_paper_definition(self, sample_tree):
        heights = sample_tree.heights()
        assert heights[6] == 1  # leaf
        assert heights[3] == 2
        assert heights[1] == 3
        assert heights[2] == 2
        assert heights[0] == 4

    def test_height_property(self, sample_tree):
        assert sample_tree.height == 4

    def test_subtree_sizes(self, sample_tree):
        sizes = sample_tree.subtree_sizes()
        assert sizes[0] == 7
        assert sizes[1] == 4
        assert sizes[6] == 1

    def test_subtree_nodes(self, sample_tree):
        assert sample_tree.subtree_nodes(1) == [1, 3, 4, 6]

    def test_postorder_children_first(self, sample_tree):
        order = sample_tree.postorder()
        position = {node: i for i, node in enumerate(order)}
        for child, parent in sample_tree.parents.items():
            assert position[child] < position[parent]

    def test_with_parent(self, sample_tree):
        moved = sample_tree.with_parent(6, 4)
        assert moved.parent(6) == 4
        assert sample_tree.parent(6) == 3  # original untouched

    def test_with_parent_rejects_root(self, sample_tree):
        with pytest.raises(TopologyError):
            sample_tree.with_parent(0, 1)


class TestProperties:
    @given(random_trees())
    def test_heights_consistent(self, tree):
        heights = tree.heights()
        children = tree.children_map()
        for node in tree.nodes:
            kids = children[node]
            if not kids:
                assert heights[node] == 1
            else:
                assert heights[node] == 1 + max(heights[k] for k in kids)

    @given(random_trees())
    def test_subtree_sizes_sum(self, tree):
        sizes = tree.subtree_sizes()
        assert sizes[tree.root] == tree.size

    @given(random_trees())
    def test_postorder_is_permutation(self, tree):
        assert sorted(tree.postorder()) == tree.nodes

    @given(random_trees())
    def test_h_profile_non_increasing(self, tree):
        from repro.tree.domination import height_profile

        profile = height_profile(tree)
        for lower, higher in zip(profile, profile[1:]):
            assert lower >= higher
