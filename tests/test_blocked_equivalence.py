"""The blocked-vs-per-epoch invariant: epoch blocking is bit-identical.

The epoch-blocked engine (``DeliveryPlan`` -> ``Channel.transmit_epochs``
-> scheme ``run_epochs`` -> ``EpochSimulator(use_blocked=True)``) hoists
delivery draws and local-synopsis construction out of the per-epoch loop —
it must never change a single draw or byte of output. These tests pin
blocked and per-epoch runs to identical delivery sets, transmission logs,
per-node load maps and estimates across seeds, loss rates (including the 0
and 1 edge cases), retransmission counts, adaptation intervals (0 = one
big block, 1 = a plan per epoch, 10 = the paper's cadence), warm-up
epochs, and failure schedules that change loss *inside* a block.
"""

from __future__ import annotations

import itertools

import pytest

from repro.aggregates.count import CountAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.adaptation import TDCoarsePolicy, TDFinePolicy
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings, UniformReadings
from repro.errors import ConfigurationError
from repro.multipath.fm import FMSketch, counted_sketches, words_batch
from repro.network.failures import FailureSchedule, GlobalLoss, RegionalLoss
from repro.network.links import Channel, Transmission
from repro.network.placement import grid_random_placement
from repro.network.simulator import EpochSimulator, gather_readings
from repro.tree.construction import build_bushy_tree

SEEDS = (0, 3)
LOSS_RATES = (0.0, 0.3, 1.0)
ADAPT_INTERVALS = (0, 1, 10)

#: A schedule whose loss changes in the middle of any multi-epoch block
#: starting at epoch 50 (the runs below span epochs 50..61).
MID_BLOCK_SCHEDULE = FailureSchedule(
    [
        (0, GlobalLoss(0.0)),
        (54, RegionalLoss(0.4, 0.1)),
        (58, GlobalLoss(0.8)),
        (61, GlobalLoss(1.0)),
    ]
)


def build_scheme_set(scenario, tree, aggregate_factory, attempts=1):
    """The four paper schemes, with fresh (stateful) adaptation policies."""
    schemes = {
        "TAG": TagScheme(
            scenario.deployment, tree, aggregate_factory(), attempts=attempts
        ),
        "SD": SynopsisDiffusionScheme(
            scenario.deployment,
            scenario.rings,
            aggregate_factory(),
            attempts=attempts,
        ),
    }
    for name, level, policy in (
        ("TD-Coarse", 1, TDCoarsePolicy(threshold=0.9)),
        ("TD", 2, TDFinePolicy(threshold=0.9)),
    ):
        graph = TDGraph(
            scenario.rings, tree, initial_modes_by_level(scenario.rings, level)
        )
        schemes[name] = TributaryDeltaScheme(
            scenario.deployment,
            graph,
            aggregate_factory(),
            policy=policy,
            tree_attempts=attempts,
            multipath_attempts=attempts,
            name=name,
        )
    return schemes


def assert_runs_identical(run_blocked, run_per_epoch, context):
    assert run_blocked.estimates == run_per_epoch.estimates, context
    assert [r.epoch for r in run_blocked.epochs] == [
        r.epoch for r in run_per_epoch.epochs
    ], context
    assert [r.log for r in run_blocked.epochs] == [
        r.log for r in run_per_epoch.epochs
    ], context
    assert [r.contributing for r in run_blocked.epochs] == [
        r.contributing for r in run_per_epoch.epochs
    ], context
    assert [r.contributing_estimate for r in run_blocked.epochs] == [
        r.contributing_estimate for r in run_per_epoch.epochs
    ], context


class TestDeliveryPlan:
    """Channel-level: planned outcomes reproduce transmit_batch exactly."""

    @pytest.fixture(scope="class")
    def deployment(self):
        return grid_random_placement(40, seed=3)

    def _transmissions(self, deployment, attempts):
        nodes = deployment.sensor_ids
        return [
            Transmission(
                sender=node,
                receivers=tuple(nodes[(node % 7) : (node % 7) + 4]),
                words=node % 5,
                messages=1 + node % 2,
                attempts=attempts,
            )
            for node in nodes[:25]
        ]

    @pytest.mark.parametrize(
        "seed,loss,attempts",
        list(itertools.product(SEEDS, LOSS_RATES, (1, 3))),
    )
    def test_plan_matches_transmit_batch(self, deployment, seed, loss, attempts):
        batch = Channel(deployment, GlobalLoss(loss), seed=seed)
        planned = Channel(deployment, GlobalLoss(loss), seed=seed)
        transmissions = self._transmissions(deployment, attempts)
        epochs = list(range(100, 106))
        plan = planned.plan_epochs([transmissions], epochs)
        for epoch in epochs:
            expected = batch.transmit_batch(transmissions, epoch)
            assert planned.transmit_epochs(transmissions, epoch, plan, 0) == expected
        assert planned.log == batch.log
        assert planned.per_node_words() == batch.per_node_words()
        assert planned.per_node_messages() == batch.per_node_messages()

    def test_plan_resolves_schedule_per_epoch(self, deployment):
        """A loss change mid-plan is drawn epoch by epoch, like per-epoch."""
        batch = Channel(deployment, MID_BLOCK_SCHEDULE, seed=7)
        planned = Channel(deployment, MID_BLOCK_SCHEDULE, seed=7)
        transmissions = self._transmissions(deployment, attempts=2)
        epochs = list(range(50, 64))  # spans all three schedule transitions
        plan = planned.plan_epochs([transmissions], epochs)
        for epoch in epochs:
            assert planned.transmit_epochs(
                transmissions, epoch, plan, 0
            ) == batch.transmit_batch(transmissions, epoch)

    def test_stale_plan_rejected_after_model_swap(self, deployment):
        channel = Channel(deployment, GlobalLoss(0.2), seed=1)
        transmissions = self._transmissions(deployment, attempts=1)
        plan = channel.plan_epochs([transmissions], [0, 1])
        channel.set_failure_model(GlobalLoss(0.5))
        with pytest.raises(ConfigurationError):
            channel.transmit_epochs(transmissions, 0, plan, 0)

    def test_diverged_schedule_rejected(self, deployment):
        channel = Channel(deployment, GlobalLoss(0.2), seed=1)
        transmissions = self._transmissions(deployment, attempts=1)
        plan = channel.plan_epochs([transmissions], [0, 1])
        altered = list(transmissions)
        altered[0] = Transmission(
            altered[0].sender, altered[0].receivers[:-1], 0, 1, 1
        )
        with pytest.raises(ConfigurationError):
            channel.transmit_epochs(altered, 0, plan, 0)

    def test_epoch_outside_block_rejected(self, deployment):
        channel = Channel(deployment, GlobalLoss(0.2), seed=1)
        transmissions = self._transmissions(deployment, attempts=1)
        plan = channel.plan_epochs([transmissions], [0, 1])
        with pytest.raises(ConfigurationError):
            channel.transmit_epochs(transmissions, 5, plan, 0)


class TestBlockedRuns:
    """Simulator-level: use_blocked=True is byte-identical to the loop."""

    @pytest.mark.parametrize(
        "seed,loss,adapt_interval",
        list(itertools.product(SEEDS, LOSS_RATES, ADAPT_INTERVALS)),
    )
    def test_count_runs_identical(
        self, small_scenario, small_tree, seed, loss, adapt_interval
    ):
        readings = ConstantReadings(1.0)
        blocked = build_scheme_set(small_scenario, small_tree, CountAggregate)
        per_epoch = build_scheme_set(small_scenario, small_tree, CountAggregate)
        for name in blocked:
            run_blocked = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(loss),
                blocked[name],
                seed=seed,
                adapt_interval=adapt_interval,
                use_blocked=True,
            ).run(12, readings, start_epoch=50, warmup=3)
            run_loop = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(loss),
                per_epoch[name],
                seed=seed,
                adapt_interval=adapt_interval,
                use_blocked=False,
            ).run(12, readings, start_epoch=50, warmup=3)
            assert_runs_identical(
                run_blocked, run_loop, (name, seed, loss, adapt_interval)
            )

    @pytest.mark.parametrize("adapt_interval", ADAPT_INTERVALS)
    def test_sum_with_retransmissions(
        self, small_scenario, small_tree, adapt_interval
    ):
        readings = UniformReadings(1, 40, seed=5)
        blocked = build_scheme_set(
            small_scenario, small_tree, SumAggregate, attempts=3
        )
        per_epoch = build_scheme_set(
            small_scenario, small_tree, SumAggregate, attempts=3
        )
        for name in blocked:
            run_blocked = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.25),
                blocked[name],
                seed=4,
                adapt_interval=adapt_interval,
                use_blocked=True,
            ).run(8, readings, start_epoch=30)
            run_loop = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.25),
                per_epoch[name],
                seed=4,
                adapt_interval=adapt_interval,
                use_blocked=False,
            ).run(8, readings, start_epoch=30)
            assert_runs_identical(run_blocked, run_loop, (name, adapt_interval))

    @pytest.mark.parametrize("adapt_interval", ADAPT_INTERVALS)
    def test_schedule_changes_loss_mid_block(
        self, small_scenario, small_tree, adapt_interval
    ):
        """A FailureSchedule transition inside a block must not leak across
        epochs: every column of the plan is drawn against its own epoch's
        model, exactly like the per-epoch loop."""
        readings = UniformReadings(1, 40, seed=2)
        blocked = build_scheme_set(small_scenario, small_tree, SumAggregate)
        per_epoch = build_scheme_set(small_scenario, small_tree, SumAggregate)
        for name in blocked:
            run_blocked = EpochSimulator(
                small_scenario.deployment,
                MID_BLOCK_SCHEDULE,
                blocked[name],
                seed=1,
                adapt_interval=adapt_interval,
                use_blocked=True,
            ).run(12, readings, start_epoch=50, warmup=2)
            run_loop = EpochSimulator(
                small_scenario.deployment,
                MID_BLOCK_SCHEDULE,
                per_epoch[name],
                seed=1,
                adapt_interval=adapt_interval,
                use_blocked=False,
            ).run(12, readings, start_epoch=50, warmup=2)
            assert_runs_identical(run_blocked, run_loop, (name, adapt_interval))

    def test_adaptation_decisions_identical(self, small_scenario, small_tree):
        """Blocked adaptation fires at the same epochs with the same actions."""
        readings = ConstantReadings(1.0)
        results = []
        for use_blocked in (True, False):
            schemes = build_scheme_set(small_scenario, small_tree, CountAggregate)
            scheme = schemes["TD"]
            EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.4),
                scheme,
                seed=6,
                adapt_interval=5,
                use_blocked=use_blocked,
            ).run(20, readings, warmup=5)
            results.append(
                (scheme.adaptation_log, scheme.control_messages)
            )
        assert results[0] == results[1]

    def test_per_node_load_maps_identical(self, small_scenario, small_tree):
        readings = ConstantReadings(1.0)
        channels = []
        for use_blocked in (True, False):
            scheme = SynopsisDiffusionScheme(
                small_scenario.deployment, small_scenario.rings, CountAggregate()
            )
            simulator = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.3),
                scheme,
                seed=2,
                adapt_interval=0,
                use_blocked=use_blocked,
            )
            simulator.run(5, readings)
            channels.append(simulator.channel)
        assert channels[0].per_node_words() == channels[1].per_node_words()
        assert (
            channels[0].per_node_messages() == channels[1].per_node_messages()
        )

    def test_single_epoch_blocks_identical(self, small_scenario, small_tree):
        """run_epochs with one-epoch blocks reproduces run_epoch exactly.

        The simulator avoids one-epoch blocks for speed (adapt_interval=1
        keeps the per-epoch loop), but schemes must still be correct there —
        tail blocks of odd spans degenerate to this case.
        """
        from repro.network.links import Channel

        readings = UniformReadings(1, 40, seed=3)
        blocked = build_scheme_set(small_scenario, small_tree, SumAggregate)
        reference = build_scheme_set(small_scenario, small_tree, SumAggregate)
        for name in blocked:
            chan_a = Channel(small_scenario.deployment, GlobalLoss(0.3), seed=8)
            chan_b = Channel(small_scenario.deployment, GlobalLoss(0.3), seed=8)
            for epoch in range(20, 24):
                [(outcome_a, log_a)] = blocked[name].run_epochs(
                    [epoch], chan_a, readings
                )
                chan_b.reset_log()
                outcome_b = reference[name].run_epoch(epoch, chan_b, readings)
                log_b = chan_b.reset_log()
                assert outcome_a.estimate == outcome_b.estimate, (name, epoch)
                assert outcome_a.contributing == outcome_b.contributing
                assert log_a == log_b, (name, epoch)

    def test_scheme_without_run_epochs_falls_back(self, small_scenario):
        """Blocked mode silently keeps the per-epoch loop for plain schemes."""

        class MinimalScheme:
            name = "minimal"

            def run_epoch(self, epoch, channel, readings):
                from repro.network.simulator import EpochOutcome

                return EpochOutcome(1.0, 1, 1.0)

            def exact_answer(self, epoch, readings):
                return 1.0

            def adapt(self, epoch, outcome):
                pass

        run = EpochSimulator(
            small_scenario.deployment,
            GlobalLoss(0.3),
            MinimalScheme(),
            use_blocked=True,
        ).run(3, ConstantReadings(1.0))
        assert run.estimates == [1.0, 1.0, 1.0]


class TestVectorizedHelpers:
    """The new batch helpers are bit-identical to their scalar twins."""

    def test_counted_sketches_match_insert_count(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            num_bitmaps = rng.choice((1, 8, 40))
            bits = rng.choice((4, 16, 32))
            size = rng.randrange(0, 30)
            nodes = [rng.randrange(600) for _ in range(size)]
            epochs = [rng.randrange(1000) for _ in range(size)]
            counts = [
                rng.choice((0, 1, 3, 47, 48, 49, 100, 511, 512, 513, 800))
                for _ in range(size)
            ]
            batch = counted_sketches(
                num_bitmaps, bits, ("sum",), counts, nodes, epochs
            )
            for index in range(size):
                scalar = FMSketch(num_bitmaps, bits)
                scalar.insert_count(
                    counts[index], "sum", nodes[index], epochs[index]
                )
                assert batch[index] == scalar

    def test_words_batch_matches_scalar_walk(self):
        import random

        rng = random.Random(1)
        boundary = [0, 1, 2, 3, (1 << 31) - 1, 1 << 31, (1 << 31) + 1,
                    (1 << 32) - 1, (1 << 32) - 2]
        for _ in range(50):
            num_bitmaps = rng.choice((1, 8, 40))
            sketches = []
            for _ in range(4):
                bitmaps = [
                    rng.choice(boundary)
                    if rng.random() < 0.4
                    else rng.randrange(1 << 32)
                    for _ in range(num_bitmaps)
                ]
                sketches.append(FMSketch(num_bitmaps, 32, bitmaps))
            assert words_batch(sketches) == [s.words() for s in sketches]
        # Non-32-bit shapes take the scalar fallback but stay identical.
        narrow = [
            FMSketch(8, 16, [rng.randrange(1 << 16) for _ in range(8)])
            for _ in range(5)
        ]
        assert words_batch(narrow) == [s.words() for s in narrow]

    def test_estimate_table_matches_direct_formula(self):
        from repro.multipath.fm import PHI, _KAPPA

        sketch = FMSketch(5, 8)
        for item in range(200):
            sketch.insert("x", item)
        total = sum(sketch._lowest_zero(b) for b in sketch._iter_bitmaps())
        mean_r = total / sketch.num_bitmaps
        corrected = 2.0**mean_r - 2.0 ** (-_KAPPA * mean_r)
        expected = max(0.0, sketch.num_bitmaps / PHI * corrected)
        assert sketch.estimate() == expected

    def test_reading_batch_matches_scalar(self):
        nodes = list(range(0, 90, 2))
        for readings in (ConstantReadings(2.5), UniformReadings(3, 77, seed=9)):
            for epoch in (0, 17, 1000):
                assert gather_readings(readings, nodes, epoch) == [
                    readings(node, epoch) for node in nodes
                ]

    def test_gather_readings_plain_callable(self):
        assert gather_readings(lambda node, epoch: node + epoch, [1, 2], 10) == [
            11,
            12,
        ]
