"""Tests for network-lifetime prediction."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.count import CountAggregate
from repro.core.tag_scheme import TagScheme
from repro.datasets.streams import ConstantReadings
from repro.errors import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.failures import NoLoss
from repro.network.lifetime import (
    LifetimeReport,
    MoteEnergyModel,
    lifetime_from_run,
    predict_lifetimes,
)
from repro.network.simulator import EpochSimulator


class TestMoteEnergyModel:
    def test_epoch_cost_composes(self):
        model = MoteEnergyModel(
            transmit=EnergyModel(per_message_uj=20.0, per_byte_uj=1.0),
            receive_per_message_uj=8.0,
            listen_per_epoch_uj=30.0,
            cpu_per_epoch_uj=0.05,
        )
        # 1 message of 2 words (8 bytes) + 3 receptions + listen + cpu.
        expected = (20.0 + 8.0) + 3 * 8.0 + 30.0 + 0.05
        assert model.epoch_cost_uj(1, 2, 3) == pytest.approx(expected)

    def test_communication_dominates_cpu(self):
        """The paper's premise, encoded in the defaults."""
        model = MoteEnergyModel()
        message_cost = model.transmit.transmission_cost(1, 2)
        assert message_cost > 100 * model.cpu_per_epoch_uj

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MoteEnergyModel(receive_per_message_uj=-1.0)


class TestPredictLifetimes:
    def test_basic_division(self):
        report = predict_lifetimes({1: 100.0, 2: 50.0}, battery_j=1.0)
        assert report.epochs_by_node[1] == pytest.approx(1e6 / 100.0)
        assert report.epochs_by_node[2] == pytest.approx(1e6 / 50.0)
        assert report.first_death_epochs == report.epochs_by_node[1]
        assert report.last_death_epochs == report.epochs_by_node[2]

    def test_idle_node_lives_forever(self):
        report = predict_lifetimes({1: 0.0}, battery_j=1.0)
        assert math.isinf(report.epochs_by_node[1])

    def test_fraction_dead(self):
        report = predict_lifetimes(
            {1: 100.0, 2: 50.0, 3: 25.0, 4: 10.0}, battery_j=1.0
        )
        assert report.epochs_to_fraction_dead(0.25) == report.first_death_epochs
        assert report.epochs_to_fraction_dead(1.0) == report.last_death_epochs
        with pytest.raises(ConfigurationError):
            report.epochs_to_fraction_dead(0.0)

    def test_alive_fraction_monotone(self):
        report = predict_lifetimes(
            {node: 10.0 * (node + 1) for node in range(10)}, battery_j=1.0
        )
        probes = [report.alive_fraction(t) for t in (0, 1e4, 2e4, 1e5, 1e9)]
        assert probes == sorted(probes, reverse=True)
        assert probes[0] == 1.0

    def test_hotspots_are_heaviest_spenders(self):
        report = predict_lifetimes(
            {1: 10.0, 2: 500.0, 3: 20.0}, battery_j=1.0
        )
        assert report.hotspots(1) == [(2, pytest.approx(1e6 / 500.0))]

    def test_render(self):
        report = predict_lifetimes({1: 100.0}, battery_j=2.0)
        text = report.render()
        assert "first death" in text
        assert "hotspots" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predict_lifetimes({1: 1.0}, battery_j=0.0)
        with pytest.raises(ConfigurationError):
            predict_lifetimes({1: -5.0})

    @given(
        rates=st.dictionaries(
            st.integers(min_value=1, max_value=50),
            st.floats(min_value=0.1, max_value=1e4),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_first_death_below_last_death(self, rates):
        report = predict_lifetimes(rates, battery_j=5.0)
        assert report.first_death_epochs <= report.last_death_epochs


class TestLifetimeFromRun:
    def test_from_tag_run(self, small_scenario, small_tree):
        scheme = TagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), scheme, seed=0
        )
        epochs = 20
        run = simulator.run(epochs, ConstantReadings(1.0))
        report = lifetime_from_run(run, epochs, battery_j=5.0)
        assert len(report.epochs_by_node) == small_scenario.deployment.num_sensors
        assert 0 < report.first_death_epochs < math.inf

    def test_retransmissions_shorten_lifetime(self, small_scenario, small_tree):
        def run_with(attempts):
            scheme = TagScheme(
                small_scenario.deployment,
                small_tree,
                CountAggregate(),
                attempts=attempts,
            )
            simulator = EpochSimulator(
                small_scenario.deployment, NoLoss(), scheme, seed=0
            )
            run = simulator.run(20, ConstantReadings(1.0))
            return lifetime_from_run(run, 20, battery_j=5.0)

        assert (
            run_with(3).first_death_epochs < run_with(1).first_death_epochs
        )

    def test_validation(self, small_scenario, small_tree):
        scheme = TagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), scheme, seed=0
        )
        run = simulator.run(5, ConstantReadings(1.0))
        with pytest.raises(ConfigurationError):
            lifetime_from_run(run, 0)
