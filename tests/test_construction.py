"""Tests for tree construction (TAG baseline and the bushy builder)."""

from __future__ import annotations

import pytest

from repro.network.placement import BASE_STATION
from repro.tree.construction import build_bushy_tree, build_tag_tree
from repro.tree.domination import domination_factor
from repro.tree.structure import Tree


class TestBushyTree:
    def test_spans_all_nodes(self, small_scenario, small_tree):
        assert set(small_tree.nodes) == set(small_scenario.rings.levels)

    def test_links_subset_of_rings(self, small_scenario, small_tree):
        # The synchronisation constraint of Section 4.1: every tree parent
        # is a radio neighbour exactly one ring closer to the base station.
        rings = small_scenario.rings
        for child, parent in small_tree.parents.items():
            assert rings.level(child) == rings.level(parent) + 1
            assert parent in rings.upstream_neighbors(child)

    def test_deterministic(self, small_scenario):
        a = build_bushy_tree(small_scenario.rings, seed=4)
        b = build_bushy_tree(small_scenario.rings, seed=4)
        assert a.parents == b.parents

    def test_rooted_at_base_station(self, small_tree):
        assert small_tree.root == BASE_STATION

    def test_improves_over_tag(self, medium_scenario):
        # Figure 7's claim, statistically: the bushy construction reaches a
        # domination factor at least as high as the standard construction.
        rings = medium_scenario.rings
        ours = [
            domination_factor(build_bushy_tree(rings, seed=s)) for s in range(3)
        ]
        tag = [
            domination_factor(build_tag_tree(rings, seed=s)) for s in range(3)
        ]
        assert sum(ours) / 3 > sum(tag) / 3


class TestTagTree:
    def test_spans_all_nodes(self, small_scenario):
        tree = build_tag_tree(small_scenario.rings, seed=0)
        assert set(tree.nodes) == set(small_scenario.rings.levels)

    def test_acyclic_with_same_level_parents(self, medium_scenario):
        # Construction must stay a valid tree even with same-level links
        # (Tree.__post_init__ would raise on a cycle).
        for seed in range(5):
            tree = build_tag_tree(medium_scenario.rings, seed=seed)
            assert tree.size == len(medium_scenario.rings.levels)

    def test_contains_same_level_links(self, medium_scenario):
        rings = medium_scenario.rings
        tree = build_tag_tree(rings, seed=1, same_level_fraction=0.4)
        same_level = sum(
            1
            for child, parent in tree.parents.items()
            if rings.level(child) == rings.level(parent)
        )
        assert same_level > 0

    def test_zero_fraction_is_strict_upstream(self, small_scenario):
        rings = small_scenario.rings
        tree = build_tag_tree(rings, seed=1, same_level_fraction=0.0)
        for child, parent in tree.parents.items():
            assert rings.level(child) == rings.level(parent) + 1
