"""Tests for the Mode enum and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.modes import Mode
from repro.errors import (
    ConfigurationError,
    CorrectnessError,
    ReproError,
    SketchError,
    TopologyError,
)


class TestMode:
    def test_values(self):
        assert str(Mode.TREE) == "T"
        assert str(Mode.MULTIPATH) == "M"

    def test_predicates(self):
        assert Mode.TREE.is_tree
        assert not Mode.TREE.is_multipath
        assert Mode.MULTIPATH.is_multipath
        assert not Mode.MULTIPATH.is_tree

    def test_round_trip(self):
        assert Mode("T") is Mode.TREE
        assert Mode("M") is Mode.MULTIPATH


class TestErrors:
    @pytest.mark.parametrize(
        "error", [ConfigurationError, CorrectnessError, SketchError, TopologyError]
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_catchable_individually(self):
        with pytest.raises(SketchError):
            raise SketchError("sketch")
