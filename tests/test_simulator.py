"""Tests for the epoch simulator and run bookkeeping."""

from __future__ import annotations

import pytest

from repro.aggregates.count import CountAggregate
from repro.core.tag_scheme import TagScheme
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.datasets.streams import ConstantReadings
from repro.errors import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.simulator import EpochSimulator


@pytest.fixture()
def tag(small_scenario, small_tree):
    return TagScheme(small_scenario.deployment, small_tree, CountAggregate())


class TestRun:
    def test_epoch_records(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), tag, adapt_interval=0
        )
        run = simulator.run(5, ConstantReadings(1.0))
        assert len(run.epochs) == 5
        assert run.scheme_name == "TAG"
        assert all(r.true_value == 60 for r in run.epochs)

    def test_warmup_not_recorded(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), tag, adapt_interval=0
        )
        run = simulator.run(3, ConstantReadings(1.0), warmup=4)
        assert len(run.epochs) == 3
        assert run.epochs[0].epoch == 4  # warm-up epochs advanced the clock

    def test_rms_error_zero_when_exact(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), tag, adapt_interval=0
        )
        run = simulator.run(5, ConstantReadings(1.0))
        assert run.rms_error() == 0.0

    def test_rms_error_positive_under_loss(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, GlobalLoss(0.3), tag, adapt_interval=0
        )
        run = simulator.run(5, ConstantReadings(1.0))
        assert run.rms_error() > 0.0

    def test_paired_runs_identical(self, small_scenario, small_tree):
        results = []
        for _ in range(2):
            scheme = TagScheme(
                small_scenario.deployment, small_tree, CountAggregate()
            )
            simulator = EpochSimulator(
                small_scenario.deployment, GlobalLoss(0.25), scheme, seed=9,
                adapt_interval=0,
            )
            results.append(simulator.run(6, ConstantReadings(1.0)).estimates)
        assert results[0] == results[1]

    def test_negative_epochs_rejected(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), tag, adapt_interval=0
        )
        with pytest.raises(ConfigurationError):
            simulator.run(-1, ConstantReadings(1.0))

    def test_negative_interval_rejected(self, small_scenario, tag):
        with pytest.raises(ConfigurationError):
            EpochSimulator(
                small_scenario.deployment, NoLoss(), tag, adapt_interval=-1
            )


class TestEnergyAccounting:
    def test_energy_report_populated(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment,
            NoLoss(),
            tag,
            adapt_interval=0,
            energy_model=EnergyModel(per_message_uj=10.0, per_byte_uj=1.0),
        )
        run = simulator.run(4, ConstantReadings(1.0))
        sensors = small_scenario.deployment.num_sensors
        assert run.energy.total_messages == 4 * sensors
        assert run.energy.total_uj > 0
        assert run.energy.average_message_words >= 1

    def test_sd_and_tag_message_parity(self, small_scenario, small_tree):
        # Both approaches transmit once per node per epoch (Table 1:
        # "minimal" messages for every scheme).
        tag = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        sd = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        runs = {}
        for name, scheme in (("tag", tag), ("sd", sd)):
            simulator = EpochSimulator(
                small_scenario.deployment, NoLoss(), scheme, adapt_interval=0
            )
            run = simulator.run(2, ConstantReadings(1.0))
            runs[name] = sum(epoch.log.transmissions for epoch in run.epochs)
        assert runs["tag"] == runs["sd"]

    def test_sd_messages_not_smaller_than_tag(self, small_scenario, small_tree):
        tag = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        sd = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        words = {}
        for name, scheme in (("tag", tag), ("sd", sd)):
            simulator = EpochSimulator(
                small_scenario.deployment, NoLoss(), scheme, adapt_interval=0
            )
            run = simulator.run(2, ConstantReadings(1.0))
            words[name] = sum(epoch.log.words_sent for epoch in run.epochs)
        assert words["sd"] >= words["tag"]


class TestMetricsHelpers:
    def test_mean_contributing_fraction(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, NoLoss(), tag, adapt_interval=0
        )
        run = simulator.run(3, ConstantReadings(1.0))
        assert run.mean_contributing_fraction(
            small_scenario.deployment.num_sensors
        ) == pytest.approx(1.0)

    def test_relative_error_property(self, small_scenario, tag):
        simulator = EpochSimulator(
            small_scenario.deployment, GlobalLoss(0.4), tag, adapt_interval=0
        )
        run = simulator.run(4, ConstantReadings(1.0))
        for epoch in run.epochs:
            assert 0.0 <= epoch.relative_error <= 1.0
