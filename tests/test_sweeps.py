"""Tests for the parameter-sweep harness (quick configurations)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweeps import (
    SweepResult,
    sweep_adapt_interval,
    sweep_epsilon_split,
    sweep_expansion_heuristic,
    sweep_threshold,
)


class TestSweepResult:
    def make(self):
        result = SweepResult(
            name="demo", parameter="p", values=[1.0, 2.0, 3.0]
        )
        result.series["metric"] = [0.3, 0.1, 0.2]
        return result

    def test_points(self):
        result = self.make()
        assert result.points("metric") == [(1.0, 0.3), (2.0, 0.1), (3.0, 0.2)]

    def test_best_minimises(self):
        assert self.make().best("metric") == 2.0

    def test_render_includes_table_and_chart(self):
        result = self.make()
        result.notes = "a note"
        text = result.render()
        assert "demo" in text
        assert "metric" in text
        assert "a note" in text
        assert "|" in text  # the chart grid


class TestThresholdSweep:
    def test_quick_sweep_shapes(self):
        result = sweep_threshold(
            values=(0.5, 0.9), loss_rate=0.25, quick=True, seed=1
        )
        assert len(result.series["rms_error"]) == 2
        assert len(result.series["delta_fraction"]) == 2
        # A higher contributing target cannot shrink the delta.
        low, high = result.series["delta_fraction"]
        assert high >= low
        # And should not hurt accuracy under loss.
        assert result.series["rms_error"][1] <= result.series["rms_error"][0] + 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_threshold(values=(0.0,), quick=True)


class TestAdaptIntervalSweep:
    def test_quick_sweep_control_traffic_falls(self):
        result = sweep_adapt_interval(
            values=(1, 20), loss_rate=0.2, quick=True, seed=1
        )
        frequent, rare = result.series["control_messages"]
        assert frequent >= rare
        assert all(rms < 1.0 for rms in result.series["rms_error"])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_adapt_interval(values=(0,), quick=True)


class TestExpansionHeuristicSweep:
    def test_quick_sweep_runs_all_policies(self):
        result = sweep_expansion_heuristic(loss_rate=0.3, quick=True, seed=1)
        assert len(result.series["rms_error"]) == 5
        assert len(result.series["switched_nodes"]) == 5
        # The max/2 cut (index 1) must not expand slower than top-1 (index 0).
        assert (
            result.series["switched_nodes"][1]
            >= result.series["switched_nodes"][0]
        )

    def test_render(self):
        result = sweep_expansion_heuristic(loss_rate=0.3, quick=True, seed=1)
        text = result.render()
        assert "top-1 (paper base)" in text


class TestEpsilonSplitSweep:
    def test_quick_sweep_shapes(self):
        result = sweep_epsilon_split(
            fractions=(0.3, 0.7), quick=True, seed=1
        )
        assert len(result.series["false_negative_rate"]) == 2
        assert all(
            0.0 <= rate <= 1.0 for rate in result.series["false_negative_rate"]
        )
        assert all(words > 0 for words in result.series["words_per_node"])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_epsilon_split(fractions=(1.0,), quick=True)


class TestEpsilonSplitSeparation:
    def test_tree_heavy_split_inflates_delta_payloads(self):
        """The §6.3 trade made visible: starving the multi-path budget
        (large tree fraction) must cost strictly more words per node."""
        result = sweep_epsilon_split(fractions=(0.15, 0.85), quick=True, seed=1)
        light_tree, heavy_tree = result.series["words_per_node"]
        assert heavy_tree > light_tree * 1.3
