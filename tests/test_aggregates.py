"""Tests for the Count/Sum/Min/Max/Average/Sample aggregates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.average import AverageAggregate
from repro.aggregates.base import fuse_all, merge_all
from repro.aggregates.count import CountAggregate
from repro.aggregates.minmax import MaxAggregate, MinAggregate
from repro.aggregates.sample import UniformSampleAggregate, quantile_from_sample
from repro.aggregates.sum_ import SumAggregate
from repro.errors import ConfigurationError

ALL_AGGREGATES = [
    CountAggregate,
    SumAggregate,
    MinAggregate,
    MaxAggregate,
    AverageAggregate,
    UniformSampleAggregate,
]


class TestTreeSide:
    def test_count_tree_exact(self):
        aggregate = CountAggregate()
        partials = [aggregate.tree_local(n, 0, 1.0) for n in range(1, 11)]
        assert aggregate.tree_eval(merge_all(aggregate, partials)) == 10.0

    def test_sum_tree_exact(self):
        aggregate = SumAggregate()
        partials = [aggregate.tree_local(n, 0, n * 2) for n in range(1, 6)]
        assert aggregate.tree_eval(merge_all(aggregate, partials)) == 30.0

    def test_sum_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            SumAggregate().tree_local(1, 0, -3.0)

    def test_min_max(self):
        low, high = MinAggregate(), MaxAggregate()
        values = [5.0, 2.0, 9.0]
        low_partials = [low.tree_local(i, 0, v) for i, v in enumerate(values)]
        high_partials = [high.tree_local(i, 0, v) for i, v in enumerate(values)]
        assert low.tree_eval(merge_all(low, low_partials)) == 2.0
        assert high.tree_eval(merge_all(high, high_partials)) == 9.0

    def test_average_tree_exact(self):
        aggregate = AverageAggregate()
        partials = [aggregate.tree_local(n, 0, v) for n, v in enumerate([2, 4, 6])]
        assert aggregate.tree_eval(merge_all(aggregate, partials)) == 4.0

    @pytest.mark.parametrize("factory", ALL_AGGREGATES)
    def test_tree_words_positive(self, factory):
        aggregate = factory()
        partial = aggregate.tree_local(1, 0, 5.0)
        assert aggregate.tree_words(partial) >= 1


class TestSynopsisSide:
    def test_count_synopsis_estimates(self):
        aggregate = CountAggregate()
        synopses = [aggregate.synopsis_local(n, 0, 1.0) for n in range(1, 301)]
        estimate = aggregate.synopsis_eval(fuse_all(aggregate, synopses))
        assert abs(estimate - 300) / 300 < 0.4

    def test_sum_synopsis_estimates(self):
        aggregate = SumAggregate()
        synopses = [aggregate.synopsis_local(n, 0, 10.0) for n in range(1, 101)]
        estimate = aggregate.synopsis_eval(fuse_all(aggregate, synopses))
        assert abs(estimate - 1000) / 1000 < 0.4

    def test_duplicate_fusion_harmless(self):
        aggregate = CountAggregate()
        synopsis = aggregate.synopsis_local(1, 0, 1.0)
        fused = aggregate.synopsis_fuse(synopsis, synopsis)
        assert aggregate.synopsis_eval(fused) == aggregate.synopsis_eval(synopsis)

    def test_minmax_synopsis_exact(self):
        aggregate = MaxAggregate()
        synopses = [aggregate.synopsis_local(i, 0, v) for i, v in enumerate([1.0, 7.0, 3.0])]
        assert aggregate.synopsis_eval(fuse_all(aggregate, synopses)) == 7.0

    def test_sample_synopsis_uniformity(self):
        aggregate = UniformSampleAggregate(k=16)
        synopses = [
            aggregate.synopsis_local(n, 0, float(n)) for n in range(1, 101)
        ]
        sample = fuse_all(aggregate, synopses)
        assert len(sample.entries) == 16
        # Sampled values are a subset of the inputs.
        assert all(1 <= value <= 100 for value in sample.values())


class TestConversion:
    def test_count_conversion_valid(self):
        aggregate = CountAggregate()
        sketch = aggregate.convert(250, sender=7, epoch=3)
        assert abs(aggregate.synopsis_eval(sketch) - 250) / 250 < 0.4

    def test_sum_conversion_valid(self):
        aggregate = SumAggregate()
        sketch = aggregate.convert(5_000, sender=7, epoch=3)
        assert abs(aggregate.synopsis_eval(sketch) - 5_000) / 5_000 < 0.4

    def test_conversion_deterministic(self):
        aggregate = CountAggregate()
        assert aggregate.convert(42, 1, 2) == aggregate.convert(42, 1, 2)

    def test_minmax_conversion_identity(self):
        assert MinAggregate().convert(3.5, 1, 0) == 3.5

    def test_sample_conversion_identity(self):
        aggregate = UniformSampleAggregate(k=4)
        sample = aggregate.tree_local(1, 0, 2.0)
        assert aggregate.convert(sample, 1, 0) is sample


class TestMixedEval:
    def test_count_mixed(self):
        aggregate = CountAggregate()
        fused = aggregate.synopsis_local(1, 0, 1.0)
        assert aggregate.mixed_eval([40, 60], fused) == pytest.approx(
            100 + fused.estimate()
        )

    def test_count_mixed_no_synopsis(self):
        assert CountAggregate().mixed_eval([40, 60], None) == 100.0

    def test_min_mixed(self):
        aggregate = MinAggregate()
        assert aggregate.mixed_eval([4.0, 2.0], 3.0) == 2.0

    def test_average_mixed_no_synopsis(self):
        aggregate = AverageAggregate()
        assert aggregate.mixed_eval([(10, 2), (20, 3)], None) == pytest.approx(6.0)

    def test_empty_mixed(self):
        assert CountAggregate().mixed_eval([], None) == 0.0


class TestExact:
    @pytest.mark.parametrize(
        "factory,readings,expected",
        [
            (CountAggregate, [1.0, 1.0, 1.0], 3.0),
            (SumAggregate, [1.0, 2.0, 3.0], 6.0),
            (MinAggregate, [4.0, 2.0], 2.0),
            (MaxAggregate, [4.0, 2.0], 4.0),
            (AverageAggregate, [2.0, 4.0], 3.0),
        ],
    )
    def test_exact(self, factory, readings, expected):
        assert factory().exact(readings) == expected


class TestQuantileFromSample:
    def test_median(self):
        aggregate = UniformSampleAggregate(k=200)
        synopses = [
            aggregate.synopsis_local(n, 0, float(n)) for n in range(1, 101)
        ]
        sample = fuse_all(aggregate, synopses)
        median = quantile_from_sample(sample, 0.5)
        assert 1 <= median <= 100

    def test_rejects_bad_phi(self):
        aggregate = UniformSampleAggregate(k=4)
        sample = aggregate.tree_local(1, 0, 2.0)
        with pytest.raises(ConfigurationError):
            quantile_from_sample(sample, 1.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20)
    def test_phi_monotone(self, phi):
        aggregate = UniformSampleAggregate(k=50)
        synopses = [
            aggregate.synopsis_local(n, 0, float(n)) for n in range(1, 51)
        ]
        sample = fuse_all(aggregate, synopses)
        low = quantile_from_sample(sample, 0.0)
        value = quantile_from_sample(sample, phi)
        high = quantile_from_sample(sample, 1.0)
        assert low <= value <= high
