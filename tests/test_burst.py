"""Tests for Gilbert-Elliott bursty loss and node-crash failure models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.burst import (
    CrashWindow,
    GilbertElliottLoss,
    NodeCrashLoss,
    matched_gilbert_elliott,
)
from repro.network.failures import GlobalLoss
from repro.network.links import Channel
from repro.network.placement import placement_from_points


@pytest.fixture()
def deployment():
    return placement_from_points(
        [(2.0, 2.0), (15.0, 15.0), (5.0, 18.0)],
        base_position=(10.0, 10.0),
        width=20,
        height=20,
    )


class TestGilbertElliott:
    def test_deterministic_in_seed(self, deployment):
        a = GilbertElliottLoss(seed=3)
        b = GilbertElliottLoss(seed=3)
        for epoch in range(50):
            assert a.loss_rate(deployment, 1, 2, epoch) == b.loss_rate(
                deployment, 1, 2, epoch
            )

    def test_different_seeds_differ(self, deployment):
        a = GilbertElliottLoss(seed=1, p_enter_bad=0.3, p_exit_bad=0.3)
        b = GilbertElliottLoss(seed=2, p_enter_bad=0.3, p_exit_bad=0.3)
        rates_a = [a.loss_rate(deployment, 1, 2, e) for e in range(100)]
        rates_b = [b.loss_rate(deployment, 1, 2, e) for e in range(100)]
        assert rates_a != rates_b

    def test_non_monotone_epoch_queries_are_consistent(self, deployment):
        model = GilbertElliottLoss(seed=5, p_enter_bad=0.2, p_exit_bad=0.2)
        forward = [model.state(1, 2, e) for e in range(30)]
        # Query backwards and shuffled; must reproduce the same states.
        assert model.state(1, 2, 7) == forward[7]
        assert model.state(1, 2, 29) == forward[29]
        assert model.state(1, 2, 0) == forward[0]

    def test_links_have_independent_chains(self, deployment):
        model = GilbertElliottLoss(seed=0, p_enter_bad=0.4, p_exit_bad=0.4)
        states_12 = [model.state(1, 2, e) for e in range(200)]
        states_13 = [model.state(1, 3, e) for e in range(200)]
        assert states_12 != states_13

    def test_loss_rates_follow_state(self, deployment):
        model = GilbertElliottLoss(
            good_loss=0.1, bad_loss=0.9, p_enter_bad=0.5, p_exit_bad=0.5, seed=1
        )
        for epoch in range(50):
            expected = 0.9 if model.is_bad(1, 2, epoch) else 0.1
            assert model.loss_rate(deployment, 1, 2, epoch) == expected

    def test_stationary_fraction(self):
        model = GilbertElliottLoss(p_enter_bad=0.1, p_exit_bad=0.3)
        assert model.stationary_bad_fraction == pytest.approx(0.25)

    def test_empirical_bad_fraction_near_stationary(self, deployment):
        model = GilbertElliottLoss(p_enter_bad=0.1, p_exit_bad=0.3, seed=11)
        horizon = 3000
        bad = sum(model.is_bad(1, 2, epoch) for epoch in range(horizon))
        assert bad / horizon == pytest.approx(0.25, abs=0.06)

    def test_bursts_are_correlated(self, deployment):
        """Consecutive-epoch states agree far more often than independent
        draws with the same marginal would."""
        model = GilbertElliottLoss(p_enter_bad=0.05, p_exit_bad=0.15, seed=7)
        horizon = 2000
        states = [model.state(1, 2, epoch) for epoch in range(horizon)]
        agreement = sum(
            states[i] == states[i + 1] for i in range(horizon - 1)
        ) / (horizon - 1)
        fraction = sum(states) / horizon
        independent_agreement = fraction**2 + (1 - fraction) ** 2
        assert agreement > independent_agreement + 0.1

    def test_start_bad(self, deployment):
        model = GilbertElliottLoss(start_bad=True, p_enter_bad=0.0, p_exit_bad=0.0)
        assert model.is_bad(1, 2, 0)
        assert model.is_bad(1, 2, 40)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(good_loss=1.5)
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(p_enter_bad=0.2, p_exit_bad=0.0)
        model = GilbertElliottLoss()
        with pytest.raises(ConfigurationError):
            model.state(1, 2, -1)

    def test_works_with_channel(self, deployment):
        model = GilbertElliottLoss(
            good_loss=0.0, bad_loss=1.0, p_enter_bad=0.3, p_exit_bad=0.3, seed=2
        )
        channel = Channel(deployment, model, seed=0)
        outcomes = [channel.delivered(1, 2, epoch) for epoch in range(100)]
        # With good_loss=0 / bad_loss=1, outcomes mirror the chain exactly.
        for epoch, outcome in enumerate(outcomes):
            assert outcome == (not model.is_bad(1, 2, epoch))


class TestMatchedGilbertElliott:
    def test_matches_target_stationary_loss(self):
        model = matched_gilbert_elliott(target_loss=0.3, seed=0)
        assert model.expected_loss_rate == pytest.approx(0.3, abs=1e-9)

    @given(target=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=25, deadline=None)
    def test_matches_across_targets(self, target):
        # Targets above ~0.58 are infeasible for the default burst shape
        # (p_enter_bad would exceed 1); the validation test covers that edge.
        model = matched_gilbert_elliott(target_loss=target)
        assert model.expected_loss_rate == pytest.approx(target, abs=1e-9)

    def test_mean_burst_length_sets_exit_rate(self):
        model = matched_gilbert_elliott(target_loss=0.3, mean_burst_epochs=5.0)
        assert model.p_exit_bad == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            matched_gilbert_elliott(target_loss=0.9, bad_loss=0.8)
        with pytest.raises(ConfigurationError):
            matched_gilbert_elliott(target_loss=0.01, good_loss=0.02)
        with pytest.raises(ConfigurationError):
            matched_gilbert_elliott(target_loss=0.3, mean_burst_epochs=0.0)


class TestCrashWindow:
    def test_contains(self):
        window = CrashWindow(10, 20)
        assert not window.contains(9)
        assert window.contains(10)
        assert window.contains(19)
        assert not window.contains(20)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashWindow(-1, 5)
        with pytest.raises(ConfigurationError):
            CrashWindow(5, 5)


class TestNodeCrashLoss:
    def test_crashed_sender_loses_everything(self, deployment):
        model = NodeCrashLoss.single_window([1], start=5, end=10)
        assert model.loss_rate(deployment, 1, 2, 7) == 1.0
        assert model.loss_rate(deployment, 1, 2, 4) == 0.0
        assert model.loss_rate(deployment, 1, 2, 10) == 0.0

    def test_crashed_receiver_hears_nothing_by_default(self, deployment):
        model = NodeCrashLoss.single_window([2], start=0, end=3)
        assert model.loss_rate(deployment, 1, 2, 1) == 1.0

    def test_receiver_drops_can_be_disabled(self, deployment):
        model = NodeCrashLoss(
            {2: (CrashWindow(0, 3),)}, drop_receptions=False
        )
        assert model.loss_rate(deployment, 1, 2, 1) == 0.0
        assert model.loss_rate(deployment, 2, 1, 1) == 1.0

    def test_base_model_applies_outside_windows(self, deployment):
        model = NodeCrashLoss.single_window(
            [1], start=5, end=10, base=GlobalLoss(0.2)
        )
        assert model.loss_rate(deployment, 1, 2, 0) == 0.2
        assert model.loss_rate(deployment, 1, 2, 7) == 1.0

    def test_crashed_nodes_listing(self, deployment):
        model = NodeCrashLoss(
            {
                3: (CrashWindow(0, 2),),
                1: (CrashWindow(1, 4),),
            }
        )
        assert model.crashed_nodes(0) == (3,)
        assert model.crashed_nodes(1) == (1, 3)
        assert model.crashed_nodes(2) == (1,)
        assert model.crashed_nodes(4) == ()

    def test_multiple_windows_per_node(self, deployment):
        model = NodeCrashLoss({1: (CrashWindow(0, 2), CrashWindow(5, 6))})
        assert model.is_crashed(1, 1)
        assert not model.is_crashed(1, 3)
        assert model.is_crashed(1, 5)
