"""Tests for wire payloads, the synopsis protocol helpers, and energy."""

from __future__ import annotations

import pytest

from repro.core.payloads import MultipathPayload, TreePayload, combine_stats
from repro.multipath.fm import FMSketch
from repro.multipath.synopsis import check_odi, fuse_all
from repro.network.energy import EnergyModel, EnergyReport
from repro.network.links import TransmissionLog


class TestTreePayload:
    def test_extra_words(self):
        payload = TreePayload(partial=5, count=3, contributors=0b111, sender=2)
        assert payload.extra_words() == 1


class TestMultipathPayload:
    def test_extra_words_with_sketch_and_stats(self):
        sketch = FMSketch(8)
        sketch.insert("x")
        payload = MultipathPayload(
            synopsis=None,
            count_sketch=sketch,
            contributors=0,
            missing_stats={1: 4, 2: 0},
        )
        assert payload.extra_words() == sketch.words() + 4

    def test_extra_words_minimal(self):
        payload = MultipathPayload(synopsis=None, count_sketch=None, contributors=0)
        assert payload.extra_words() == 0


class TestCombineStats:
    def test_union(self):
        assert combine_stats({1: 5}, {2: 3}) == {1: 5, 2: 3}

    def test_duplicate_insensitive(self):
        assert combine_stats({1: 5}, {1: 5}) == {1: 5}

    def test_none_handling(self):
        assert combine_stats(None, None) is None
        assert combine_stats({1: 2}, None) == {1: 2}
        assert combine_stats(None, {1: 2}) == {1: 2}

    def test_inputs_not_mutated(self):
        a = {1: 5}
        b = {2: 3}
        combine_stats(a, b)
        assert a == {1: 5}
        assert b == {2: 3}


class TestSynopsisHelpers:
    def test_fuse_all(self):
        class Spec:
            def fuse(self, a, b):
                return a | b

        assert fuse_all(Spec(), [{1}, {2}, {3}]) == {1, 2, 3}

    def test_fuse_all_empty_rejected(self):
        class Spec:
            def fuse(self, a, b):
                return a

        with pytest.raises(ValueError):
            fuse_all(Spec(), [])

    def test_check_odi_detects_non_idempotent(self):
        # Integer addition is commutative/associative but NOT idempotent.
        assert not check_odi(lambda a, b: a + b, [1, 2])

    def test_check_odi_accepts_max(self):
        assert check_odi(max, [1, 5, 3])


class TestEnergy:
    def test_transmission_cost(self):
        model = EnergyModel(per_message_uj=10.0, per_byte_uj=2.0)
        # 2 messages + 3 words (12 bytes): 20 + 24
        assert model.transmission_cost(2, 3) == pytest.approx(44.0)

    def test_report_accumulates(self):
        model = EnergyModel(per_message_uj=1.0, per_byte_uj=1.0)
        report = EnergyReport()
        log = TransmissionLog(
            transmissions=2, deliveries=2, drops=0, words_sent=4, messages_sent=2
        )
        report.add_log(log, model)
        report.add_log(log, model)
        assert report.total_messages == 4
        assert report.total_words == 8
        assert report.total_uj == pytest.approx(2 * (2 + 16))

    def test_average_message_words(self):
        report = EnergyReport(total_messages=4, total_words=12)
        assert report.average_message_words == 3.0

    def test_per_node_attribution(self):
        model = EnergyModel(per_message_uj=0.0, per_byte_uj=1.0)
        report = EnergyReport()
        report.add_node_words({1: 2, 2: 3}, model)
        assert report.per_node_uj[1] == pytest.approx(8.0)
        assert report.per_node_uj[2] == pytest.approx(12.0)
