"""Tests for the lossy channel."""

from __future__ import annotations

import pytest

from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel
from repro.network.placement import grid_random_placement


@pytest.fixture()
def deployment():
    return grid_random_placement(20, seed=1)


class TestDelivery:
    def test_no_loss_always_delivers(self, deployment):
        channel = Channel(deployment, NoLoss(), seed=0)
        assert channel.delivered(1, 2, epoch=0)

    def test_full_loss_never_delivers(self, deployment):
        channel = Channel(deployment, GlobalLoss(1.0), seed=0)
        assert not channel.delivered(1, 2, epoch=0)

    def test_deterministic_in_seed(self, deployment):
        a = Channel(deployment, GlobalLoss(0.5), seed=9)
        b = Channel(deployment, GlobalLoss(0.5), seed=9)
        draws_a = [a.delivered(1, 2, epoch) for epoch in range(50)]
        draws_b = [b.delivered(1, 2, epoch) for epoch in range(50)]
        assert draws_a == draws_b

    def test_seed_changes_draws(self, deployment):
        a = Channel(deployment, GlobalLoss(0.5), seed=1)
        b = Channel(deployment, GlobalLoss(0.5), seed=2)
        draws_a = [a.delivered(1, 2, epoch) for epoch in range(100)]
        draws_b = [b.delivered(1, 2, epoch) for epoch in range(100)]
        assert draws_a != draws_b

    def test_empirical_rate(self, deployment):
        channel = Channel(deployment, GlobalLoss(0.3), seed=4)
        delivered = sum(
            1
            for epoch in range(4000)
            if channel.delivered(3, 4, epoch)
        )
        assert abs(delivered / 4000 - 0.7) < 0.03


class TestTransmit:
    def test_broadcast_counts_one_transmission(self, deployment):
        channel = Channel(deployment, NoLoss(), seed=0)
        heard = channel.transmit(1, [2, 3, 4], epoch=0, words=5)
        assert heard == [2, 3, 4]
        assert channel.log.transmissions == 1
        assert channel.log.deliveries == 3
        assert channel.log.words_sent == 5

    def test_retransmission_accounting(self, deployment):
        channel = Channel(deployment, NoLoss(), seed=0)
        channel.transmit(1, [2], epoch=0, words=4, messages=2, attempts=3)
        assert channel.log.transmissions == 3
        assert channel.log.words_sent == 12
        assert channel.log.messages_sent == 6

    def test_retransmission_improves_delivery(self, deployment):
        single = Channel(deployment, GlobalLoss(0.6), seed=5)
        triple = Channel(deployment, GlobalLoss(0.6), seed=5)
        got_single = sum(
            1
            for epoch in range(800)
            if single.transmit(1, [2], epoch, words=1, attempts=1)
        )
        got_triple = sum(
            1
            for epoch in range(800)
            if triple.transmit(1, [2], epoch, words=1, attempts=3)
        )
        assert got_triple > got_single

    def test_per_node_accounting(self, deployment):
        channel = Channel(deployment, NoLoss(), seed=0)
        channel.transmit(1, [2], epoch=0, words=7)
        channel.transmit(1, [2], epoch=1, words=3)
        channel.transmit(2, [3], epoch=1, words=5)
        words = channel.per_node_words()
        messages = channel.per_node_messages()
        assert words[1] == 10 and words[2] == 5
        assert messages[1] == 2 and messages[2] == 1
        # Deployment-complete: silent nodes report an explicit zero.
        assert set(words) == set(deployment.sensor_ids)
        assert set(messages) == set(deployment.sensor_ids)
        assert words[3] == 0 and messages[4] == 0

    def test_reset_log(self, deployment):
        channel = Channel(deployment, NoLoss(), seed=0)
        channel.transmit(1, [2], epoch=0, words=1)
        old = channel.reset_log()
        assert old.transmissions == 1
        assert channel.log.transmissions == 0
