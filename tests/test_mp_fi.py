"""Tests for the multi-path frequent-items algorithm (Section 6.2)."""

from __future__ import annotations

import pytest

from repro.datasets.streams import ZipfItemStream, exact_item_counts
from repro.errors import ConfigurationError, SketchError
from repro.frequent.mp_fi import (
    FMOperator,
    KMVOperator,
    MultipathFrequentItems,
)
from repro.frequent.reporting import false_negative_rate, true_frequent
from repro.frequent.td_fi import MultipathFrequentItemsScheme
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel


@pytest.fixture()
def algorithm():
    return MultipathFrequentItems(
        epsilon=0.01, total_items_hint=10_000, operator=KMVOperator(k=32)
    )


class TestSG:
    def test_empty_items(self, algorithm):
        assert algorithm.generate(1, 0, []) is None

    def test_class_is_log_of_size(self, algorithm):
        synopsis = algorithm.generate(1, 0, list(range(100)))
        assert synopsis.klass == 6  # floor(log2(100))

    def test_local_pruning_drops_rare(self):
        algorithm = MultipathFrequentItems(
            epsilon=0.3, total_items_hint=256, operator=KMVOperator(k=16)
        )
        items = [1] * 90 + [2] * 10  # n0=100, class 6
        synopsis = algorithm.generate(1, 0, items)
        # cutoff = 6 * 100 * 0.3 / 8 = 22.5: item 2 must be pruned.
        assert 1 in synopsis.counts
        assert 2 not in synopsis.counts

    def test_deterministic(self, algorithm):
        a = algorithm.generate(1, 0, [5, 5, 7])
        b = algorithm.generate(1, 0, [5, 5, 7])
        assert a.counts.keys() == b.counts.keys()
        assert all(a.counts[i] == b.counts[i] for i in a.counts)


class TestSF:
    def test_same_class_fusion(self, algorithm):
        a = algorithm.generate(1, 0, [1] * 64)
        b = algorithm.generate(2, 0, [1] * 64)
        fused = algorithm.fuse_pair(a, b)
        assert fused.klass >= a.klass
        estimate = algorithm.operator.estimate(fused.counts[1])
        assert abs(estimate - 128) / 128 < 0.5

    def test_cross_class_rejected(self, algorithm):
        a = algorithm.generate(1, 0, [1] * 16)  # class 4
        b = algorithm.generate(2, 0, [1] * 64)  # class 6
        with pytest.raises(SketchError):
            algorithm.fuse_pair(a, b)

    def test_fusion_idempotent(self, algorithm):
        a = algorithm.generate(1, 0, [1] * 64)
        fused = algorithm.fuse_pair(a, a)
        # Same underlying virtual items: the n~ estimate must not double.
        n_est = algorithm.n_operator.estimate(fused.n_sketch)
        assert n_est == pytest.approx(64, rel=0.3)

    def test_fuse_into_classes_single_per_class(self, algorithm):
        synopses = [
            algorithm.generate(node, 0, [node] * 64) for node in range(1, 9)
        ]
        result = algorithm.fuse_into_classes(synopses)
        assert all(
            result[klass].klass == klass for klass in result
        )
        assert len(result) >= 1

    def test_promotion_raises_class(self, algorithm):
        synopses = [
            algorithm.generate(node, 0, [node] * 64) for node in range(1, 9)
        ]
        result = algorithm.fuse_into_classes(synopses)
        # 8 * 64 = 512 items: the surviving synopsis must sit at class >= 8.
        assert max(result) >= 8


class TestSE:
    def test_no_false_negatives_lossless(self, small_scenario):
        stream = ZipfItemStream(items_per_node=80, universe=200, alpha=1.3, seed=9)
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        total = sum(counts.values())
        support, epsilon = 0.02, 0.002
        algorithm = MultipathFrequentItems(
            epsilon=epsilon, total_items_hint=total, operator=KMVOperator(k=64)
        )
        scheme = MultipathFrequentItemsScheme(
            small_scenario.rings, algorithm, support=support
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=1)
        outcome = scheme.run_epoch(0, channel, lambda n, e: stream.items(n, e))
        truth = true_frequent(counts, support)
        assert false_negative_rate(truth, outcome.reported) <= 0.15

    def test_total_estimate_reasonable(self, small_scenario):
        stream = ZipfItemStream(items_per_node=50, universe=100, seed=3)
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        total = sum(counts.values())
        algorithm = MultipathFrequentItems(
            epsilon=0.01, total_items_hint=total, operator=KMVOperator(k=32)
        )
        scheme = MultipathFrequentItemsScheme(
            small_scenario.rings, algorithm, support=0.02
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=1)
        outcome = scheme.run_epoch(0, channel, lambda n, e: stream.items(n, e))
        assert abs(outcome.total_estimate - total) / total < 0.3

    def test_robust_under_loss(self, small_scenario):
        stream = ZipfItemStream(items_per_node=50, universe=100, alpha=1.3, seed=3)
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        total = sum(counts.values())
        algorithm = MultipathFrequentItems(
            epsilon=0.01, total_items_hint=total, operator=KMVOperator(k=32)
        )
        scheme = MultipathFrequentItemsScheme(
            small_scenario.rings, algorithm, support=0.02
        )
        channel = Channel(small_scenario.deployment, GlobalLoss(0.25), seed=1)
        outcome = scheme.run_epoch(0, channel, lambda n, e: stream.items(n, e))
        # Most of the stream survives the multi-path redundancy.
        assert outcome.total_estimate > 0.6 * total


class TestOperators:
    def test_fm_operator_words(self):
        operator = FMOperator(num_bitmaps=8)
        sketch = operator.make(100, "x")
        assert operator.words(sketch) >= 1
        assert operator.estimate(sketch) > 0

    def test_relative_errors_exposed(self):
        assert 0 < KMVOperator(k=32).relative_error < 1
        assert 0 < FMOperator(num_bitmaps=8).relative_error < 1

    def test_eta_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            MultipathFrequentItems(epsilon=0.1, total_items_hint=100, eta=1.0)

    def test_collection_words(self, algorithm):
        synopsis = algorithm.generate(1, 0, [1, 1, 2])
        words = algorithm.collection_words({synopsis.klass: synopsis})
        assert words >= 3
