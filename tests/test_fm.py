"""Tests for the Flajolet-Martin / PCSA sketch."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.multipath.fm import FMSketch
from repro.multipath.synopsis import check_odi


class TestInsertion:
    def test_insert_is_idempotent(self):
        a = FMSketch(16)
        a.insert("item", 1)
        b = a.copy()
        b.insert("item", 1)
        assert a == b

    def test_empty_estimate_zero(self):
        assert FMSketch().estimate() == 0.0
        assert FMSketch().is_empty()

    def test_insert_count_zero_is_noop(self):
        sketch = FMSketch()
        sketch.insert_count(0, "x")
        assert sketch.is_empty()

    def test_insert_count_matches_exact_small(self):
        # Below the exact-insert limit both paths must agree bit-for-bit.
        a = FMSketch(8)
        a.insert_count(100, "key")
        b = FMSketch(8)
        for j in range(100):
            b.insert("key", j)
        assert a == b

    def test_insert_count_negative_rejected(self):
        with pytest.raises(SketchError):
            FMSketch().insert_count(-1, "x")

    def test_bulk_insert_deterministic(self):
        a = FMSketch()
        a.insert_count(100_000, "big")
        b = FMSketch()
        b.insert_count(100_000, "big")
        assert a == b


class TestFusion:
    def test_fuse_is_union(self):
        a = FMSketch(8)
        a.insert("x")
        b = FMSketch(8)
        b.insert("y")
        fused = a.fuse(b)
        both = FMSketch(8)
        both.insert("x")
        both.insert("y")
        assert fused == both

    def test_odi_properties(self):
        sketches = []
        for key in ("a", "b", "c"):
            sketch = FMSketch(8)
            sketch.insert_count(50, key)
            sketches.append(sketch)
        assert check_odi(lambda x, y: x.fuse(y), sketches)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SketchError):
            FMSketch(8).fuse(FMSketch(16))

    def test_or_operator(self):
        a = FMSketch(8)
        a.insert("x")
        assert (a | FMSketch(8)) == a


class TestAccuracy:
    @pytest.mark.parametrize("true_count", [100, 1000, 10_000])
    def test_estimate_within_tolerance(self, true_count):
        # PCSA with 40 bitmaps: ~12% standard error; allow 4 sigma over a
        # few seeds to keep the test deterministic but meaningful.
        errors = []
        for seed in range(5):
            sketch = FMSketch(40)
            sketch.insert_count(true_count, "acc", seed)
            errors.append(abs(sketch.estimate() - true_count) / true_count)
        assert sum(errors) / len(errors) < 0.25

    def test_estimate_monotone_under_fusion(self):
        a = FMSketch(40)
        a.insert_count(500, "m1")
        b = FMSketch(40)
        b.insert_count(500, "m2")
        fused = a.fuse(b)
        assert fused.estimate() >= max(a.estimate(), b.estimate())

    def test_distinct_counting_ignores_duplicates(self):
        sketch = FMSketch(40)
        for _ in range(50):
            sketch.insert_count(200, "same-key")
        single = FMSketch(40)
        single.insert_count(200, "same-key")
        assert sketch == single


class TestSizing:
    def test_words_positive(self):
        sketch = FMSketch(40)
        sketch.insert_count(1000, "w")
        assert 1 <= sketch.words() <= sketch.raw_words()

    def test_typical_count_sketch_fits_one_message(self):
        # The experimental setup of Section 7.1: 40 bitmaps, RLE, 48-byte
        # messages.
        sketch = FMSketch(40)
        sketch.insert_count(600, "net")
        assert sketch.words() <= 12


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_fusion_order_invariance(self, counts):
        sketches = []
        for index, count in enumerate(counts):
            sketch = FMSketch(8)
            sketch.insert_count(count, "p", index)
            sketches.append(sketch)
        forward = sketches[0]
        for sketch in sketches[1:]:
            forward = forward.fuse(sketch)
        backward = sketches[-1]
        for sketch in reversed(sketches[:-1]):
            backward = backward.fuse(sketch)
        assert forward == backward
