"""Tests for the multi-query CompositeAggregate."""

from __future__ import annotations

import pytest

from repro.aggregates.average import AverageAggregate
from repro.aggregates.composite import CompositeAggregate
from repro.aggregates.count import CountAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings, UniformReadings
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel


def run_once(deployment, failure, scheme, readings, epoch=0, seed=0):
    channel = Channel(deployment, failure, seed=seed)
    return scheme.run_epoch(epoch, channel, readings), channel


def make_composite():
    return CompositeAggregate(
        [CountAggregate(), SumAggregate(), AverageAggregate()], primary=1
    )


class TestConstruction:
    def test_name_concatenates_components(self):
        composite = make_composite()
        assert composite.name == "composite(count+sum+average)"

    def test_component_names_disambiguated(self):
        composite = CompositeAggregate([SumAggregate(), SumAggregate()])
        assert composite.component_names() == ["sum", "sum#2"]

    def test_primary_selection(self):
        composite = make_composite()
        assert isinstance(composite.primary, SumAggregate)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeAggregate([])
        with pytest.raises(ConfigurationError):
            CompositeAggregate([CountAggregate()], primary=1)

    def test_evaluations_require_an_epoch(self):
        composite = make_composite()
        with pytest.raises(ConfigurationError):
            composite.evaluations_by_name()


class TestAlgebra:
    def test_tree_merge_componentwise(self):
        composite = make_composite()
        a = composite.tree_local(1, 0, 10.0)
        b = composite.tree_local(2, 0, 20.0)
        merged = composite.tree_merge(a, b)
        assert merged[0] == 2  # count
        assert merged[1] == pytest.approx(30.0)  # sum

    def test_tree_words_add_up(self):
        count, total, average = (
            CountAggregate(),
            SumAggregate(),
            AverageAggregate(),
        )
        composite = CompositeAggregate([count, total, average])
        partial = composite.tree_local(1, 0, 5.0)
        expected = (
            count.tree_words(partial[0])
            + total.tree_words(partial[1])
            + average.tree_words(partial[2])
        )
        assert composite.tree_words(partial) == expected

    def test_synopsis_words_add_up(self):
        count, total = CountAggregate(), SumAggregate()
        composite = CompositeAggregate([count, total])
        synopsis = composite.synopsis_local(3, 0, 5.0)
        expected = count.synopsis_words(synopsis[0]) + total.synopsis_words(
            synopsis[1]
        )
        assert composite.synopsis_words(synopsis) == expected

    def test_exact_all(self):
        composite = make_composite()
        readings = [1.0, 2.0, 3.0]
        assert composite.exact_all(readings) == [3.0, 6.0, 2.0]
        assert composite.exact(readings) == 6.0  # the sum primary


class TestOverSchemes:
    def test_tag_lossless_all_components_exact(self, small_scenario, small_tree):
        composite = make_composite()
        scheme = TagScheme(small_scenario.deployment, small_tree, composite)
        readings = UniformReadings(1, 50, seed=3)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, readings
        )
        values = [
            readings(node, 0) for node in small_scenario.deployment.sensor_ids
        ]
        answers = composite.evaluations_by_name()
        assert answers["count"] == len(values)
        assert answers["sum"] == pytest.approx(sum(values))
        assert answers["average"] == pytest.approx(sum(values) / len(values))
        assert outcome.estimate == pytest.approx(sum(values))  # primary

    def test_sd_all_components_approximate(self, small_scenario):
        composite = make_composite()
        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, composite
        )
        readings = ConstantReadings(2.0)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, readings
        )
        sensors = small_scenario.deployment.num_sensors
        answers = composite.evaluations_by_name()
        assert answers["count"] == pytest.approx(sensors, rel=0.35)
        assert answers["sum"] == pytest.approx(2.0 * sensors, rel=0.35)
        assert outcome.estimate == answers["sum"]

    def test_td_mixed_components(self, small_scenario, small_tree):
        composite = make_composite()
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        scheme = TributaryDeltaScheme(
            small_scenario.deployment, graph, composite
        )
        readings = ConstantReadings(1.0)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, readings
        )
        sensors = small_scenario.deployment.num_sensors
        answers = composite.evaluations_by_name()
        assert answers["count"] == pytest.approx(sensors, rel=0.35)
        assert answers["sum"] == pytest.approx(float(sensors), rel=0.35)
        assert outcome.estimate == answers["sum"]

    def test_one_transmission_per_node_for_all_queries(
        self, small_scenario, small_tree
    ):
        """The point of multi-query sharing: message *count* stays minimal."""
        composite = make_composite()
        scheme = TagScheme(small_scenario.deployment, small_tree, composite)
        _, channel = run_once(
            small_scenario.deployment, NoLoss(), scheme, ConstantReadings(1.0)
        )
        assert channel.log.transmissions == small_scenario.deployment.num_sensors

    def test_composite_words_exceed_single_query_words(
        self, small_scenario, small_tree
    ):
        readings = ConstantReadings(1.0)
        single = TagScheme(
            small_scenario.deployment, small_tree, SumAggregate()
        )
        _, single_channel = run_once(
            small_scenario.deployment, NoLoss(), single, readings
        )
        composite = TagScheme(
            small_scenario.deployment, small_tree, make_composite()
        )
        _, composite_channel = run_once(
            small_scenario.deployment, NoLoss(), composite, readings
        )
        assert (
            composite_channel.log.words_sent > single_channel.log.words_sent
        )

    def test_component_matches_standalone_run_under_loss(
        self, small_scenario, small_tree
    ):
        """Paired check: loss draws ignore payload contents, so the count
        component inside a composite must equal a standalone Count run on
        the same channel seed."""
        readings = ConstantReadings(1.0)
        standalone = TagScheme(
            small_scenario.deployment, small_tree, CountAggregate()
        )
        outcome_alone, _ = run_once(
            small_scenario.deployment, GlobalLoss(0.3), standalone, readings, seed=9
        )
        composite = make_composite()
        bundled = TagScheme(small_scenario.deployment, small_tree, composite)
        run_once(
            small_scenario.deployment, GlobalLoss(0.3), bundled, readings, seed=9
        )
        assert composite.evaluations_by_name()["count"] == pytest.approx(
            outcome_alone.estimate
        )

    def test_td_under_loss_keeps_all_components_reasonable(
        self, small_scenario, small_tree
    ):
        composite = make_composite()
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 2),
        )
        scheme = TributaryDeltaScheme(
            small_scenario.deployment, graph, composite
        )
        readings = ConstantReadings(1.0)
        sensors = small_scenario.deployment.num_sensors
        counts = []
        sums = []
        for epoch in range(8):
            run_once(
                small_scenario.deployment,
                GlobalLoss(0.2),
                scheme,
                readings,
                epoch=epoch,
                seed=4,
            )
            answers = composite.evaluations_by_name()
            counts.append(answers["count"])
            sums.append(answers["sum"])
        assert sum(counts) / len(counts) == pytest.approx(sensors, rel=0.4)
        assert sum(sums) / len(sums) == pytest.approx(float(sensors), rel=0.4)
