"""Tests for the KMV sketch (the accuracy-preserving ⊕ operator)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SketchError
from repro.multipath.kmv import KMVSketch, k_for_relative_error
from repro.multipath.synopsis import check_odi


class TestExactRegime:
    def test_exact_below_k(self):
        sketch = KMVSketch(k=64)
        sketch.insert_count(40, "e")
        assert sketch.is_exact
        assert sketch.estimate() == 40.0

    def test_duplicates_not_double_counted(self):
        sketch = KMVSketch(k=64)
        sketch.insert("a")
        sketch.insert("a")
        sketch.insert("b")
        assert sketch.estimate() == 2.0

    def test_union_of_disjoint_exact(self):
        a = KMVSketch(k=64)
        a.insert_count(10, "x")
        b = KMVSketch(k=64)
        b.insert_count(15, "y")
        assert a.fuse(b).estimate() == 25.0

    def test_union_of_identical_idempotent(self):
        a = KMVSketch(k=64)
        a.insert_count(30, "same")
        assert a.fuse(a).estimate() == 30.0


class TestApproxRegime:
    def test_saturation_flag(self):
        sketch = KMVSketch(k=8)
        sketch.insert_count(100, "s")
        assert not sketch.is_exact

    @pytest.mark.parametrize("count", [5_000, 50_000])
    def test_estimate_accuracy(self, count):
        errors = []
        for seed in range(6):
            sketch = KMVSketch(k=128)
            sketch.insert_count(count, "acc", seed)
            errors.append(abs(sketch.estimate() - count) / count)
        # std ~ 1/sqrt(126) ~ 9%; mean absolute error well under 20%.
        assert sum(errors) / len(errors) < 0.2

    def test_accuracy_preserved_under_union(self):
        # Definition 1: X(eps) ⊕ Y(eps) estimates X + Y within eps.
        errors = []
        for seed in range(6):
            a = KMVSketch(k=128)
            a.insert_count(20_000, "u1", seed)
            b = KMVSketch(k=128)
            b.insert_count(30_000, "u2", seed)
            fused = a.fuse(b)
            errors.append(abs(fused.estimate() - 50_000) / 50_000)
        assert sum(errors) / len(errors) < 0.2

    def test_bulk_path_deterministic(self):
        a = KMVSketch(k=32)
        a.insert_count(1_000_000, "bulk")
        b = KMVSketch(k=32)
        b.insert_count(1_000_000, "bulk")
        assert a == b


class TestFusion:
    def test_odi(self):
        sketches = []
        for key in ("p", "q", "r"):
            sketch = KMVSketch(k=16)
            sketch.insert_count(100, key)
            sketches.append(sketch)
        assert check_odi(lambda x, y: x.fuse(y), sketches)

    def test_mixed_k_uses_smaller(self):
        a = KMVSketch(k=16)
        b = KMVSketch(k=64)
        assert a.fuse(b).k == 16

    def test_negative_count_rejected(self):
        with pytest.raises(SketchError):
            KMVSketch().insert_count(-5, "x")

    def test_k_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            KMVSketch(k=1)


class TestSizing:
    def test_words_bounded_by_k(self):
        sketch = KMVSketch(k=16)
        sketch.insert_count(10_000, "w")
        assert sketch.words() <= 1 + 2 * 16

    def test_k_for_relative_error(self):
        assert k_for_relative_error(0.5) >= 4
        assert k_for_relative_error(0.1) > k_for_relative_error(0.5)
        with pytest.raises(ConfigurationError):
            k_for_relative_error(0.0)


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=1, max_size=5
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_union_equals_bulk_insert(self, counts):
        # Fusing per-key sketches equals inserting everything into one.
        union = None
        combined = KMVSketch(k=32)
        for index, count in enumerate(counts):
            sketch = KMVSketch(k=32)
            sketch.insert_count(count, "piece", index)
            combined.insert_count(count, "piece", index)
            union = sketch if union is None else union.fuse(sketch)
        assert union == combined
