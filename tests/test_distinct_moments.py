"""Tests for the DistinctCount and Moments aggregates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.distinct import DistinctCountAggregate
from repro.aggregates.moments import MomentsAggregate
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel


def run_once(deployment, failure, scheme, readings, epoch=0, seed=0):
    channel = Channel(deployment, failure, seed=seed)
    return scheme.run_epoch(epoch, channel, readings), channel


def clustered_readings(node, epoch):
    """Readings drawn from a small value universe: duplicates everywhere."""
    return float((node * 13 + epoch) % 12)


class TestDistinctAlgebra:
    def test_tree_merge_unions(self):
        aggregate = DistinctCountAggregate()
        a = aggregate.tree_local(1, 0, 4.0)
        b = aggregate.tree_local(2, 0, 4.0)
        c = aggregate.tree_local(3, 0, 7.0)
        merged = aggregate.tree_merge(aggregate.tree_merge(a, b), c)
        assert aggregate.tree_eval(merged) == 2.0  # {4, 7}

    def test_synopsis_keyed_by_value(self):
        """The same value at two nodes yields identical sketches."""
        aggregate = DistinctCountAggregate()
        at_node_1 = aggregate.synopsis_local(1, 0, 4.0)
        at_node_2 = aggregate.synopsis_local(2, 5, 4.0)
        assert at_node_1 == at_node_2

    def test_conversion_composes_with_delta_duplicates(self):
        aggregate = DistinctCountAggregate()
        subtree = frozenset((4, 7))
        converted = aggregate.convert(subtree, sender=9, epoch=0)
        direct = aggregate.synopsis_fuse(
            aggregate.synopsis_local(1, 0, 4.0),
            aggregate.synopsis_local(2, 0, 7.0),
        )
        assert converted == direct

    def test_quantization(self):
        aggregate = DistinctCountAggregate(precision=10.0)
        assert aggregate.quantize(1.23) == 12
        coarse = DistinctCountAggregate(precision=0.1)
        assert coarse.quantize(57.0) == 6

    def test_tree_words_grow_with_cardinality(self):
        aggregate = DistinctCountAggregate()
        small = frozenset((1,))
        large = frozenset(range(50))
        assert aggregate.tree_words(large) > aggregate.tree_words(small)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DistinctCountAggregate(precision=0.0)

    @given(values=st.lists(st.integers(0, 30), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_exact_matches_set_semantics(self, values):
        aggregate = DistinctCountAggregate()
        assert aggregate.exact([float(v) for v in values]) == len(set(values))


class TestDistinctOverSchemes:
    def test_tag_exact_without_loss(self, small_scenario, small_tree):
        aggregate = DistinctCountAggregate()
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, clustered_readings
        )
        truth = aggregate.exact(
            [clustered_readings(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == truth

    def test_sd_approximates_without_double_counting(self, small_scenario):
        aggregate = DistinctCountAggregate()
        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, aggregate
        )
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, clustered_readings
        )
        truth = aggregate.exact(
            [clustered_readings(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        # 12 distinct values; multi-path duplication must not inflate this.
        assert outcome.estimate == pytest.approx(truth, rel=0.6)
        assert outcome.estimate < 3 * truth

    def test_td_mixed(self, small_scenario, small_tree):
        aggregate = DistinctCountAggregate()
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        scheme = TributaryDeltaScheme(small_scenario.deployment, graph, aggregate)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, clustered_readings
        )
        truth = aggregate.exact(
            [clustered_readings(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == pytest.approx(truth, rel=0.6)


class TestMomentsAlgebra:
    def test_tree_triple(self):
        aggregate = MomentsAggregate()
        partial = aggregate.tree_merge(
            aggregate.tree_local(1, 0, 3.0), aggregate.tree_local(2, 0, 5.0)
        )
        assert partial == (2, 8, 34)
        # variance of {3, 5} = 1.0
        assert aggregate.tree_eval(partial) == pytest.approx(1.0)

    def test_statistics_readout(self):
        aggregate = MomentsAggregate()
        stats = aggregate.statistics(partial=(4, 20, 120))
        assert stats["mean"] == 5.0
        assert stats["variance"] == pytest.approx(5.0)
        assert stats["std"] == pytest.approx(5.0**0.5)

    def test_statistics_requires_one_side(self):
        aggregate = MomentsAggregate()
        with pytest.raises(ConfigurationError):
            aggregate.statistics()

    def test_negative_readings_rejected(self):
        aggregate = MomentsAggregate()
        with pytest.raises(ConfigurationError):
            aggregate.tree_local(1, 0, -2.0)

    @given(values=st.lists(st.integers(0, 40), min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_exact_matches_population_variance(self, values):
        aggregate = MomentsAggregate()
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / len(values)
        assert aggregate.exact([float(v) for v in values]) == pytest.approx(
            expected
        )


class TestMomentsOverSchemes:
    def test_tag_exact_without_loss(self, small_scenario, small_tree):
        aggregate = MomentsAggregate()
        scheme = TagScheme(small_scenario.deployment, small_tree, aggregate)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, clustered_readings
        )
        truth = aggregate.exact(
            [clustered_readings(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == pytest.approx(truth)

    def test_sd_approximates(self, small_scenario):
        aggregate = MomentsAggregate()
        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, aggregate
        )
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, clustered_readings
        )
        truth = aggregate.exact(
            [clustered_readings(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        assert outcome.estimate == pytest.approx(truth, rel=0.8)

    def test_td_under_loss_stays_sane(self, small_scenario, small_tree):
        aggregate = MomentsAggregate()
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 2),
        )
        scheme = TributaryDeltaScheme(small_scenario.deployment, graph, aggregate)
        truth = aggregate.exact(
            [clustered_readings(n, 0) for n in small_scenario.deployment.sensor_ids]
        )
        estimates = []
        for epoch in range(6):
            outcome, _ = run_once(
                small_scenario.deployment,
                GlobalLoss(0.15),
                scheme,
                clustered_readings,
                epoch=epoch,
                seed=4,
            )
            estimates.append(outcome.estimate)
        mean_estimate = sum(estimates) / len(estimates)
        # Variance estimates from ratios of sketches are noisy; the check
        # is that they track the truth's magnitude, not a tight bound.
        assert mean_estimate == pytest.approx(truth, rel=0.8)
