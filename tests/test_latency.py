"""Tests for the query-latency model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.latency import (
    LatencyModel,
    RetransmissionComparison,
    compare_retransmission_strategies,
    latency_table,
    level_populations,
    scheme_latency_ms,
)


class TestLatencyModel:
    def test_single_message_is_one_slot(self):
        model = LatencyModel(slot_ms=10.0)
        assert model.transmission_ms(1) == 10.0

    def test_messages_serialise(self):
        model = LatencyModel(slot_ms=10.0)
        assert model.transmission_ms(3) == 30.0

    def test_retransmissions_pay_ack_waits(self):
        model = LatencyModel(slot_ms=10.0, ack_wait_ms=15.0, capacity_penalty=0.0)
        # 3 attempts of 1 message: 3 slots + 2 ack waits.
        assert model.transmission_ms(1, attempts=3) == pytest.approx(60.0)

    def test_capacity_penalty_slows_retransmitting_slots(self):
        model = LatencyModel(slot_ms=10.0, ack_wait_ms=0.0, capacity_penalty=0.25)
        # Effective slot = 10 / 0.75; only applies when attempts > 1.
        assert model.transmission_ms(1, attempts=1) == 10.0
        assert model.transmission_ms(1, attempts=2) == pytest.approx(2 * 10.0 / 0.75)

    def test_epoch_serialises_level_population(self):
        model = LatencyModel(slot_ms=10.0)
        assert model.epoch_ms(level_population=5, messages_per_node=1) == 50.0

    def test_query_latency_sums_levels(self):
        model = LatencyModel(slot_ms=10.0)
        assert model.query_latency_ms([5, 3, 2]) == 100.0

    def test_uniform_relation_is_product(self):
        """The paper's statement: epoch duration x number of levels."""
        model = LatencyModel(slot_ms=10.0)
        epoch = model.epoch_ms(4, 1)
        assert model.uniform_query_latency_ms(6, 4) == pytest.approx(6 * epoch)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(slot_ms=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(ack_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(capacity_penalty=1.0)
        model = LatencyModel()
        with pytest.raises(ConfigurationError):
            model.transmission_ms(-1)
        with pytest.raises(ConfigurationError):
            model.transmission_ms(1, attempts=0)
        with pytest.raises(ConfigurationError):
            model.epoch_ms(-1, 1)
        with pytest.raises(ConfigurationError):
            model.uniform_query_latency_ms(-1, 1)

    @given(
        messages=st.integers(min_value=1, max_value=10),
        attempts=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_latency_monotone_in_messages_and_attempts(self, messages, attempts):
        model = LatencyModel()
        base = model.transmission_ms(messages, attempts)
        assert model.transmission_ms(messages + 1, attempts) > base
        assert model.transmission_ms(messages, attempts + 1) > base


class TestFootnote6:
    def test_two_retransmissions_slower_than_triple_message(self):
        """Footnote 6: 2 retx of 1 msg > 1 transmission of a 3x message."""
        comparison = compare_retransmission_strategies()
        assert comparison.retransmit_ms > comparison.longer_message_ms
        assert comparison.retransmission_overhead > 1.0

    def test_comparison_without_ack_wait_or_penalty_is_even(self):
        model = LatencyModel(ack_wait_ms=0.0, capacity_penalty=0.0)
        comparison = compare_retransmission_strategies(model)
        # 3 attempts x 1 message vs 1 attempt x 3 messages: identical airtime.
        assert comparison.retransmit_ms == pytest.approx(
            comparison.longer_message_ms
        )

    def test_dataclass_fields(self):
        comparison = RetransmissionComparison(
            retransmit_ms=80.0, longer_message_ms=30.0
        )
        assert comparison.retransmission_overhead == pytest.approx(80.0 / 30.0)


class TestSchemeLatency:
    def test_level_populations_match_rings(self, small_scenario):
        populations = level_populations(small_scenario.rings)
        rings = small_scenario.rings
        assert len(populations) == rings.depth
        assert sum(populations) == len(rings.levels) - 1  # base never transmits
        assert populations[0] == len(rings.nodes_at_level(rings.depth))

    def test_count_rows_equal_across_schemes(self, small_scenario):
        """Table 1: all three approaches have 'minimal' Count latency."""
        table = latency_table(small_scenario.rings)
        assert (
            table["tree (count)"]
            == table["multi-path (count)"]
            == table["tributary-delta (count)"]
        )

    def test_frequent_items_rows_cost_more(self, small_scenario):
        table = latency_table(small_scenario.rings)
        assert table["tree (freq items, 2 retx)"] > table["tree (count)"]
        assert table["multi-path (freq items)"] > table["multi-path (count)"]

    def test_retransmitting_tree_slower_than_3x_multipath(self, small_scenario):
        """Footnote 6 at network scale: the Figure 9b energy-parity design
        (2 tree retransmissions vs 3-message multi-path payloads) costs the
        tree MORE latency."""
        retx_tree = scheme_latency_ms(small_scenario.rings, attempts=3)
        long_multipath = scheme_latency_ms(
            small_scenario.rings, messages_per_node=3
        )
        assert retx_tree > long_multipath

    def test_latency_scales_with_depth(self, small_scenario, medium_scenario):
        small = scheme_latency_ms(small_scenario.rings)
        # Same model, bigger network: more levels and/or more nodes per level.
        medium = scheme_latency_ms(medium_scenario.rings)
        assert medium > small
