"""Tests for the parallel sweep engine (specs, pool, cache, CLI)."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    SweepRunner,
    SweepSpec,
    failure_model,
    parallel_map,
    reading_fn,
    run_spec,
)
from repro.network.failures import GlobalLoss, NoLoss, RegionalLoss

QUICK = dict(num_sensors=40, epochs=4, converge_epochs=8, scenario_seed=4)


class TestSweepSpec:
    def test_digest_is_stable_and_distinct(self):
        a = SweepSpec(scheme="TAG", seed=1, failure="global:0.2", **QUICK)
        b = SweepSpec(scheme="TAG", seed=1, failure="global:0.2", **QUICK)
        c = SweepSpec(scheme="TAG", seed=2, failure="global:0.2", **QUICK)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(scheme="nope", seed=1, failure="none")

    def test_rejects_bad_failure_spec(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(scheme="TAG", seed=1, failure="global")

    def test_failure_specs_parse(self):
        assert isinstance(failure_model("none"), NoLoss)
        assert failure_model("global:0.4") == GlobalLoss(0.4)
        assert failure_model("regional:0.8:0.1") == RegionalLoss(0.8, 0.1)

    def test_reading_specs_parse(self):
        assert reading_fn("constant:2.0")(1, 0) == 2.0
        assert reading_fn("uniform:1:9:3")(1, 0) >= 1

    def test_digest_is_derived_from_run_config_json(self):
        from repro.api import config_digest

        spec = SweepSpec(scheme="TAG", seed=1, failure="global:0.2", **QUICK)
        assert spec.digest() == config_digest(spec.to_run_config())

    def test_run_spec_matches_session(self):
        from repro.api import Session

        spec = SweepSpec(scheme="TD", seed=2, failure="global:0.25", **QUICK)
        via_spec = run_spec(spec)
        via_session = Session().run(spec.to_run_config())
        assert via_spec.estimates == via_session.result.estimates

    def test_sweep_cache_is_shared_with_session(self, tmp_path):
        from repro.api import Session

        spec = SweepSpec(scheme="TAG", seed=1, failure="global:0.2", **QUICK)
        [from_runner] = SweepRunner(jobs=1, cache_dir=tmp_path).run([spec])
        # The Session must *hit* the runner's entry: poison the executor.
        import repro.api as api_module

        original = api_module.run_config_result
        api_module.run_config_result = None
        try:
            report = Session(cache_dir=tmp_path).run(spec.to_run_config())
        finally:
            api_module.run_config_result = original
        assert report.result.estimates == from_runner.estimates


class TestParallelMap:
    def test_serial_fallback_and_order(self):
        assert parallel_map(abs, [-3, 2, -1], jobs=1) == [3, 2, 1]

    def test_pool_preserves_order(self):
        items = list(range(20, 0, -1))
        assert parallel_map(abs, items, jobs=4) == items


class TestSweepRunner:
    def _specs(self):
        return [
            SweepSpec(scheme=scheme, seed=seed, failure="global:0.25", **QUICK)
            for scheme in ("TAG", "SD", "TD")
            for seed in (1, 2)
        ]

    def test_pooled_matches_serial(self):
        specs = self._specs()
        serial = SweepRunner(jobs=1).run(specs)
        pooled = SweepRunner(jobs=3).run(specs)
        for left, right in zip(serial, pooled):
            assert left.estimates == right.estimates
            assert left.scheme_name == right.scheme_name

    def test_cache_round_trip_identical(self, tmp_path, monkeypatch):
        specs = self._specs()[:3]
        runner = SweepRunner(jobs=2, cache_dir=tmp_path)
        first = runner.run(specs)
        assert len(list(tmp_path.glob("*.json"))) == len(specs)

        # A cached re-run must not recompute anything.
        import repro.experiments.parallel as parallel_module

        def _boom(spec):  # pragma: no cover - would mean a cache miss
            raise AssertionError("cache miss on a cached spec")

        monkeypatch.setattr(parallel_module, "run_spec", _boom)
        second = SweepRunner(jobs=1, cache_dir=tmp_path).run(specs)
        for left, right in zip(first, second):
            assert left.estimates == right.estimates
            assert left.energy.total_words == right.energy.total_words

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        spec = self._specs()[0]
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        [first] = runner.run([spec])
        path = tmp_path / f"{spec.digest()}.json"
        path.write_text("{not json")
        [second] = runner.run([spec])
        assert first.estimates == second.estimates

    def test_paired_seeds_share_loss_draws(self):
        # TAG contributing counts are a pure function of the channel draws,
        # so the same seed via two separate workers is the same run.
        spec = SweepSpec(scheme="TAG", seed=5, failure="global:0.3", **QUICK)
        again = SweepSpec(scheme="TAG", seed=5, failure="global:0.3", **QUICK)
        assert run_spec(spec).estimates == run_spec(again).estimates

    def test_run_grid_order(self):
        report = SweepRunner(jobs=2).run_grid(
            ("TAG", "SD"), (1,), ("global:0.0", "global:0.3"), **QUICK
        )
        labels = [(spec.failure, spec.scheme) for spec in report.specs]
        assert labels == [
            ("global:0.0", "TAG"),
            ("global:0.0", "SD"),
            ("global:0.3", "TAG"),
            ("global:0.3", "SD"),
        ]
        text = report.render()
        assert "rms_error" in text and "TAG" in text


class TestCliSweep:
    def test_sweep_subcommand_smoke(self, tmp_path, capsys):
        out = tmp_path / "sweep.txt"
        code = cli_main(
            [
                "sweep",
                "--schemes",
                "TAG,SD",
                "--seeds",
                "1",
                "--failures",
                "global:0.2",
                "--sensors",
                "40",
                "--epochs",
                "4",
                "--converge",
                "6",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "rms_error" in printed
        assert out.exists()
        cached = list((tmp_path / "cache").glob("*.json"))
        assert len(cached) == 2
        payload = json.loads(cached[0].read_text())
        # One cache format for sweeps and Session.run alike.
        assert "config" in payload and "result" in payload
