"""Shared fixtures: small scenarios used across the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.labdata import LabDataScenario
from repro.datasets.synthetic import make_synthetic_scenario
from repro.tree.construction import build_bushy_tree, build_tag_tree


@pytest.fixture(scope="session")
def small_scenario():
    """A 60-sensor connected synthetic scenario (fast to simulate)."""
    return make_synthetic_scenario(num_sensors=60, seed=11)


@pytest.fixture(scope="session")
def medium_scenario():
    """A 150-sensor scenario for statistical assertions."""
    return make_synthetic_scenario(num_sensors=150, seed=7)


@pytest.fixture(scope="session")
def small_tree(small_scenario):
    return build_bushy_tree(small_scenario.rings, seed=11)


@pytest.fixture(scope="session")
def medium_tree(medium_scenario):
    return build_bushy_tree(medium_scenario.rings, seed=7)


@pytest.fixture(scope="session")
def lab_scenario():
    return LabDataScenario.build()
