"""Tests for radio/connectivity models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.network.placement import grid_random_placement, placement_from_points
from repro.network.radio import DiscRadio, QualityDiscRadio, link_set


class TestDiscRadio:
    def test_edges_respect_range(self):
        deployment = placement_from_points(
            [(1.0, 0.0), (2.5, 0.0)], base_position=(0.0, 0.0), width=5, height=5
        )
        graph = DiscRadio(1.6).connectivity(deployment)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)

    def test_disconnected_raises(self):
        deployment = placement_from_points(
            [(10.0, 10.0)], base_position=(0.0, 0.0), width=20, height=20
        )
        with pytest.raises(TopologyError):
            DiscRadio(1.0).connectivity(deployment)

    def test_matches_brute_force(self):
        deployment = grid_random_placement(80, width=10, height=10, seed=2)
        radio = DiscRadio(2.6)
        graph = radio.connectivity(deployment)
        expected = set()
        nodes = deployment.node_ids
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if deployment.distance(a, b) <= 2.6:
                    expected.add((a, b))
        assert link_set(graph) == frozenset(expected)

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            DiscRadio(0.0)

    def test_base_loss_is_zero(self):
        deployment = grid_random_placement(10, seed=1)
        assert DiscRadio(5.0).base_loss(deployment, 0, 1) == 0.0


class TestQualityDiscRadio:
    def test_loss_grows_with_distance(self):
        deployment = placement_from_points(
            [(1.0, 0.0), (4.0, 0.0)], base_position=(0.0, 0.0), width=5, height=5
        )
        radio = QualityDiscRadio(5.0, min_loss=0.05, max_loss=0.3)
        near = radio.base_loss(deployment, 0, 1)
        far = radio.base_loss(deployment, 0, 2)
        assert 0.05 <= near < far <= 0.3

    def test_loss_capped_at_max(self):
        deployment = placement_from_points(
            [(5.0, 0.0)], base_position=(0.0, 0.0), width=6, height=6
        )
        radio = QualityDiscRadio(5.0, min_loss=0.1, max_loss=0.25)
        assert radio.base_loss(deployment, 0, 1) == pytest.approx(0.25)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            QualityDiscRadio(5.0, min_loss=0.5, max_loss=0.2)
