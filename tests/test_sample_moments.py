"""Tests for sample-derived moments (the Section 5 derived aggregates)."""

from __future__ import annotations

import pytest

from repro.aggregates.base import fuse_all
from repro.aggregates.sample import (
    UniformSampleAggregate,
    moment_from_sample,
    quantile_from_sample,
    variance_from_sample,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def full_sample():
    # A sample large enough to hold every reading: estimates become exact.
    aggregate = UniformSampleAggregate(k=1000)
    synopses = [
        aggregate.synopsis_local(node, 0, float(node)) for node in range(1, 101)
    ]
    return fuse_all(aggregate, synopses)


class TestMoments:
    def test_first_moment_is_mean(self, full_sample):
        assert moment_from_sample(full_sample, 1) == pytest.approx(50.5)

    def test_second_moment(self, full_sample):
        expected = sum(v * v for v in range(1, 101)) / 100
        assert moment_from_sample(full_sample, 2) == pytest.approx(expected)

    def test_variance(self, full_sample):
        values = list(range(1, 101))
        mean = sum(values) / 100
        expected = sum((v - mean) ** 2 for v in values) / 100
        assert variance_from_sample(full_sample) == pytest.approx(expected)

    def test_rejects_zero_order(self, full_sample):
        with pytest.raises(ConfigurationError):
            moment_from_sample(full_sample, 0)

    def test_subsample_estimates_are_close(self):
        aggregate = UniformSampleAggregate(k=64)
        synopses = [
            aggregate.synopsis_local(node, 0, float(node % 10))
            for node in range(1, 501)
        ]
        sample = fuse_all(aggregate, synopses)
        # True mean of node % 10 over 1..500 is 4.5.
        assert moment_from_sample(sample, 1) == pytest.approx(4.5, abs=1.5)

    def test_variance_nonnegative_always(self):
        aggregate = UniformSampleAggregate(k=4)
        sample = aggregate.tree_local(1, 0, 3.0)
        assert variance_from_sample(sample) == pytest.approx(0.0)


class TestQuantilesFromSample:
    def test_full_sample_quantiles_exact(self, full_sample):
        assert quantile_from_sample(full_sample, 0.0) == 1.0
        assert quantile_from_sample(full_sample, 1.0) == 100.0
        assert quantile_from_sample(full_sample, 0.5) == pytest.approx(51, abs=1)
