"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.plotting import (
    LineChart,
    bar_chart,
    render_series_table,
    sparkline,
)


class TestLineChart:
    def make_chart(self):
        chart = LineChart("RMS vs loss", x_label="loss", y_label="rms")
        chart.add_series("TAG", [(0.0, 0.0), (0.5, 0.5), (1.0, 0.9)])
        chart.add_series("SD", [(0.0, 0.1), (0.5, 0.12), (1.0, 0.2)])
        return chart

    def test_render_contains_title_and_legend(self):
        text = self.make_chart().render()
        assert "RMS vs loss" in text
        assert "* TAG" in text
        assert "o SD" in text

    def test_render_contains_axis_labels(self):
        text = self.make_chart().render()
        assert "rms" in text
        assert "0.9" in text  # the y-max tick

    def test_markers_appear(self):
        text = self.make_chart().render()
        assert "*" in text
        assert "o" in text

    def test_extremes_hit_grid_corners(self):
        chart = LineChart("corners", width=20, height=6)
        chart.add_series("s", [(0.0, 0.0), (1.0, 1.0)])
        lines = chart.render().splitlines()
        plot_rows = [line for line in lines if "|" in line]
        # Max value on the top plot row, min on the bottom one.
        assert "*" in plot_rows[0]
        assert "*" in plot_rows[-1]

    def test_fixed_y_range(self):
        chart = LineChart("fixed", y_min=0.0, y_max=1.0)
        chart.add_series("s", [(0.0, 0.4), (1.0, 0.6)])
        text = chart.render()
        assert "1" in text.splitlines()[2]

    def test_chaining(self):
        chart = LineChart("t")
        assert chart.add_series("a", [(0, 1)]) is chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LineChart("too small", width=5, height=2)
        with pytest.raises(ConfigurationError):
            LineChart("no points").add_series("empty", [])
        with pytest.raises(ConfigurationError):
            LineChart("no series").render()
        chart = LineChart("full")
        for index in range(8):
            chart.add_series(f"s{index}", [(0, index)])
        with pytest.raises(ConfigurationError):
            chart.add_series("one too many", [(0, 9)])

    def test_flat_series_renders(self):
        chart = LineChart("flat")
        chart.add_series("s", [(0.0, 0.5), (1.0, 0.5)])
        assert "*" in chart.render()

    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_render_never_crashes(self, points):
        chart = LineChart("fuzz")
        chart.add_series("s", points)
        text = chart.render()
        assert "fuzz" in text


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart(
            "loads",
            {"Real": {"Min Total-load": 120.0, "Min Max-load": 240.0}},
        )
        assert "loads" in text
        assert "Min Total-load" in text
        assert "#" in text

    def test_longer_bar_for_larger_value(self):
        text = bar_chart("t", {"g": {"small": 10.0, "large": 100.0}})
        lines = {line.split()[0]: line for line in text.splitlines() if "#" in line}
        assert lines["large"].count("#") > lines["small"].count("#")

    def test_log_scale_compresses(self):
        linear = bar_chart("t", {"g": {"a": 10.0, "b": 10000.0}}, width=40)
        log = bar_chart(
            "t", {"g": {"a": 10.0, "b": 10000.0}}, width=40, log_scale=True
        )

        def bars(text):
            return {
                line.split()[0]: line.count("#")
                for line in text.splitlines()
                if "#" in line
            }

        assert bars(log)["a"] > bars(linear)["a"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", {})
        with pytest.raises(ConfigurationError):
            bar_chart("t", {"g": {}})
        with pytest.raises(ConfigurationError):
            bar_chart("t", {"g": {"a": 0.0}}, log_scale=True)

    def test_unit_suffix(self):
        text = bar_chart("t", {"g": {"a": 5.0}}, unit=" words")
        assert "5 words" in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([3.0, 3.0, 3.0]) == "   "

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert line[0] == " "
        assert line[-1] == "@"
        assert len(line) == 10

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestSeriesTable:
    def test_basic_table(self):
        text = render_series_table(
            "loss",
            {
                "TAG": [(0.0, 0.0), (0.5, 0.4)],
                "SD": [(0.0, 0.1), (0.5, 0.12)],
            },
        )
        lines = text.splitlines()
        assert "loss" in lines[0]
        assert "TAG" in lines[0]
        assert "SD" in lines[0]
        assert len(lines) == 4  # header, rule, two data rows

    def test_mismatched_grids_raise(self):
        with pytest.raises(ConfigurationError):
            render_series_table(
                "x",
                {"a": [(0.0, 1.0)], "b": [(1.0, 2.0)]},
            )

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            render_series_table("x", {})


class TestMarkerCollisions:
    def test_conflicting_markers_render_as_question_mark(self):
        chart = LineChart("overlap", width=10, height=4)
        chart.add_series("a", [(0.0, 0.0), (1.0, 1.0)])
        chart.add_series("b", [(0.0, 0.0), (1.0, 0.5)])
        text = chart.render()
        # Both series hit the (0, 0) cell with different markers.
        assert "?" in text

    def test_same_series_revisiting_a_cell_keeps_marker(self):
        chart = LineChart("revisit", width=10, height=4)
        chart.add_series("a", [(0.0, 0.0), (0.0, 0.0), (1.0, 1.0)])
        assert "?" not in chart.render()
