"""Tests for the dynamic-topology subsystem: churn, repair, re-ringing.

Covers the churn-model family, ring recomputation over survivors, tree
repair (every orphaned live node reattaches), the membership runtime's
plan invalidation and energy accounting, scheme rebuild hooks, simulator
integration (blocked vs per-epoch equivalence *with* churn), and the
end-to-end reachability of churn from Session / sweep / run-config.

``TestChurnDisabledByteIdentity`` pins the other half of the contract:
with churn off, all four schemes still produce byte-identical results to
the pre-churn engine (golden digests recorded from the seed revision).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.aggregates.count import CountAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.api import RunConfig, Session, config_digest, describe_experiment
from repro.core.adaptation import TDFinePolicy
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import UniformReadings
from repro.errors import ConfigurationError, TopologyError
from repro.experiments.fig_churn import run_churn_timeline
from repro.experiments.parallel import SweepRunner, SweepSpec
from repro.network.churn import (
    BirthDeathChurn,
    ChurnBatch,
    ChurnContext,
    DynamicMembership,
    LifetimeChurn,
    RandomDeaths,
    RegionalBlackout,
    ScheduledChurn,
)
from repro.network.failures import GlobalLoss
from repro.network.links import Channel
from repro.network.placement import BASE_STATION
from repro.network.rings import RingsTopology
from repro.network.simulator import EpochSimulator
from repro.registry import CHURN_MODELS, build_churn_model
from repro.tree.repair import REPAIR_WORDS, repair_tree


@pytest.fixture()
def context(small_scenario):
    return ChurnContext(
        epoch=50,
        epochs_elapsed=50,
        alive=frozenset(small_scenario.deployment.node_ids),
        deployment=small_scenario.deployment,
        per_node_uj={},
    )


class TestChurnModels:
    def test_scheduled_windows(self, context):
        model = ScheduledChurn.of(
            deaths=[(10, [1, 2]), (30, [3])], joins=[(30, [1])]
        )
        # First boundary (open start) collects everything due by then.
        assert model.events_in(None, 10, context) == ChurnBatch(deaths=(1, 2))
        # Half-open below: an event at the previous boundary is not re-due.
        assert not model.events_in(10, 20, context)
        batch = model.events_in(20, 30, context)
        assert batch.deaths == (3,) and batch.joins == (1,)
        # A first boundary past every event nets them per node: node 1's
        # later join (epoch 30) wins over its death (epoch 10).
        late = model.events_in(None, 100, context)
        assert late.deaths == (2, 3) and late.joins == (1,)

    def test_scheduled_net_state_ties_resolve_to_death(self, context):
        model = ScheduledChurn.of(deaths=[(10, [4])], joins=[(10, [4])])
        batch = model.events_in(None, 10, context)
        assert batch.deaths == (4,) and not batch.joins

    def test_random_deaths_deterministic(self, context):
        model = RandomDeaths(epoch=50, count=5, seed=3)
        first = model.events_in(None, 50, context)
        second = model.events_in(None, 50, context)
        assert first == second
        assert len(first.deaths) == 5
        assert BASE_STATION not in first.deaths
        assert set(first.deaths) <= context.alive
        # A different seed draws a different sample.
        other = RandomDeaths(epoch=50, count=5, seed=4).events_in(
            None, 50, context
        )
        assert other.deaths != first.deaths
        # Outside the window: nothing.
        assert not model.events_in(50, 60, context)

    def test_random_deaths_clamps_to_population(self, context):
        model = RandomDeaths(epoch=50, count=10_000, seed=0)
        batch = model.events_in(None, 50, context)
        assert set(batch.deaths) == context.alive - {BASE_STATION}

    def test_blackout_region_and_rejoin(self, context):
        model = RegionalBlackout(
            epoch=20, lower=(0.0, 0.0), upper=(10.0, 10.0), rejoin_epoch=40
        )
        dark = model.events_in(None, 20, context)
        expected = tuple(
            context.deployment.nodes_in_rect((0.0, 0.0), (10.0, 10.0))
        )
        assert dark.deaths == expected and not dark.joins
        back = model.events_in(30, 40, context)
        assert back.joins == expected and not back.deaths
        # Both events inside one window net to "alive": the region was
        # never down at any executed boundary.
        both = model.events_in(None, 100, context)
        assert both.joins == expected and not both.deaths

    def test_blackout_validation(self):
        with pytest.raises(ConfigurationError):
            RegionalBlackout(epoch=10, lower=(5, 5), upper=(1, 1))
        with pytest.raises(ConfigurationError):
            RegionalBlackout(epoch=10, rejoin_epoch=10)

    def test_lifetime_threshold(self, small_scenario):
        ctx = ChurnContext(
            epoch=100,
            epochs_elapsed=100,
            alive=frozenset(small_scenario.deployment.node_ids),
            deployment=small_scenario.deployment,
            per_node_uj={1: 2e6, 2: 0.4e6, 3: 1.1e6},
        )
        model = LifetimeChurn(battery_j=1.2, overhead_uj_per_epoch=0.0)
        assert model.events_in(None, 100, ctx).deaths == (1,)
        # Duty-cycle overhead accrues per elapsed epoch for every node.
        heavy = LifetimeChurn(battery_j=1.2, overhead_uj_per_epoch=1e4)
        assert 2 in heavy.events_in(None, 100, ctx).deaths
        with pytest.raises(ConfigurationError):
            LifetimeChurn(battery_j=0.0)

    def test_registry_specs(self):
        assert build_churn_model("none") is None
        assert build_churn_model("deaths:50:10:2") == RandomDeaths(50, 10, 2)
        blackout = build_churn_model("blackout:100:0:0:10:10:300")
        assert blackout == RegionalBlackout(
            100, lower=(0.0, 0.0), upper=(10.0, 10.0), rejoin_epoch=300
        )
        assert build_churn_model("lifetime:5") == LifetimeChurn(5.0)
        assert build_churn_model("at:30:4+9").events_in(
            None,
            30,
            ChurnContext(30, 30, frozenset({0, 4, 9}), None, {}),
        ) == ChurnBatch(deaths=(4, 9))
        with pytest.raises(ConfigurationError, match="churn"):
            build_churn_model("bogus:1")
        with pytest.raises(ConfigurationError, match="bad churn spec"):
            build_churn_model("deaths:x:y")
        assert "blackout" in CHURN_MODELS

    def test_birthdeath_spec(self):
        model = build_churn_model("birthdeath:0.01:0.2:5")
        assert model == BirthDeathChurn(
            death_rate=0.01, birth_rate=0.2, seed=5
        )
        assert build_churn_model("birthdeath:0.01:0.2") == BirthDeathChurn(
            death_rate=0.01, birth_rate=0.2
        )
        assert "birthdeath" in CHURN_MODELS

    def test_birthdeath_window_invariance(self, context):
        """One 30-epoch window nets the same state as three 10-epoch ones:
        the blocked and per-epoch engines see identical churn."""
        model = BirthDeathChurn(death_rate=0.05, birth_rate=0.3, seed=4)
        whole = model.events_in(None, 30, context)
        alive = set(context.alive)
        start = None
        for end in (10, 20, 30):
            ctx = ChurnContext(
                epoch=end,
                epochs_elapsed=end,
                alive=frozenset(alive),
                deployment=context.deployment,
                per_node_uj={},
            )
            batch = model.events_in(start, end, ctx)
            alive.difference_update(batch.deaths)
            alive.update(batch.joins)
            start = end
        assert set(context.alive) - set(whole.deaths) | set(
            whole.joins
        ) == alive

    def test_birthdeath_turns_over_and_rejoins(self, context):
        model = BirthDeathChurn(death_rate=0.1, birth_rate=0.5, seed=4)
        batch = model.events_in(None, 30, context)
        assert batch.deaths  # sustained death rate kills someone in 30 epochs
        assert BASE_STATION not in batch.deaths
        # A node that died earlier can be alive again by the window's end:
        # replay one dead node's flips and check some window revives it.
        dead = batch.deaths[0]
        ctx = ChurnContext(
            epoch=60,
            epochs_elapsed=60,
            alive=frozenset(set(context.alive) - set(batch.deaths)),
            deployment=context.deployment,
            per_node_uj={},
        )
        later = model.events_in(30, 60, ctx)
        assert later.joins, "birth rate 0.5 revives dead nodes"
        assert dead not in later.deaths

    def test_birthdeath_validation(self):
        with pytest.raises(ConfigurationError):
            BirthDeathChurn(death_rate=1.5)
        with pytest.raises(ConfigurationError):
            BirthDeathChurn(death_rate=0.1, birth_rate=-0.2)


class TestDarkParentReadmission:
    """Stranded subtrees snap back to their remembered parents on rejoin."""

    def test_repair_prefers_remembered_parent(
        self, small_scenario, small_tree
    ):
        rings = small_scenario.rings
        deployment = small_scenario.deployment
        # Pick a node with siblings under a non-base parent, pretend it
        # went dark and came back: preferred routing restores the old link
        # even when a different candidate is nearer.
        candidates = [
            node
            for node, parent in small_tree.parents.items()
            if parent != BASE_STATION
            and node
            != nearest_upstream_parent_probe(rings, deployment, node)
        ]
        assert candidates, "scenario has a node whose parent is not nearest"
        node = candidates[0]
        old_parent = small_tree.parents[node]
        broken = dict(small_tree.parents)
        del broken[node]
        from repro.tree.structure import Tree

        tree = Tree(parents=broken, root=BASE_STATION)
        repaired, report = repair_tree(
            tree, rings, deployment, preferred={node: old_parent}
        )
        assert repaired.parents[node] == old_parent
        assert (node, old_parent) in report.reattached
        # Without the memory, the same orphan scatters to the nearest.
        scattered, _ = repair_tree(tree, rings, deployment)
        assert scattered.parents[node] == nearest_upstream_parent_probe(
            rings, deployment, node
        )

    def test_membership_remembers_through_blackout(self, small_scenario):
        from repro.tree.construction import build_bushy_tree

        tree = build_bushy_tree(small_scenario.rings, seed=11)
        # Kill a mid-tree node with children: its subtree strands, then the
        # bridge rejoins and the stranded children return to their parents.
        children_of = {}
        for child, parent in tree.parents.items():
            children_of.setdefault(parent, []).append(child)
        bridge = next(
            node
            for node, kids in children_of.items()
            if node != BASE_STATION and kids
        )
        membership = DynamicMembership(
            ScheduledChurn.of(
                deaths=[(10, [bridge])], joins=[(30, [bridge])]
            ),
            small_scenario.deployment,
            small_scenario.rings,
            tree,
        )
        channel = Channel(
            small_scenario.deployment, GlobalLoss(0.0), seed=1
        )
        update = membership.advance(10, 10, channel)
        stranded = set(update.stranded)
        remembered = dict(membership._dark_parents)
        assert set(remembered) <= stranded
        update = membership.advance(30, 30, channel)
        assert bridge in update.joined
        for node, parent in remembered.items():
            # Each remembered node is back in the tree; those whose old
            # link is valid again point at their remembered parent.
            assert node in membership.tree.parents
            if (
                membership.rings.levels.get(parent)
                == membership.rings.levels[node] - 1
            ):
                assert membership.tree.parents[node] == parent
        assert not membership._dark_parents


def nearest_upstream_parent_probe(rings, deployment, node):
    from repro.tree.repair import nearest_upstream_parent

    return nearest_upstream_parent(rings, deployment, node)


class TestRestrictedRings:
    def test_restricts_levels_to_survivors(self, small_scenario):
        alive = set(small_scenario.deployment.node_ids) - {5, 9}
        rings, stranded = RingsTopology.build_restricted(
            small_scenario.rings.connectivity, alive
        )
        assert 5 not in rings.levels and 9 not in rings.levels
        assert set(rings.levels) | set(stranded) == alive
        rings.validate()
        # Survivors never move closer to the base station.
        for node, level in rings.levels.items():
            assert level >= small_scenario.rings.level(node)

    def test_stranded_nodes_reported(self, small_scenario):
        # Kill every ring-1 node: everything deeper is stranded.
        ring1 = set(small_scenario.rings.nodes_at_level(1))
        alive = set(small_scenario.deployment.node_ids) - ring1
        rings, stranded = RingsTopology.build_restricted(
            small_scenario.rings.connectivity, alive
        )
        assert set(rings.levels) == {BASE_STATION}
        assert set(stranded) == alive - {BASE_STATION}

    def test_base_station_is_immortal(self, small_scenario):
        with pytest.raises(TopologyError):
            RingsTopology.build_restricted(
                small_scenario.rings.connectivity, {1, 2, 3}
            )


class TestRepairTree:
    def test_survivors_keep_parents(self, small_scenario, small_tree):
        rings, _ = RingsTopology.build_restricted(
            small_scenario.rings.connectivity,
            set(small_scenario.deployment.node_ids),
        )
        repaired, report = repair_tree(
            small_tree, rings, small_scenario.deployment
        )
        assert repaired.parents == dict(small_tree.parents)
        assert report.num_reattached == 0 and report.words == 0

    def test_orphans_reattach_to_nearest_live_parent(
        self, small_scenario, small_tree
    ):
        # Kill a parent with children: its whole subtree must re-home.
        children_of = small_tree.children_map()
        victim = max(
            (n for n in small_tree.nodes if n != BASE_STATION),
            key=lambda n: len(children_of[n]),
        )
        orphans = children_of[victim]
        assert orphans, "victim should have children"
        alive = set(small_scenario.deployment.node_ids) - {victim}
        rings, stranded = RingsTopology.build_restricted(
            small_scenario.rings.connectivity, alive
        )
        repaired, report = repair_tree(
            small_tree, rings, small_scenario.deployment
        )
        # Every live reachable node is in the repaired tree; the victim and
        # the stranded are not.
        assert set(repaired.nodes) == set(rings.levels)
        reattached = dict(report.reattached)
        for orphan in orphans:
            if orphan not in rings.levels:
                continue  # stranded by the death
            new_parent = repaired.parents[orphan]
            assert new_parent != victim
            # Nearest live upstream candidate, ties by id.
            candidates = rings.upstream_neighbors(orphan)
            best = min(
                candidates,
                key=lambda p: (
                    small_scenario.deployment.distance(orphan, p),
                    p,
                ),
            )
            assert reattached[orphan] == best == new_parent
        assert report.words == REPAIR_WORDS * report.num_reattached
        assert victim in report.removed
        # Every repaired link is a one-level-up radio link (the TD
        # synchronisation invariant survives repair).
        for child, parent in repaired.parents.items():
            assert rings.level(child) == rings.level(parent) + 1
            assert rings.connectivity.has_edge(child, parent)


class TestDynamicMembership:
    def _membership(self, scenario, tree, model):
        return DynamicMembership(
            model, scenario.deployment, scenario.rings, tree
        )

    def test_advance_applies_deaths_and_bumps_plans(
        self, small_scenario, small_tree
    ):
        model = ScheduledChurn.of(deaths=[(10, [7, 12])])
        membership = self._membership(small_scenario, small_tree, model)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=0)
        version = channel._model_version
        assert membership.advance(0, 0, channel) is None
        update = membership.advance(10, 10, channel)
        assert update is not None
        assert update.died == (7, 12)
        assert 7 not in membership.alive
        assert channel._model_version == version + 1
        assert membership.updates == [update]
        # Repair control messages land in the per-node energy maps.
        charged = {
            node: words
            for node, words in channel.per_node_words().items()
            if words
        }
        assert set(charged) == {c for c, _ in update.repair.reattached}
        assert all(words == REPAIR_WORDS for words in charged.values())

    def test_base_station_never_dies_and_unknown_joins_ignored(
        self, small_scenario, small_tree
    ):
        model = ScheduledChurn.of(
            deaths=[(5, [BASE_STATION])], joins=[(5, [10_000])]
        )
        membership = self._membership(small_scenario, small_tree, model)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=0)
        assert membership.advance(5, 5, channel) is None
        assert BASE_STATION in membership.alive

    def test_overlapping_batch_rejected(self, small_scenario, small_tree):
        class BadModel:
            def events_in(self, start, end, ctx):
                return ChurnBatch(deaths=(3,), joins=(3,))

        membership = self._membership(small_scenario, small_tree, BadModel())
        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=0)
        with pytest.raises(ConfigurationError, match="net state"):
            membership.advance(0, 0, channel)

    def test_blackout_and_rejoin_before_start_is_a_noop(
        self, small_scenario, small_tree
    ):
        # Both events predate the first boundary: the net state is "all
        # alive", not "region permanently dark".
        model = RegionalBlackout(
            epoch=100,
            lower=(0.0, 0.0),
            upper=(10.0, 10.0),
            rejoin_epoch=120,
        )
        membership = self._membership(small_scenario, small_tree, model)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=0)
        assert membership.advance(1000, 0, channel) is None
        assert membership.alive == set(small_scenario.deployment.node_ids)

    def test_lifetime_uses_simulator_energy_model(
        self, small_scenario, small_tree
    ):
        from repro.network.energy import EnergyModel

        model = LifetimeChurn(battery_j=1e-4, overhead_uj_per_epoch=0.0)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=0)
        channel.account_control(3, words=10, messages=1)  # 20 + 40 uJ default
        membership = self._membership(small_scenario, small_tree, model)
        # Default pricing: 60 uJ < 100 uJ battery — node 3 survives.
        assert membership.advance(0, 1, channel) is None
        # The simulator's (expensive) model pushes it over the edge.
        pricey = EnergyModel(per_message_uj=90.0, per_byte_uj=10.0)
        update = membership.advance(10, 11, channel, energy_model=pricey)
        assert update is not None and update.died == (3,)

    def test_rejoin_restores_membership(self, small_scenario, small_tree):
        model = ScheduledChurn.of(
            deaths=[(10, [7])], joins=[(20, [7])]
        )
        membership = self._membership(small_scenario, small_tree, model)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=0)
        membership.advance(10, 10, channel)
        assert 7 not in membership.alive
        update = membership.advance(20, 20, channel)
        assert update.joined == (7,)
        assert 7 in membership.alive and 7 in update.rings.levels
        assert 7 in update.tree.parents


def _build_scheme(name, scenario, tree, aggregate=None):
    aggregate = aggregate or SumAggregate()
    if name == "TAG":
        return TagScheme(scenario.deployment, tree, aggregate)
    if name == "SD":
        return SynopsisDiffusionScheme(
            scenario.deployment, scenario.rings, aggregate
        )
    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 2)
    )
    return TributaryDeltaScheme(
        scenario.deployment, graph, aggregate, policy=TDFinePolicy()
    )


def _run_with_churn(name, scenario, tree, model, use_blocked, epochs=30):
    scheme = _build_scheme(name, scenario, tree)
    membership = DynamicMembership(
        model, scenario.deployment, scenario.rings, tree
    )
    simulator = EpochSimulator(
        scenario.deployment,
        GlobalLoss(0.2),
        scheme,
        seed=1,
        adapt_interval=10,
        use_blocked=use_blocked,
        membership=membership,
    )
    run = simulator.run(epochs, UniformReadings(10, 100, seed=1))
    return run, membership, scheme


def _run_fingerprint(run):
    return [
        (
            result.epoch,
            result.estimate,
            result.true_value,
            result.contributing,
            result.contributing_estimate,
            result.log.transmissions,
            result.log.deliveries,
            result.log.drops,
            result.log.words_sent,
            result.log.messages_sent,
            sorted(result.extra.items(), key=lambda kv: kv[0]),
        )
        for result in run.epochs
    ]


class TestSimulatorChurn:
    @pytest.mark.parametrize("name", ["TAG", "SD", "TD"])
    def test_blocked_equals_per_epoch_under_churn(
        self, name, small_scenario, small_tree
    ):
        model = RandomDeaths(epoch=10, count=12, seed=2)
        blocked, _, _ = _run_with_churn(
            name, small_scenario, small_tree, model, use_blocked=True
        )
        looped, _, _ = _run_with_churn(
            name, small_scenario, small_tree, model, use_blocked=False
        )
        assert _run_fingerprint(blocked) == _run_fingerprint(looped)

    def test_truth_follows_live_population(self, small_scenario, small_tree):
        model = ScheduledChurn.of(deaths=[(10, [3, 4, 5])])
        run, membership, scheme = _run_with_churn(
            "TAG",
            small_scenario,
            small_tree,
            model,
            use_blocked=True,
        )
        num = small_scenario.deployment.num_sensors
        assert [r.extra["alive_sensors"] for r in run.epochs[:10]] == [num] * 10
        assert all(
            r.extra["alive_sensors"] == num - 3 for r in run.epochs[10:]
        )
        # Ground truth is computed over the survivors only.
        readings = UniformReadings(10, 100, seed=1)
        alive = sorted(membership.alive - {BASE_STATION})
        expected = sum(readings(node, 29) for node in alive)
        assert run.epochs[29].true_value == pytest.approx(expected)

    def test_reattaches_every_orphaned_live_node(
        self, medium_scenario, medium_tree
    ):
        model = RandomDeaths(epoch=10, count=30, seed=5)
        _, membership, scheme = _run_with_churn(
            "TD", medium_scenario, medium_tree, model, use_blocked=True
        )
        assert membership.updates, "churn should have fired"
        update = membership.updates[-1]
        live_reachable = set(update.rings.levels)
        assert set(update.tree.nodes) == live_reachable
        for node in live_reachable - {BASE_STATION}:
            assert node in update.tree.parents
        # The TD graph was rebuilt over the repaired topology and still
        # satisfies edge correctness (Property 1).
        scheme.graph.validate()
        assert set(scheme.graph.modes()) == live_reachable

    def test_repair_energy_counted_in_totals(
        self, small_scenario, small_tree
    ):
        # Kill a node with children so repair definitely fires.
        children_of = small_tree.children_map()
        victim = max(
            (n for n in small_tree.nodes if n != BASE_STATION),
            key=lambda n: len(children_of[n]),
        )
        model = ScheduledChurn.of(deaths=[(10, [victim])])
        run, membership, _ = _run_with_churn(
            "TAG", small_scenario, small_tree, model, use_blocked=True
        )
        repair = membership.updates[0].repair
        assert repair.words > 0
        epoch_words = sum(r.log.words_sent for r in run.epochs)
        epoch_messages = sum(r.log.messages_sent for r in run.epochs)
        # The energy totals include the repair bill on top of the per-epoch
        # logs, consistent with the per-node load maps.
        assert run.energy.total_words == epoch_words + repair.words
        assert run.energy.total_messages == epoch_messages + repair.messages

    def test_churn_requires_membership_hook(self, small_scenario, small_tree):
        class Hookless:
            name = "hookless"

            def run_epoch(self, epoch, channel, readings):
                raise NotImplementedError

            def exact_answer(self, epoch, readings):
                return 0.0

            def adapt(self, epoch, outcome):
                pass

        membership = DynamicMembership(
            RandomDeaths(5, 2),
            small_scenario.deployment,
            small_scenario.rings,
            small_tree,
        )
        with pytest.raises(ConfigurationError, match="on_membership_change"):
            EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.0),
                Hookless(),
                membership=membership,
            )

    def test_lifetime_churn_triggers_deaths(self, small_scenario, small_tree):
        model = LifetimeChurn(battery_j=0.0005, overhead_uj_per_epoch=0.0)
        run, membership, _ = _run_with_churn(
            "TAG", small_scenario, small_tree, model, use_blocked=True
        )
        assert membership.updates, "the battery should have run out"
        assert membership.updates[0].died
        assert run.epochs[-1].extra["alive_sensors"] < (
            small_scenario.deployment.num_sensors
        )


class TestChurnEndToEnd:
    def test_session_runs_churn_config(self):
        config = RunConfig(
            scheme="TD",
            num_sensors=60,
            epochs=20,
            converge_epochs=8,
            failure="global:0.2",
            aggregate="sum",
            reading="uniform:10:100:0",
            churn="deaths:1005:10:1",
        )
        report = Session().run(config)
        assert len(report.result.epochs) == 20
        alive = [r.extra["alive_sensors"] for r in report.result.epochs]
        assert alive[0] == 60 and alive[-1] == 50
        # The digest sees the churn axis: same run without churn is a
        # different cache key.
        assert config_digest(config) != config_digest(
            config.replace(churn="none")
        )

    def test_describe_churn_timeline(self):
        config = describe_experiment("churn_timeline")
        assert config.churn.startswith("blackout:")
        assert RunConfig.from_json(config.to_json()) == config

    def test_sweep_spec_carries_churn(self, tmp_path):
        spec = SweepSpec(
            scheme="TAG",
            seed=1,
            failure="global:0.2",
            num_sensors=60,
            epochs=10,
            converge_epochs=0,
            churn="deaths:1000:8:1",
        )
        runner = SweepRunner(jobs=None, cache_dir=tmp_path)
        first = runner.run([spec])
        second = runner.run([spec])  # cache hit
        assert _run_fingerprint(first[0]) == _run_fingerprint(second[0])
        assert first[0].epochs[-1].extra["alive_sensors"] == 52

    def test_quick_churn_timeline_experiment(self):
        result = run_churn_timeline(quick=True, seed=0)
        assert set(result.relative_errors) == {"TAG", "SD", "TD-Coarse", "TD"}
        for name, alive in result.alive_series.items():
            assert min(alive) < 150, name
            assert alive[-1] == 150, "the blackout region rejoined"
        assert all(count > 0 for count in result.reattached.values())
        assert "blackout" in result.render() or "healthy" in result.render()


#: sha256 over the full result fingerprint of the seed revision (pre-churn
#: engine), keyed by "scheme|failure". Recorded from commit 4893711.
GOLDEN_DIGESTS = {
    "TAG|none": "4bd448aa8a688c24689d101bc959b99ddc1dd404048325fe0eb77a757e0fdf7c",
    "TAG|global:0.3": "39662a49fa19947f10d855cbd64d2aa3b9661988c90e3f98d766f817569382d8",
    "SD|none": "378762df41c37bd8da3b2eaaaa4f74abf9ec3f47bb063228f941ea2abb10b867",
    "SD|global:0.3": "bbd4ddc5bcef4f7fee16b53302fd12cb7b32a09e2abc5f1260837b511200fea5",
    "TD-Coarse|none": "4bd448aa8a688c24689d101bc959b99ddc1dd404048325fe0eb77a757e0fdf7c",
    "TD-Coarse|global:0.3": "a70260bd56a5f4b5f6149116501c14941992690a70f888bb95d1b3746df6bd51",
    "TD|none": "4bd448aa8a688c24689d101bc959b99ddc1dd404048325fe0eb77a757e0fdf7c",
    "TD|global:0.3": "cf624e4744f584e6c325388b5386a9ebcd198b20ee0e1d1f1bc64730e48bcf15",
}


def _digest(result):
    payload = repr(
        (
            [e.estimate for e in result.epochs],
            [e.contributing for e in result.epochs],
            [e.contributing_estimate for e in result.epochs],
            [
                (
                    e.log.transmissions,
                    e.log.deliveries,
                    e.log.drops,
                    e.log.words_sent,
                    e.log.messages_sent,
                )
                for e in result.epochs
            ],
            sorted(result.energy.per_node_uj.items()),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class TestChurnDisabledByteIdentity:
    """With churn off, results are byte-identical to the pre-churn engine."""

    @pytest.mark.parametrize("failure", ["none", "global:0.3"])
    @pytest.mark.parametrize("scheme", ["TAG", "SD", "TD-Coarse", "TD"])
    def test_golden_digests(self, scheme, failure):
        config = RunConfig(
            scheme=scheme,
            failure=failure,
            num_sensors=60,
            epochs=12,
            converge_epochs=10,
            aggregate="sum",
            reading="uniform:10:100:0",
            seed=1,
            scenario_seed=0,
        )
        result = Session().run(config).result
        assert _digest(result) == GOLDEN_DIGESTS[f"{scheme}|{failure}"]
