"""Backend registry + fused-kernel parity tests.

The fused array path (``repro.kernels``) must be invisible in results: every
backend produces bit-identical estimates, synopsis wire words, per-epoch log
counters and per-node energy billing. Three layers pin that:

* registry semantics — explicit name > ``REPRO_KERNEL_BACKEND`` > ``pure``
  default, unknown/unloadable *requested* backends fail loudly, instances
  memoized by name (the backend-keyed cache contract);
* primitive parity — each :class:`KernelBackend` primitive against a
  straightforward scalar reference (``rle_words`` against the proven
  ``_packed_rle_words`` walk);
* scheme parity — every scheme x loss {0, 0.3, 1} x adaptation through the
  declarative config path, fused backend vs the ``object`` engine, plus a
  direct fused-vs-scalar (``use_batch=False``) oracle comparison.

``numba`` cases auto-skip when numba is not installed; requesting it then
must raise, never silently substitute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.sum_ import SumAggregate
from repro.api import EngineOptions, RunConfig, run_config_result
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import UniformReadings
from repro.datasets.synthetic import make_synthetic_scenario
from repro.errors import ConfigurationError
from repro.kernels import (
    BACKEND_ENV_VAR,
    backend_available,
    backend_names,
    get_backend,
    validate_backend_name,
)
from repro.multipath.fm import (
    FMSketch,
    _correction_table,
    _packed_rle_words,
    _packed_rle_words_cached,
    sketch_to_row,
)
from repro.network.failures import GlobalLoss
from repro.network.links import Channel
from repro.tree.construction import build_bushy_tree

#: Fused backends under test; numba legs skip when the import is missing.
FUSED_BACKENDS = [
    pytest.param("pure", id="pure"),
    pytest.param(
        "numba",
        id="numba",
        marks=pytest.mark.skipif(
            not backend_available("numba"), reason="numba not installed"
        ),
    ),
]


# -- registry semantics -----------------------------------------------------


def test_registry_names_and_default(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert backend_names() == ["numba", "object", "pure"]
    backend = get_backend()
    assert backend.name == "pure"
    assert backend.fused
    assert not get_backend("object").fused


def test_instances_memoized_by_name():
    assert get_backend("pure") is get_backend("pure")
    assert get_backend("object") is get_backend("object")
    assert get_backend("pure") is not get_backend("object")


def test_unknown_backend_raises():
    with pytest.raises(ConfigurationError):
        validate_backend_name("vulkan")
    with pytest.raises(ConfigurationError):
        get_backend("vulkan")
    with pytest.raises(ConfigurationError):
        EngineOptions(backend="vulkan")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "object")
    assert get_backend().name == "object"
    # An explicit name always beats the environment.
    assert get_backend("pure").name == "pure"
    monkeypatch.setenv(BACKEND_ENV_VAR, "vulkan")
    with pytest.raises(ConfigurationError):
        get_backend()


@pytest.mark.skipif(
    backend_available("numba"), reason="numba installed: request must succeed"
)
def test_requested_numba_without_numba_raises(monkeypatch):
    with pytest.raises(ConfigurationError):
        get_backend("numba")
    monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
    with pytest.raises(ConfigurationError):
        get_backend()


def test_engine_options_config_round_trip():
    config = RunConfig(
        scheme="SD",
        num_sensors=40,
        epochs=2,
        engine=EngineOptions(backend="object"),
    )
    payload = config.to_jsonable()
    assert payload["version"] == 4
    assert payload["engine"] == {"backend": "object"}
    assert RunConfig.from_jsonable(payload) == config
    # All-default engine normalizes away and keeps the older schema version.
    bare = RunConfig(scheme="SD", num_sensors=40, epochs=2)
    assert "engine" not in bare.to_jsonable()
    assert bare.to_jsonable()["version"] == 2


# -- primitive parity -------------------------------------------------------


@pytest.mark.parametrize("backend_name", FUSED_BACKENDS)
def test_or_reduce_matches_loop(backend_name):
    backend = get_backend(backend_name)
    rng = np.random.default_rng(7)
    matrix = rng.integers(0, 1 << 32, size=(17, 5), dtype=np.uint32)
    starts = np.array([0, 3, 4, 9], dtype=np.int64)
    stops = np.array([3, 4, 9, 17], dtype=np.int64)
    got = backend.or_reduce(matrix, starts)
    for row, (start, stop) in enumerate(zip(starts, stops)):
        expect = np.bitwise_or.reduce(matrix[start:stop], axis=0)
        assert (got[row] == expect).all()
    assert backend.or_reduce(matrix[:0], np.zeros(0, dtype=np.int64)).shape[0] == 0


@pytest.mark.parametrize("backend_name", FUSED_BACKENDS)
def test_scatter_primitives_match_loop(backend_name):
    backend = get_backend(backend_name)
    rng = np.random.default_rng(11)
    dest_or = rng.integers(0, 1 << 32, size=(6, 4), dtype=np.uint32)
    expect_or = dest_or.copy()
    rows = np.array([4, 1, 2], dtype=np.int64)
    values = rng.integers(0, 1 << 32, size=(3, 4), dtype=np.uint32)
    backend.or_into(dest_or, rows, values)
    for row, value in zip(rows, values):
        expect_or[row] |= value
    assert (dest_or == expect_or).all()

    dest_add = rng.integers(0, 100, size=(6, 4)).astype(np.int64)
    expect_add = dest_add.copy()
    dup_rows = np.array([2, 0, 2, 2], dtype=np.int64)  # repeats must stack
    addends = rng.integers(0, 100, size=(4, 4)).astype(np.int64)
    backend.add_into(dest_add, dup_rows, addends)
    for row, value in zip(dup_rows, addends):
        expect_add[row] += value
    assert (dest_add == expect_add).all()


@pytest.mark.parametrize("backend_name", FUSED_BACKENDS)
def test_any_reduce_handles_empty_segments(backend_name):
    backend = get_backend(backend_name)
    rng = np.random.default_rng(13)
    flags = rng.random((9, 6)) < 0.3
    starts = np.array([0, 2, 2, 7], dtype=np.int64)
    stops = np.array([2, 2, 7, 9], dtype=np.int64)
    got = backend.any_reduce(flags, starts, stops)
    for row, (start, stop) in enumerate(zip(starts, stops)):
        expect = flags[start:stop].any(axis=0) if stop > start else np.zeros(6, bool)
        assert (got[row] == expect).all()


@pytest.mark.parametrize("backend_name", FUSED_BACKENDS)
def test_rle_words_matches_scalar_walk(backend_name):
    backend = get_backend(backend_name)
    sketches = []
    for seed in range(40):
        sketch = FMSketch(8)
        for item in range(seed % 5):
            sketch.insert("parity", seed, item)
        if seed % 7 == 0:
            sketch.insert_count(seed * 3, "bulk", seed)
        sketches.append(sketch)
    matrix = np.stack([sketch_to_row(sketch) for sketch in sketches])
    got = backend.rle_words(matrix, 32)
    expect = [sketch.words() for sketch in sketches]
    assert got.tolist() == expect


# -- scheme parity ----------------------------------------------------------


def _run_fields(result):
    rows = []
    for epoch in result.epochs:
        rows.append(
            (
                epoch.epoch,
                epoch.estimate,
                epoch.contributing,
                epoch.contributing_estimate,
                epoch.extra,
                epoch.log.transmissions,
                epoch.log.deliveries,
                epoch.log.drops,
                epoch.log.words_sent,
                epoch.log.messages_sent,
            )
        )
    return rows


@pytest.mark.parametrize("backend_name", FUSED_BACKENDS)
@pytest.mark.parametrize("failure", ["none", "global:0.3", "global:1.0"])
@pytest.mark.parametrize("scheme", ["TAG", "SD", "TD-Coarse", "TD"])
def test_scheme_parity_vs_object_engine(scheme, failure, backend_name):
    """Fused backend vs the object engine: identical results and billing.

    The TD schemes run their registry adaptation cadence (adapt every 10
    epochs after stabilisation), so the comparison covers block splitting
    at adaptation boundaries, not just one long block.
    """
    base = dict(
        scheme=scheme,
        failure=failure,
        aggregate="sum",
        reading="uniform:10:100:0",
        num_sensors=60,
        epochs=12,
        converge_epochs=12,
        seed=3,
    )
    fused = run_config_result(
        RunConfig(engine=EngineOptions(backend=backend_name), **base)
    )
    oracle = run_config_result(
        RunConfig(engine=EngineOptions(backend="object"), **base)
    )
    assert _run_fields(fused) == _run_fields(oracle)
    assert fused.energy.per_node_uj == oracle.energy.per_node_uj


@pytest.mark.parametrize("backend_name", FUSED_BACKENDS)
def test_fused_blocks_match_scalar_oracle(backend_name):
    """run_epochs (fused) vs the untouched ``use_batch=False`` scalar path.

    The scalar per-payload loop is the PR-1 byte-identity oracle; the fused
    block path must reproduce its outcomes, per-epoch logs and per-node
    billing exactly — here for all three scheme families on one lossy
    scenario.
    """
    scenario = make_synthetic_scenario(num_sensors=50, seed=5)
    tree = build_bushy_tree(scenario.rings, seed=5)
    readings = UniformReadings(10, 100, seed=5)
    failure = GlobalLoss(0.3)
    epochs = list(range(8))

    def build(use_batch):
        graph = TDGraph(
            scenario.rings, tree, initial_modes_by_level(scenario.rings, 1)
        )
        return {
            "TAG": TagScheme(
                scenario.deployment,
                tree,
                SumAggregate(),
                use_batch=use_batch,
                kernel_backend=backend_name,
            ),
            "SD": SynopsisDiffusionScheme(
                scenario.deployment,
                scenario.rings,
                SumAggregate(),
                use_batch=use_batch,
                kernel_backend=backend_name,
            ),
            "TD": TributaryDeltaScheme(
                scenario.deployment,
                graph,
                SumAggregate(),
                use_batch=use_batch,
                kernel_backend=backend_name,
            ),
        }

    fused_schemes = build(True)
    scalar_schemes = build(False)
    for name, fused_scheme in fused_schemes.items():
        fused_channel = Channel(scenario.deployment, failure, seed=9)
        fused_rows = fused_scheme.run_epochs(epochs, fused_channel, readings)

        scalar_scheme = scalar_schemes[name]
        scalar_channel = Channel(scenario.deployment, failure, seed=9)
        scalar_rows = []
        for epoch in epochs:
            scalar_channel.reset_log()
            outcome = scalar_scheme.run_epoch(epoch, scalar_channel, readings)
            scalar_rows.append((outcome, scalar_channel.reset_log()))

        assert len(fused_rows) == len(scalar_rows), name
        for (fo, fl), (so, sl) in zip(fused_rows, scalar_rows):
            assert fo == so, name
            assert fl == sl, name
        assert (
            fused_channel._per_node_words == scalar_channel._per_node_words
        ), name
        assert (
            fused_channel._per_node_messages == scalar_channel._per_node_messages
        ), name


# -- backend-keyed caches (bugfix ride-along) -------------------------------


def test_correction_table_normalizes_numpy_keys():
    """numpy-typed shape args must hit the same cache entry as builtin ints.

    Packed matrices hand numpy scalars to the sizing/estimation helpers; a
    numpy-keyed twin entry would fork the shared correction table (and let
    one caller's dtype poison another's lookup). Identity, not equality:
    the same tuple object proves a single cache slot.
    """
    base = _correction_table(40, 32)
    assert _correction_table(np.int64(40), np.uint32(32)) is base


def test_rle_cache_normalizes_numpy_keys():
    sketch = FMSketch(8)
    sketch.insert_count(17, "cache", 1)
    builtin_words = _packed_rle_words(sketch._packed, 8, 32)
    assert builtin_words == sketch.words()
    size_before = _packed_rle_words_cached.cache_info().currsize
    numpy_words = _packed_rle_words(sketch._packed, np.int64(8), np.int64(32))
    assert numpy_words == builtin_words
    assert isinstance(numpy_words, int)
    # Same key as the builtin-int call: no numpy-typed twin entry appeared.
    assert _packed_rle_words_cached.cache_info().currsize == size_before
