"""Tests for deployments and placements."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.placement import (
    BASE_STATION,
    Deployment,
    grid_random_placement,
    placement_from_points,
)


class TestGridRandomPlacement:
    def test_counts(self):
        deployment = grid_random_placement(100)
        assert deployment.num_sensors == 100
        assert len(deployment) == 101

    def test_base_station_defaults_to_centre(self):
        deployment = grid_random_placement(10, width=20, height=20)
        assert deployment.position(BASE_STATION) == (10.0, 10.0)

    def test_positions_inside_area(self):
        deployment = grid_random_placement(200, width=20, height=30, seed=3)
        for node in deployment.sensor_ids:
            x, y = deployment.position(node)
            assert 0 <= x <= 20
            assert 0 <= y <= 30

    def test_deterministic_in_seed(self):
        a = grid_random_placement(50, seed=5)
        b = grid_random_placement(50, seed=5)
        assert a.positions == b.positions

    def test_seed_changes_layout(self):
        a = grid_random_placement(50, seed=5)
        b = grid_random_placement(50, seed=6)
        assert a.positions != b.positions

    def test_rejects_zero_sensors(self):
        with pytest.raises(ConfigurationError):
            grid_random_placement(0)


class TestDeployment:
    def test_requires_base_station(self):
        with pytest.raises(ConfigurationError):
            Deployment(positions={1: (0.0, 0.0)}, width=1, height=1)

    def test_rejects_empty_area(self):
        with pytest.raises(ConfigurationError):
            Deployment(positions={0: (0.0, 0.0)}, width=0, height=1)

    def test_distance(self):
        deployment = placement_from_points(
            [(3.0, 4.0)], base_position=(0.0, 0.0), width=10, height=10
        )
        assert deployment.distance(0, 1) == pytest.approx(5.0)

    def test_nodes_in_rect(self):
        deployment = placement_from_points(
            [(1.0, 1.0), (5.0, 5.0), (9.0, 9.0)],
            base_position=(5.0, 5.0),
            width=10,
            height=10,
        )
        inside = deployment.nodes_in_rect((0, 0), (6, 6))
        assert inside == [1, 2]

    def test_nodes_in_rect_include_base(self):
        deployment = placement_from_points(
            [(1.0, 1.0)], base_position=(2.0, 2.0), width=10, height=10
        )
        inside = deployment.nodes_in_rect((0, 0), (3, 3), include_base=True)
        assert inside == [0, 1]

    def test_sensor_ids_exclude_base(self):
        deployment = grid_random_placement(5)
        assert BASE_STATION not in deployment.sensor_ids
        assert len(deployment.sensor_ids) == 5

    @given(st.integers(min_value=1, max_value=40))
    def test_iteration_covers_all_nodes(self, n):
        deployment = grid_random_placement(n, seed=1)
        assert sorted(deployment) == sorted(deployment.node_ids)
