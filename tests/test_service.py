"""E2E suite for the aggregation service: real HTTP against a live server.

The load-bearing assertions, in paper terms:

* ``TestSharedPass`` — two subscribed clients (``avg`` and ``count``) are
  served from **one** shared in-network pass: their combined billed words
  are strictly below the sum of the two standalone one-shot runs, and the
  ``avg`` client's estimates are byte-identical to its standalone run
  (the planner serves ``avg`` as a ratio of shared ``sum``/``count``
  slots, an exact decomposition — not an approximation).
* ``TestRunCache`` — identical ``POST /run`` configs fan out of the
  session's bounded LRU (one execution, then hits).
* ``TestRejections`` — over-budget submissions get 413, malformed bodies
  and unknown aggregates 400, run-configs for a different scenario 409.
* ``TestEviction`` — a client that disconnects mid-stream has its queries
  evicted at the next block boundary (slots drop out of ``GET /stats``).
* ``TestShutdown`` — ``POST /shutdown`` drains the in-flight block and
  writes the final checkpoint.
"""

from __future__ import annotations

import json
import http.client
import threading
import time

import pytest

from repro.api import RunConfig, Session
from repro.serialization import to_jsonable
from repro.service import AggregationServer

#: The served scenario: small and non-adaptive for speed. Non-adaptive
#: schemes default to 10-epoch blocks.
SCENARIO = dict(
    scheme="TAG",
    failure="global:0.2",
    num_sensors=24,
    converge_epochs=0,
    reading="uniform:10:100:0",
    epochs=0,
)
BLOCK = 10


def _config(**overrides) -> RunConfig:
    merged = dict(SCENARIO)
    merged.update(overrides)
    return RunConfig(**merged)


def _post(port, path, body, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    if isinstance(body, (dict, list)):
        body = json.dumps(body)
    conn.request("POST", path, body=body)
    return conn, conn.getresponse()


def _get_json(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    conn.request("GET", path)
    payload = json.loads(conn.getresponse().read())
    conn.close()
    return payload


def _drain_stream(response):
    """All NDJSON lines of a subscription stream, parsed."""
    lines = []
    while True:
        line = response.readline()
        if not line:
            break
        lines.append(json.loads(line))
        if lines[-1].get("type") == "closed":
            break
    return lines


def _subscribe(port, queries, epochs):
    body = {"type": "query-submit", "version": 1, "queries": queries}
    if epochs is not None:
        body["epochs"] = epochs
    return _post(port, "/queries", body)


@pytest.fixture(scope="module")
def server():
    server = AggregationServer(_config(), checkpoint_dir=None)
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def port(server):
    return server.address[1]


class TestBasics:
    def test_health(self, port):
        assert _get_json(port, "/health") == {"status": "ok"}

    def test_unknown_path_404(self, port):
        conn, response = _post(port, "/nope", b"")
        assert response.status == 404
        conn.close()

    def test_stats_shape(self, port):
        stats = _get_json(port, "/stats")
        assert stats["type"] == "service-stats"
        assert set(stats) >= {"engine", "admission", "planner", "session_cache"}
        assert stats["session_cache"]["capacity"] == 128

    def test_select_one_liner(self, port):
        conn, response = _post(port, "/queries", b"SELECT count LIMIT 3")
        # LIMIT is not query syntax here; a plain SELECT with an epoch
        # limit needs the query-submit form — this must 400, not hang.
        assert response.status == 400
        conn.close()
        conn, response = _subscribe(
            port, [{"name": "c", "query": "SELECT count"}], epochs=2
        )
        lines = _drain_stream(response)
        conn.close()
        assert lines[0]["type"] == "subscribed"
        assert lines[0]["queries"] == {"c": ["SELECT count"]}
        records = [l for l in lines if l["type"] == "epoch-record"]
        assert len(records) == 2
        assert lines[-1] == {"type": "closed", "reason": "complete"}
        for record in records:
            answer = record["results"]["c"]
            assert answer["truth"] == float(SCENARIO["num_sensors"])


class TestSharedPass:
    """The acceptance scenario: N concurrent clients, one network pass."""

    def test_two_clients_bill_below_standalone_sum(self):
        config = _config()
        # Standalone baselines through the one-shot API, same scenario.
        session = Session()
        standalone = {}
        for name, query in (("avg", "SELECT avg"), ("count", "SELECT count")):
            report = session.run(config.replace(query=query, epochs=BLOCK))
            standalone[name] = report.result
        standalone_words = sum(
            epoch.log.words_sent
            for result in standalone.values()
            for epoch in result.epochs
        )

        # Bring up HTTP only; start the engine once both clients are
        # pending, so both deterministically join the first block.
        server = AggregationServer(config)
        port = server.start(start_engine=False)[1]
        try:
            streams = {}

            def subscribe(name, query):
                conn, response = _subscribe(
                    port, [{"name": name, "query": query}], epochs=BLOCK
                )
                response.readline()  # the "subscribed" header: registered
                streams[name] = (conn, response)

            threads = [
                threading.Thread(target=subscribe, args=("avg", "SELECT avg")),
                threading.Thread(
                    target=subscribe, args=("count", "SELECT count")
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert _get_json(port, "/stats")["engine"]["subscribers"] == 2
            server.engine.start()

            records = {}
            for name, (conn, response) in streams.items():
                lines = _drain_stream(response)
                conn.close()
                assert lines[-1]["reason"] == "complete"
                records[name] = [
                    l for l in lines if l["type"] == "epoch-record"
                ]
            stats = _get_json(port, "/stats")
        finally:
            server.close()

        for name in records:
            assert len(records[name]) == BLOCK

        # One shared pass: both clients were billed the same per-epoch
        # words, so the combined bill is one client's worth of epochs —
        # strictly below the two standalone runs added together.
        avg_words = [r["words"] for r in records["avg"]]
        count_words = [r["words"] for r in records["count"]]
        assert avg_words == count_words
        combined_words = sum(avg_words)
        assert combined_words < standalone_words

        # Exactness: the avg client's estimates are byte-identical to the
        # standalone avg run (shared sum/count slots, exact ratio).
        service_avg = [r["results"]["avg"]["estimate"] for r in records["avg"]]
        assert service_avg == standalone["avg"].estimates
        service_count = [
            r["results"]["count"]["estimate"] for r in records["count"]
        ]
        assert service_count == standalone["count"].estimates

        # The count client shared avg's count slot: only two slots ever
        # existed (sum, count) and one acquire landed on a live slot.
        assert stats["planner"]["shared_acquires"] >= 1
        assert stats["admission"]["admitted"] == 2


class TestRunCache:
    def test_identical_configs_fan_out_of_the_cache(self, server, port):
        config = _config(query="SELECT sum", epochs=3)
        payload = to_jsonable(config)
        reports = []
        for _ in range(3):
            conn, response = _post(port, "/run", payload)
            assert response.status == 200
            reports.append(json.loads(response.read()))
            conn.close()
        assert reports[0] == reports[1] == reports[2]
        cache = _get_json(port, "/stats")["session_cache"]
        assert cache["hits"] >= 2
        assert cache["misses"] >= 1
        assert cache["size"] >= 1

    def test_run_rejects_non_config_payloads(self, port):
        conn, response = _post(port, "/run", {"type": "query-submit"})
        assert response.status == 400
        conn.close()


class TestRejections:
    def test_over_budget_is_413(self):
        server = AggregationServer(_config(), budget_words=1)
        port = server.start()[1]
        try:
            conn, response = _subscribe(
                port, [{"name": "s", "query": "SELECT sum"}], epochs=1
            )
            assert response.status == 413
            assert "budget" in json.loads(response.read())["error"]
            conn.close()
            stats = _get_json(port, "/stats")
            assert stats["admission"]["rejected"] == 1
            assert stats["engine"]["subscribers"] == 0
        finally:
            server.close()

    def test_malformed_body_is_400(self, port):
        conn, response = _post(port, "/queries", b"{not json")
        assert response.status == 400
        conn.close()

    def test_unknown_aggregate_is_400(self, port):
        conn, response = _subscribe(
            port, [{"name": "x", "aggregate": "mode"}], epochs=1
        )
        assert response.status == 400
        conn.close()

    def test_scenario_mismatch_is_409(self, port):
        other = _config(num_sensors=99, query="SELECT count", epochs=2)
        conn, response = _post(port, "/queries", to_jsonable(other))
        assert response.status == 409
        assert "num_sensors" in json.loads(response.read())["error"]
        conn.close()

    def test_matching_run_config_subscribes(self, port):
        mine = _config(query="SELECT count", epochs=2)
        conn, response = _post(port, "/queries", to_jsonable(mine))
        assert response.status == 200
        lines = _drain_stream(response)
        conn.close()
        assert lines[-1] == {"type": "closed", "reason": "complete"}
        assert len([l for l in lines if l["type"] == "epoch-record"]) == 2


class TestEviction:
    def test_disconnect_evicts_at_next_boundary(self, server, port):
        conn, response = _subscribe(
            port, [{"name": "q", "query": "SELECT quantiles"}], epochs=None
        )
        assert response.status == 200
        lines = [json.loads(response.readline()) for _ in range(3)]
        assert lines[0]["type"] == "subscribed"
        assert lines[1]["type"] == "epoch-record"
        conn.close()  # mid-stream: the server must notice and evict

        deadline = time.time() + 60
        while time.time() < deadline:
            stats = _get_json(port, "/stats")
            gone = stats["engine"]["subscribers"] == 0 and not any(
                "quantiles" in key for key in stats["planner"]["keys"]
            )
            if gone:
                break
            time.sleep(0.2)
        assert gone, f"stale subscription after disconnect: {stats}"


class TestBoundedQueues:
    def test_push_drops_oldest_when_full(self):
        from repro.service.streams import EpochRecord, Subscriber

        subscriber = Subscriber(1, [], None, max_queue=3)
        for epoch in range(5):
            subscriber.push(EpochRecord(epoch=epoch, results={}, words=1))
        assert subscriber.delivered == 5
        assert subscriber.dropped == 2
        subscriber.close("complete")
        # The sentinel never blocks: it evicts one more from the full queue.
        assert subscriber.dropped == 3
        items = list(subscriber.records(timeout=0.1))
        assert [record.epoch for record in items[:-1]] == [3, 4]
        assert items[-1] == "complete"

    def test_drained_queue_closes_without_dropping(self):
        from repro.service.streams import EpochRecord, Subscriber

        subscriber = Subscriber(2, [], None, max_queue=3)
        subscriber.push(EpochRecord(epoch=0, results={}, words=1))
        subscriber.close("complete")
        assert subscriber.dropped == 0

    def test_dropped_records_surface_on_stats(self, tmp_path):
        from repro.service.engine import AggregationService
        from repro.service.streams import parse_submission

        engine = AggregationService(_config(), block_epochs=BLOCK)
        submit, _ = parse_submission(b"SELECT SUM")
        subscriber = engine.subscribe(submit)
        subscriber._queue.maxsize = 3  # shrink the bound for the test
        for _ in range(2):
            engine.run_block()
        live = engine.stats()["engine"]["records_dropped"]
        assert live == subscriber.dropped == 2 * BLOCK - 3
        engine.release(subscriber)
        # Released subscribers fold into the settled counter.
        assert engine.stats()["engine"]["records_dropped"] == live
        engine.shutdown()


class TestResumeAndStorage:
    def _engine(self, tmp_path, **kwargs):
        from repro.service.engine import AggregationService

        config = _config(storage=f"jsonl:{tmp_path / 'spill'}")
        return config, AggregationService(
            config, checkpoint_dir=str(tmp_path / "ckpt"), **kwargs
        )

    def test_resume_continues_cursor_energy_and_store(self, tmp_path):
        from repro.api import config_digest
        from repro.service.streams import parse_submission
        from repro.storage import count_epochs

        config, engine = self._engine(tmp_path)
        submit, _ = parse_submission(b"SELECT SUM")
        engine.subscribe(submit)
        ran = engine.run_block() + engine.run_block()
        stats = engine.stats()
        assert stats["storage"]["records"] == ran
        assert engine.shutdown() is not None
        cursor = stats["engine"]["cursor"]
        words = stats["engine"]["total_words"]
        energy_uj = engine._energy.total_uj
        digest = config_digest(config)
        assert count_epochs(config.storage, digest) == ran

        _, resumed = self._engine(tmp_path, resume=True)
        stats2 = resumed.stats()
        assert stats2["engine"]["cursor"] == cursor
        assert stats2["engine"]["resumed_from"] == cursor
        assert stats2["engine"]["total_words"] == words
        assert resumed._energy.total_uj == pytest.approx(energy_uj)
        resumed.subscribe(parse_submission(b"SELECT SUM")[0])
        more = resumed.run_block()
        resumed.shutdown()
        # The resumed run appended after the spilled records, not over them.
        assert count_epochs(config.storage, digest) == ran + more

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.service.engine import AggregationService
        from repro.service.streams import parse_submission

        config, engine = self._engine(tmp_path)
        engine.subscribe(parse_submission(b"SELECT SUM")[0])
        engine.run_block()
        engine.shutdown()
        other = _config(num_sensors=30)
        with pytest.raises(ConfigurationError, match="different service"):
            AggregationService(
                other, checkpoint_dir=str(tmp_path / "ckpt"), resume=True
            )

    def test_resume_without_checkpoint_is_fresh(self, tmp_path):
        config, engine = self._engine(tmp_path / "fresh", resume=True)
        stats = engine.stats()
        assert stats["engine"]["resumed_from"] is None
        assert stats["engine"]["cursor"] == config.start_epoch
        engine.shutdown()


class TestShutdown:
    def test_shutdown_writes_checkpoint(self, tmp_path):
        server = AggregationServer(
            _config(), checkpoint_dir=str(tmp_path / "ckpt")
        )
        port = server.start()[1]
        conn, response = _subscribe(
            port, [{"name": "c", "aggregate": "count"}], epochs=2
        )
        lines = _drain_stream(response)
        conn.close()
        assert lines[-1]["reason"] == "complete"

        conn, response = _post(port, "/shutdown", b"")
        payload = json.loads(response.read())
        conn.close()
        assert payload["ok"] is True
        checkpoint = payload["checkpoint"]
        assert checkpoint is not None
        with open(checkpoint) as handle:
            state = json.load(handle)
        assert state  # a real, parseable checkpoint
        server.close()
