"""Session thread-safety and the bounded in-memory result cache.

The service shares one :class:`~repro.api.Session` across HTTP worker
threads, so the session's memory cache must be safe under concurrent
hammering and bounded (an unbounded digest->result map is a slow leak in
a long-running server). These suites pin down:

* LRU semantics: capacity is enforced, evictions hit the oldest entry,
  re-use refreshes recency, and the hit/miss/eviction counters add up;
* determinism under concurrency: 8 threads hammering one session — same
  config or distinct configs — all observe digest-identical reports.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import RunConfig, Session, config_digest
from repro.errors import ConfigurationError
from repro.serialization import to_jsonable


def _config(**overrides) -> RunConfig:
    merged = dict(
        scheme="TAG",
        failure="global:0.2",
        num_sensors=12,
        converge_epochs=0,
        reading="uniform:10:100:0",
        query="SELECT count",
        epochs=3,
    )
    merged.update(overrides)
    return RunConfig(**merged)


def _fingerprint(report) -> str:
    return json.dumps(to_jsonable(report), sort_keys=True)


class TestBoundedCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Session(memory_cache=0)

    def test_lru_evicts_oldest(self):
        session = Session(memory_cache=2)
        configs = [_config(seed=seed) for seed in (1, 2, 3)]
        for config in configs:
            session.run(config)
        stats = session.cache_stats()
        assert stats["size"] == 2
        assert stats["capacity"] == 2
        assert stats["evictions"] == 1
        assert stats["misses"] == 3
        assert stats["hits"] == 0
        # seed=1 was evicted: running it again is a miss (and evicts
        # seed=2, the now-oldest entry); seed=3 is still cached.
        session.run(configs[0])
        assert session.cache_stats()["misses"] == 4
        session.run(configs[2])
        assert session.cache_stats()["hits"] == 1

    def test_reuse_refreshes_recency(self):
        session = Session(memory_cache=2)
        a, b, c = (_config(seed=seed) for seed in (1, 2, 3))
        session.run(a)
        session.run(b)
        session.run(a)  # refresh a: b becomes the eviction candidate
        session.run(c)  # evicts b
        stats = session.cache_stats()
        assert stats["evictions"] == 1
        session.run(a)
        assert session.cache_stats()["hits"] == 2  # a survived
        session.run(b)
        assert session.cache_stats()["misses"] == 4  # b did not

    def test_cached_hit_is_the_same_report(self):
        session = Session(memory_cache=4)
        config = _config()
        first = session.run(config)
        second = session.run(config)
        assert _fingerprint(first) == _fingerprint(second)
        assert session.cache_stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "size": 1,
            "capacity": 4,
        }


class TestConcurrentHammer:
    def _hammer(self, session, configs, rounds=2, threads=8):
        fingerprints = [None] * (threads * rounds)
        errors = []

        def worker(index):
            try:
                for round_no in range(rounds):
                    config = configs[index % len(configs)]
                    report = session.run(config)
                    fingerprints[index * rounds + round_no] = (
                        config_digest(config),
                        _fingerprint(report),
                    )
            except Exception as error:  # surfaced below, with context
                errors.append(error)

        workers = [
            threading.Thread(target=worker, args=(index,))
            for index in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=300)
        assert not errors, errors
        assert all(entry is not None for entry in fingerprints)
        return fingerprints

    def test_same_config_from_eight_threads_is_digest_identical(self):
        session = Session(memory_cache=8)
        config = _config()
        fingerprints = self._hammer(session, [config])
        assert len({fp for _, fp in fingerprints}) == 1
        # Serial ground truth from a fresh session.
        serial = _fingerprint(Session().run(config))
        assert fingerprints[0][1] == serial
        stats = session.cache_stats()
        assert stats["hits"] + stats["misses"] == len(fingerprints)
        assert stats["size"] == 1
        assert stats["evictions"] == 0

    def test_distinct_configs_from_eight_threads(self):
        session = Session(memory_cache=8)
        configs = [_config(seed=seed) for seed in (1, 2, 3, 4)]
        fingerprints = self._hammer(session, configs)
        by_digest = {}
        for digest, fingerprint in fingerprints:
            by_digest.setdefault(digest, set()).add(fingerprint)
        assert len(by_digest) == len(configs)
        for digest, variants in by_digest.items():
            assert len(variants) == 1, f"non-deterministic result {digest}"
        # Each digest's result matches a serial run of that config.
        serial = {
            config_digest(config): _fingerprint(Session().run(config))
            for config in configs
        }
        for digest, variants in by_digest.items():
            assert variants == {serial[digest]}
        stats = session.cache_stats()
        assert stats["hits"] + stats["misses"] == len(fingerprints)
        assert stats["size"] == len(configs)
