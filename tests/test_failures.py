"""Tests for failure models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.network.failures import (
    ComposedLoss,
    FailureSchedule,
    GlobalLoss,
    LinkLossTable,
    NoLoss,
    RegionalLoss,
)
from repro.network.placement import placement_from_points


@pytest.fixture()
def deployment():
    return placement_from_points(
        [(2.0, 2.0), (15.0, 15.0)],
        base_position=(10.0, 10.0),
        width=20,
        height=20,
    )


class TestGlobalLoss:
    def test_uniform(self, deployment):
        model = GlobalLoss(0.3)
        assert model.loss_rate(deployment, 1, 2, 0) == 0.3
        assert model.loss_rate(deployment, 2, 1, 99) == 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GlobalLoss(1.5)


class TestRegionalLoss:
    def test_sender_position_decides(self, deployment):
        model = RegionalLoss(0.8, 0.05)
        # Node 1 at (2, 2) is inside the default {(0,0),(10,10)} rectangle.
        assert model.loss_rate(deployment, 1, 2, 0) == 0.8
        # Node 2 at (15, 15) is outside.
        assert model.loss_rate(deployment, 2, 1, 0) == 0.05

    def test_contains(self, deployment):
        model = RegionalLoss(0.5, 0.0)
        assert model.contains(deployment, 1)
        assert not model.contains(deployment, 2)

    def test_bad_rectangle(self):
        with pytest.raises(ConfigurationError):
            RegionalLoss(0.1, 0.1, lower=(5, 5), upper=(1, 1))


class TestFailureSchedule:
    def test_phase_selection(self, deployment):
        schedule = FailureSchedule(
            [(0, GlobalLoss(0.0)), (100, GlobalLoss(0.3)), (200, GlobalLoss(0.1))]
        )
        assert schedule.loss_rate(deployment, 1, 2, 50) == 0.0
        assert schedule.loss_rate(deployment, 1, 2, 100) == 0.3
        assert schedule.loss_rate(deployment, 1, 2, 150) == 0.3
        assert schedule.loss_rate(deployment, 1, 2, 999) == 0.1

    def test_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule([(10, GlobalLoss(0.1))])

    def test_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule([(0, GlobalLoss(0.1)), (50, NoLoss()), (20, NoLoss())])


class TestLinkLossTable:
    def test_lookup_and_default(self, deployment):
        table = LinkLossTable(rates={(1, 2): 0.4}, default=0.1)
        assert table.loss_rate(deployment, 1, 2, 0) == 0.4
        assert table.loss_rate(deployment, 2, 1, 0) == 0.1


class TestComposedLoss:
    def test_survival_multiplies(self, deployment):
        composed = ComposedLoss(base_rates={(1, 2): 0.2}, failure=GlobalLoss(0.5))
        # 1 - (1 - 0.2)(1 - 0.5) = 0.6
        assert composed.loss_rate(deployment, 1, 2, 0) == pytest.approx(0.6)

    def test_no_base_rate(self, deployment):
        composed = ComposedLoss(base_rates={}, failure=GlobalLoss(0.5))
        assert composed.loss_rate(deployment, 1, 2, 0) == pytest.approx(0.5)
