"""Tests for link-quality monitoring and topology maintenance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.streams import ConstantReadings
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss, LinkLossTable, NoLoss
from repro.network.links import Channel
from repro.network.linkquality import (
    LinkQualityMonitor,
    ParentSwitch,
    TreeMaintainer,
    feed_monitor_from_channel,
    rebuild_rings,
)
from repro.network.rings import RingsTopology
from repro.tree.construction import build_bushy_tree
from repro.tree.structure import Tree


class TestLinkQualityMonitor:
    def test_prior_before_observations(self):
        monitor = LinkQualityMonitor(prior=0.75)
        assert monitor.quality(1, 2) == 0.75
        assert monitor.observation_count(1, 2) == 0

    def test_ewma_update(self):
        monitor = LinkQualityMonitor(alpha=0.5, prior=1.0)
        assert monitor.observe(1, 2, False) == pytest.approx(0.5)
        assert monitor.observe(1, 2, False) == pytest.approx(0.25)
        assert monitor.observe(1, 2, True) == pytest.approx(0.625)
        assert monitor.observation_count(1, 2) == 3

    def test_links_are_directed(self):
        monitor = LinkQualityMonitor(alpha=0.5, prior=0.5)
        monitor.observe(1, 2, True)
        assert monitor.quality(1, 2) > 0.5
        assert monitor.quality(2, 1) == 0.5

    def test_observed_links_sorted(self):
        monitor = LinkQualityMonitor()
        monitor.observe(3, 1, True)
        monitor.observe(1, 2, True)
        assert monitor.observed_links == [(1, 2), (3, 1)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkQualityMonitor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            LinkQualityMonitor(alpha=1.5)
        with pytest.raises(ConfigurationError):
            LinkQualityMonitor(prior=-0.1)

    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=50),
        alpha=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimate_stays_in_unit_interval(self, outcomes, alpha):
        monitor = LinkQualityMonitor(alpha=alpha, prior=0.5)
        for outcome in outcomes:
            estimate = monitor.observe(0, 1, outcome)
            assert 0.0 <= estimate <= 1.0

    @given(runs=st.integers(min_value=5, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_all_failures_drive_estimate_down(self, runs):
        monitor = LinkQualityMonitor(alpha=0.3, prior=0.9)
        for _ in range(runs):
            monitor.observe(0, 1, False)
        assert monitor.quality(0, 1) < 0.9 * (0.7**4)


class TestProbeRound:
    def test_probing_converges_to_true_rate(self, small_scenario):
        monitor = LinkQualityMonitor(alpha=0.1, prior=0.5)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.4), seed=3)
        links = [(1, 2)]
        for epoch in range(200):
            monitor.probe_round(channel, links, epoch)
        assert monitor.quality(1, 2) == pytest.approx(0.6, abs=0.15)

    def test_probes_do_not_perturb_data_draws(self, small_scenario):
        baseline = Channel(small_scenario.deployment, GlobalLoss(0.5), seed=9)
        probed = Channel(small_scenario.deployment, GlobalLoss(0.5), seed=9)
        monitor = LinkQualityMonitor()
        monitor.probe_round(probed, [(1, 2), (2, 1)], epoch=0, probes_per_link=5)
        for epoch in range(20):
            assert baseline.delivered(1, 2, epoch) == probed.delivered(1, 2, epoch)

    def test_probe_count_returned(self, small_scenario):
        monitor = LinkQualityMonitor()
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        sent = monitor.probe_round(channel, [(1, 2), (3, 4)], 0, probes_per_link=3)
        assert sent == 6

    def test_probe_validation(self, small_scenario):
        monitor = LinkQualityMonitor()
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        with pytest.raises(ConfigurationError):
            monitor.probe_round(channel, [(1, 2)], 0, probes_per_link=0)


class TestTreeMaintainer:
    def test_switches_to_better_parent(self, small_scenario):
        tree = build_bushy_tree(small_scenario.rings, seed=11)
        # Pick a node with at least two upstream candidates.
        node = next(
            n
            for n in tree.parents
            if len(small_scenario.rings.upstream_neighbors(n)) >= 2
        )
        current = tree.parents[node]
        alternative = next(
            c
            for c in small_scenario.rings.upstream_neighbors(node)
            if c != current
        )
        monitor = LinkQualityMonitor(alpha=1.0, prior=0.5)
        monitor.observe(node, current, False)  # quality -> 0.0
        monitor.observe(node, alternative, True)  # quality -> 1.0
        maintainer = TreeMaintainer(small_scenario.rings, monitor)
        maintained, switches = maintainer.maintain(tree)
        assert ParentSwitch(node, current, alternative) in switches
        assert maintained.parents[node] == alternative

    def test_hysteresis_blocks_small_gains(self, small_scenario):
        tree = build_bushy_tree(small_scenario.rings, seed=11)
        monitor = LinkQualityMonitor(prior=0.8)  # every link equal quality
        maintainer = TreeMaintainer(
            small_scenario.rings, monitor, switch_margin=0.1
        )
        maintained, switches = maintainer.maintain(tree)
        assert switches == []
        assert maintained is tree

    def test_protected_nodes_never_switch(self, small_scenario):
        tree = build_bushy_tree(small_scenario.rings, seed=11)
        node = next(
            n
            for n in tree.parents
            if len(small_scenario.rings.upstream_neighbors(n)) >= 2
        )
        current = tree.parents[node]
        monitor = LinkQualityMonitor(alpha=1.0, prior=0.5)
        monitor.observe(node, current, False)
        maintainer = TreeMaintainer(
            small_scenario.rings, monitor, protected={node}
        )
        maintained, switches = maintainer.maintain(tree)
        assert all(switch.node != node for switch in switches)
        assert maintained.parents[node] == current

    def test_maintained_tree_keeps_rings_constraint(self, small_scenario):
        """Every maintained link still goes exactly one ring level up."""
        tree = build_bushy_tree(small_scenario.rings, seed=11)
        monitor = LinkQualityMonitor(alpha=1.0, prior=0.5)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.5), seed=4)
        links = [
            (node, parent)
            for node in tree.parents
            for parent in small_scenario.rings.upstream_neighbors(node)
        ]
        for epoch in range(10):
            monitor.probe_round(channel, links, epoch)
        maintainer = TreeMaintainer(small_scenario.rings, monitor, switch_margin=0.0)
        maintained, _ = maintainer.maintain(tree)
        rings = small_scenario.rings
        for child, parent in maintained.parents.items():
            assert rings.level(child) == rings.level(parent) + 1
            assert rings.connectivity.has_edge(child, parent)

    def test_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            TreeMaintainer(
                small_scenario.rings, LinkQualityMonitor(), switch_margin=-1.0
            )


class TestRebuildRings:
    def test_no_drops_reproduces_levels(self, small_scenario):
        monitor = LinkQualityMonitor(prior=1.0)
        rebuilt = rebuild_rings(
            small_scenario.deployment,
            small_scenario.rings.connectivity,
            monitor,
            min_quality=0.5,
        )
        assert rebuilt.levels == small_scenario.rings.levels

    def test_bad_links_push_nodes_to_deeper_rings(self, small_scenario):
        rings = small_scenario.rings
        # Degrade every link of one level-1 node except via deeper neighbours.
        victim = rings.nodes_at_level(1)[0]
        monitor = LinkQualityMonitor(alpha=1.0, prior=1.0)
        for neighbor in rings.connectivity.neighbors(victim):
            if rings.level(neighbor) < rings.level(victim) + 1:
                monitor.observe(victim, neighbor, False)
                monitor.observe(neighbor, victim, False)
        rebuilt = rebuild_rings(
            small_scenario.deployment, rings.connectivity, monitor
        )
        # The victim either kept a rescued bridge (same level) or sank deeper.
        assert rebuilt.level(victim) >= rings.level(victim)
        rebuilt.validate()

    def test_stranded_nodes_get_reconnected(self, small_scenario):
        monitor = LinkQualityMonitor(alpha=1.0, prior=1.0)
        # Destroy every link in both directions.
        for a, b in small_scenario.rings.connectivity.edges:
            monitor.observe(a, b, False)
            monitor.observe(b, a, False)
        rebuilt = rebuild_rings(
            small_scenario.deployment,
            small_scenario.rings.connectivity,
            monitor,
        )
        # Every node must still be ringed (bad links beat no links).
        assert set(rebuilt.levels) == set(small_scenario.rings.levels)

    def test_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            rebuild_rings(
                small_scenario.deployment,
                small_scenario.rings.connectivity,
                LinkQualityMonitor(),
                min_quality=1.5,
            )


class TestFeedMonitorFromChannel:
    def test_passive_feed_matches_channel_draws(self, small_scenario):
        monitor = LinkQualityMonitor(alpha=1.0, prior=0.5)
        channel = Channel(small_scenario.deployment, GlobalLoss(0.5), seed=2)
        feed_monitor_from_channel(monitor, channel, [(1, 2)], epoch=7)
        expected = 1.0 if channel.delivered(1, 2, 7, 0) else 0.0
        assert monitor.quality(1, 2) == expected


class TestMaintenanceImprovesDelivery:
    def test_maintenance_lifts_delivery_rate_under_link_asymmetry(
        self, small_scenario
    ):
        """End-to-end: with one terrible link per node, maintenance helps.

        Build a loss table that makes each node's *current* parent link very
        lossy while alternatives stay clean; after probing and maintenance,
        the average quality of the tree links must improve.
        """
        rings = small_scenario.rings
        tree = build_bushy_tree(rings, seed=11)
        rates = {}
        for child, parent in tree.parents.items():
            if len(rings.upstream_neighbors(child)) >= 2:
                rates[(child, parent)] = 0.9
        table = LinkLossTable(rates=rates, default=0.05)
        channel = Channel(small_scenario.deployment, table, seed=5)
        monitor = LinkQualityMonitor(alpha=0.3, prior=0.9)
        links = [
            (node, candidate)
            for node in tree.parents
            for candidate in rings.upstream_neighbors(node)
        ]
        for epoch in range(30):
            monitor.probe_round(channel, links, epoch)
        maintainer = TreeMaintainer(rings, monitor, switch_margin=0.1)
        maintained, switches = maintainer.maintain(tree)
        assert switches  # the bad links were found

        def mean_true_quality(candidate: Tree) -> float:
            total = 0.0
            for child, parent in candidate.parents.items():
                total += 1.0 - table.loss_rate(
                    small_scenario.deployment, child, parent, 0
                )
            return total / len(candidate.parents)

        assert mean_true_quality(maintained) > mean_true_quality(tree) + 0.05


class TestOnlineMaintenance:
    def test_hook_probes_on_interval(self, small_scenario):
        from repro.aggregates.count import CountAggregate
        from repro.core.tag_scheme import TagScheme
        from repro.network.linkquality import OnlineMaintenance
        from repro.tree.construction import build_bushy_tree

        tree = build_bushy_tree(small_scenario.rings, seed=11)
        scheme = TagScheme(small_scenario.deployment, tree, CountAggregate())
        maintenance = OnlineMaintenance(
            scheme, small_scenario.rings, interval=5
        )
        channel = Channel(small_scenario.deployment, NoLoss(), seed=0)
        for epoch in range(10):
            maintenance(epoch, channel)
        # Rounds at epochs 4 and 9 only.
        assert maintenance.probes_sent == 2 * len(
            maintenance._candidate_links()
        )

    def test_end_to_end_recovery_inside_simulator(self, small_scenario):
        """A TAG run with bad initial links recovers once the on_epoch
        maintenance hook starts re-parenting."""
        from repro.aggregates.count import CountAggregate
        from repro.core.tag_scheme import TagScheme
        from repro.network.linkquality import OnlineMaintenance
        from repro.network.simulator import EpochSimulator
        from repro.tree.construction import build_bushy_tree

        rings = small_scenario.rings
        tree = build_bushy_tree(rings, seed=11)
        rates = {}
        for child, parent in tree.parents.items():
            if len(rings.upstream_neighbors(child)) >= 2:
                rates[(child, parent)] = 0.8
        table = LinkLossTable(rates=rates, default=0.0)
        deployment = small_scenario.deployment
        sensors = deployment.num_sensors
        readings = ConstantReadings(1.0)

        static = TagScheme(deployment, tree, CountAggregate())
        static_run = EpochSimulator(deployment, table, static, seed=2).run(
            30, readings
        )

        maintained_scheme = TagScheme(deployment, tree, CountAggregate())
        maintenance = OnlineMaintenance(
            maintained_scheme,
            rings,
            monitor=LinkQualityMonitor(alpha=0.4, prior=0.9),
            interval=3,
            switch_margin=0.2,
            probes_per_link=2,
        )
        simulator = EpochSimulator(
            deployment, table, maintained_scheme, seed=2, on_epoch=maintenance
        )
        maintained_run = simulator.run(30, readings)
        assert maintenance.switch_log
        assert maintained_run.mean_contributing_fraction(sensors) > (
            static_run.mean_contributing_fraction(sensors) + 0.1
        )

    def test_rejects_schemes_without_replace_tree(self, small_scenario):
        from repro.aggregates.count import CountAggregate
        from repro.core.sd_scheme import SynopsisDiffusionScheme
        from repro.network.linkquality import OnlineMaintenance

        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        with pytest.raises(ConfigurationError):
            OnlineMaintenance(scheme, small_scenario.rings)

    def test_interval_validation(self, small_scenario):
        from repro.aggregates.count import CountAggregate
        from repro.core.tag_scheme import TagScheme
        from repro.network.linkquality import OnlineMaintenance
        from repro.tree.construction import build_bushy_tree

        tree = build_bushy_tree(small_scenario.rings, seed=11)
        scheme = TagScheme(small_scenario.deployment, tree, CountAggregate())
        with pytest.raises(ConfigurationError):
            OnlineMaintenance(scheme, small_scenario.rings, interval=0)
