"""Tests for the Tributary-Delta frequent-items algorithm (Section 6.3)."""

from __future__ import annotations

import pytest

from repro.core.graph import TDGraph, initial_modes_by_level
from repro.datasets.streams import ZipfItemStream, exact_item_counts
from repro.errors import ConfigurationError
from repro.frequent.mp_fi import KMVOperator
from repro.frequent.reporting import (
    false_negative_rate,
    false_positive_rate,
    true_frequent,
)
from repro.frequent.summary import Summary
from repro.frequent.td_fi import TributaryDeltaFrequentItems
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel


@pytest.fixture(scope="module")
def stream():
    return ZipfItemStream(items_per_node=80, universe=200, alpha=1.3, seed=6)


def make_td(scenario, tree, level, total, epsilon=0.01, support=0.02):
    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, level)
    )
    return TributaryDeltaFrequentItems(
        graph,
        epsilon=epsilon,
        support=support,
        total_items_hint=total,
        operator=KMVOperator(k=64),
    )


class TestConversion:
    def test_convert_preserves_counts(self, small_scenario, small_tree, stream):
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        total = sum(counts.values())
        td = make_td(small_scenario, small_tree, 1, total)
        summary = Summary(n=500, epsilon=0.0, counts={7: 300.0, 8: 150.0})
        synopsis = td.convert(summary, sender=3, epoch=0)
        assert synopsis is not None
        estimate = td.algorithm.operator.estimate(synopsis.counts[7])
        assert abs(estimate - 300) / 300 < 0.4

    def test_convert_empty_summary(self, small_scenario, small_tree, stream):
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        td = make_td(small_scenario, small_tree, 1, sum(counts.values()))
        assert td.convert(Summary(n=0, epsilon=0.0, counts={}), 3, 0) is None

    def test_convert_prunes_small_estimates(self, small_scenario, small_tree):
        td = make_td(small_scenario, small_tree, 1, 100_000, epsilon=0.3)
        summary = Summary(n=4096, epsilon=0.0, counts={1: 4000.0, 2: 2.0})
        synopsis = td.convert(summary, sender=3, epoch=0)
        assert 1 in synopsis.counts
        assert 2 not in synopsis.counts

    def test_convert_deterministic(self, small_scenario, small_tree, stream):
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        td = make_td(small_scenario, small_tree, 1, sum(counts.values()))
        summary = Summary(n=100, epsilon=0.0, counts={5: 60.0})
        a = td.convert(summary, 3, 0)
        b = td.convert(summary, 3, 0)
        assert a.counts[5] == b.counts[5]


class TestEndToEnd:
    def test_lossless_low_false_negatives(self, small_scenario, small_tree, stream):
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        total = sum(counts.values())
        td = make_td(small_scenario, small_tree, 1, total)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=1)
        outcome = td.run_epoch(0, channel, lambda n, e: stream.items(n, e))
        truth = true_frequent(counts, 0.02)
        assert false_negative_rate(truth, outcome.reported) <= 0.15
        assert false_positive_rate(truth, outcome.reported) <= 0.5

    def test_all_tree_mode_is_exact_reporting(self, small_scenario, small_tree, stream):
        counts = exact_item_counts(stream, small_scenario.deployment.sensor_ids, 0)
        total = sum(counts.values())
        td = make_td(small_scenario, small_tree, -1, total)
        channel = Channel(small_scenario.deployment, NoLoss(), seed=1)
        outcome = td.run_epoch(0, channel, lambda n, e: stream.items(n, e))
        truth = true_frequent(counts, 0.02)
        assert false_negative_rate(truth, outcome.reported) == 0.0
        assert outcome.total_estimate == total

    def test_error_budget_split_validated(self, small_scenario, small_tree):
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        with pytest.raises(ConfigurationError):
            TributaryDeltaFrequentItems(
                graph,
                epsilon=0.01,
                support=0.02,
                total_items_hint=1000,
                tree_epsilon=0.01,  # leaves nothing for the multi-path side
            )

    def test_more_robust_than_tree_under_loss(
        self, medium_scenario, medium_tree
    ):
        stream = ZipfItemStream(items_per_node=60, universe=150, alpha=1.3, seed=2)
        counts = exact_item_counts(
            stream, medium_scenario.deployment.sensor_ids, 0
        )
        total = sum(counts.values())
        truth = true_frequent(counts, 0.02)
        items_fn = lambda n, e: stream.items(n, e)

        from repro.frequent.tree_fi import TreeFrequentItems
        from repro.frequent.reporting import report_frequent

        depth = medium_scenario.rings.depth
        td = make_td(medium_scenario, medium_tree, depth // 2, total)
        tree_engine = TreeFrequentItems.min_total_load(medium_tree, 0.01)
        td_fn = 0.0
        tree_fn = 0.0
        for epoch in range(4):
            channel = Channel(medium_scenario.deployment, GlobalLoss(0.4), seed=5)
            outcome = td.run_epoch(epoch, channel, items_fn)
            td_fn += false_negative_rate(truth, outcome.reported)
            channel = Channel(medium_scenario.deployment, GlobalLoss(0.4), seed=5)
            root, _ = tree_engine.aggregate(items_fn, epoch, channel=channel)
            reported = report_frequent(root, 0.02, 0.01) if root else []
            tree_fn += false_negative_rate(truth, reported)
        assert td_fn <= tree_fn
