"""Tests for the chaos subsystem: faults, the auditor, checkpoint/resume.

Three coupled contracts:

* **Deterministic fault injection** — every injector draws keyed hashes,
  so a faulted run is identical under the blocked and per-epoch engines,
  and a config's ``faults`` field keeps runs pure functions of the config.
* **Online invariant auditing** — a strict :class:`~repro.chaos.Auditor`
  stays silent on clean runs (all schemes, churn included) and each
  injector trips its named invariant (true positives, no false positives).
* **Crash-safe checkpoint/resume** — a run killed at any block boundary
  and resumed from its checkpoint produces a byte-identical
  :class:`~repro.network.simulator.RunResult`.
"""

from __future__ import annotations

import hashlib

import pytest

from repro import serialization
from repro.aggregates.sum_ import SumAggregate
from repro.api import RunConfig, config_digest, run_config_result
from repro.chaos import (
    Auditor,
    BaseStationCrash,
    Checkpointer,
    ChaosRuntime,
    CompositeFaultPlan,
    CorruptSynopsis,
    DelayControl,
    DuplicateDelivery,
    Partition,
)
from repro.core.adaptation import TDFinePolicy
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import UniformReadings
from repro.errors import (
    ConfigurationError,
    PropertyViolation,
    SimulationKilled,
)
from repro.network.churn import DynamicMembership, RandomDeaths, ScheduledChurn
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.simulator import EpochSimulator
from repro.registry import FAULTS, build_fault_plan

SCHEMES = ("TAG", "SD", "TD")

#: Death-then-rejoin timeline: the rejoins force repair reattachments at
#: the epoch-20 boundary, which is what control-message billing (and so
#: the delay injector) needs to have anything to defer.
REJOIN_CHURN = ScheduledChurn.of(
    deaths=[(10, [5, 7, 9])], joins=[(20, [5, 7, 9])]
)


def _build_scheme(name, scenario, tree):
    aggregate = SumAggregate()
    if name == "TAG":
        return TagScheme(scenario.deployment, tree, aggregate)
    if name == "SD":
        return SynopsisDiffusionScheme(
            scenario.deployment, scenario.rings, aggregate
        )
    graph = TDGraph(
        scenario.rings, tree, initial_modes_by_level(scenario.rings, 2)
    )
    return TributaryDeltaScheme(
        scenario.deployment, graph, aggregate, policy=TDFinePolicy()
    )


def _run(
    scenario,
    tree,
    name,
    *,
    use_blocked=True,
    faults=None,
    auditor=None,
    checkpoint=None,
    failure=None,
    churn_model=None,
    epochs=30,
):
    scheme = _build_scheme(name, scenario, tree)
    membership = DynamicMembership(
        churn_model or RandomDeaths(epoch=10, count=12, seed=2),
        scenario.deployment,
        scenario.rings,
        tree,
    )
    simulator = EpochSimulator(
        scenario.deployment,
        failure or GlobalLoss(0.2),
        scheme,
        seed=1,
        adapt_interval=10,
        use_blocked=use_blocked,
        membership=membership,
        faults=faults,
        auditor=auditor,
        checkpoint=checkpoint,
    )
    return simulator.run(epochs, UniformReadings(10, 100, seed=1))


def _digest(result) -> str:
    return hashlib.sha256(serialization.dumps(result).encode()).hexdigest()


INJECTORS = {
    "corrupt": CorruptSynopsis(0.05, seed=3),
    "duplicate": DuplicateDelivery(0.05, seed=3),
    "delay": DelayControl(3),
    "bscrash": BaseStationCrash(12, 4),
    "partition": Partition(7, 8, 6),
}


class TestFaultSpecs:
    def test_registry_lists_builtins(self):
        from repro.registry import available

        assert set(available()["faults"]) == set(INJECTORS)
        for name in INJECTORS:
            assert name in FAULTS

    def test_none_and_empty_build_no_plan(self):
        assert build_fault_plan(None) is None
        assert build_fault_plan([]) is None

    def test_single_spec_builds_bare_injector(self):
        plan = build_fault_plan("corrupt:0.1:7")
        assert isinstance(plan, CorruptSynopsis)
        assert plan.rate == 0.1 and plan.seed == 7
        assert plan.describe() == "corrupt:0.1:7"

    def test_specs_round_trip_through_describe(self):
        specs = [
            "corrupt:0.05:3",
            "duplicate:0.1:0",
            "delay:3",
            "bscrash:12:4",
            "partition:7:8:6",
        ]
        for spec in specs:
            assert build_fault_plan(spec).describe() == spec

    def test_multiple_specs_compose_in_order(self):
        plan = build_fault_plan(["delay:2", "partition:7:10:5"])
        assert isinstance(plan, CompositeFaultPlan)
        assert plan.describe() == "delay:2+partition:7:10:5"
        assert isinstance(plan.plans[0], DelayControl)
        assert isinstance(plan.plans[1], Partition)

    def test_unknown_and_malformed_specs_fail_actionably(self):
        with pytest.raises(ConfigurationError, match="unknown fault"):
            build_fault_plan("meteor:0.5")
        with pytest.raises(ConfigurationError, match="bad fault spec"):
            build_fault_plan("corrupt:not-a-rate")
        with pytest.raises(ConfigurationError, match="bad fault spec"):
            build_fault_plan("delay")  # missing the required EPOCHS token


class TestFaultDeterminism:
    """Every injector perturbs both engines identically (keyed draws)."""

    @pytest.mark.parametrize("label", sorted(INJECTORS))
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_blocked_equals_per_epoch_under_fault(
        self, small_scenario, small_tree, scheme, label
    ):
        plan = INJECTORS[label]
        churn = REJOIN_CHURN if label == "delay" else None
        blocked = _run(
            small_scenario,
            small_tree,
            scheme,
            use_blocked=True,
            faults=plan,
            churn_model=churn,
        )
        per_epoch = _run(
            small_scenario,
            small_tree,
            scheme,
            use_blocked=False,
            faults=plan,
            churn_model=churn,
        )
        assert _digest(blocked) == _digest(per_epoch)

    def test_fault_run_is_repeatable(self, small_scenario, small_tree):
        first = _run(
            small_scenario, small_tree, "SD", faults=CorruptSynopsis(0.1)
        )
        second = _run(
            small_scenario, small_tree, "SD", faults=CorruptSynopsis(0.1)
        )
        assert _digest(first) == _digest(second)


class TestAuditorClean:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_strict_audit_passes_clean_runs_with_churn(
        self, small_scenario, small_tree, scheme
    ):
        auditor = Auditor(strict=True)
        _run(small_scenario, small_tree, scheme, auditor=auditor)
        assert auditor.violations == []
        # The auditor actually looked: billing and delivery every run,
        # structure at churn/adapt boundaries.
        assert auditor.checks["billing-conservation"] > 0
        assert auditor.checks["lossless-delivery"] > 0
        assert auditor.checks["membership-consistency"] > 0
        assert auditor.summary().startswith("audit OK")

    def test_audited_run_returns_same_result(
        self, small_scenario, small_tree
    ):
        bare = _run(small_scenario, small_tree, "TD")
        audited = _run(
            small_scenario, small_tree, "TD", auditor=Auditor(strict=True)
        )
        assert _digest(bare) == _digest(audited)


class TestAuditorTruePositives:
    def _violations(self, scenario, tree, scheme, plan, **kwargs):
        auditor = Auditor(strict=False)
        _run(scenario, tree, scheme, faults=plan, auditor=auditor, **kwargs)
        return auditor.violations

    def test_corrupt_trips_fm_or_monotonicity(
        self, small_scenario, small_tree
    ):
        violations = self._violations(
            small_scenario, small_tree, "SD", CorruptSynopsis(0.05, seed=3)
        )
        assert any(
            v.invariant == "fm-or-monotonicity" for v in violations
        )

    def test_duplicate_trips_tree_count_consistency(
        self, small_scenario, small_tree
    ):
        violations = self._violations(
            small_scenario, small_tree, "TAG", DuplicateDelivery(0.05, seed=3)
        )
        assert any(
            v.invariant == "tree-count-consistency" for v in violations
        )

    def test_delay_trips_billing_conservation(
        self, small_scenario, small_tree
    ):
        violations = self._violations(
            small_scenario,
            small_tree,
            "TAG",
            DelayControl(3),
            churn_model=REJOIN_CHURN,
        )
        assert any(
            v.invariant == "billing-conservation" for v in violations
        )

    def test_bscrash_trips_lossless_delivery(
        self, small_scenario, small_tree
    ):
        violations = self._violations(
            small_scenario,
            small_tree,
            "TAG",
            BaseStationCrash(12, 4),
            failure=NoLoss(),
        )
        assert any(v.invariant == "lossless-delivery" for v in violations)

    def test_partition_trips_lossless_delivery(
        self, small_scenario, small_tree
    ):
        violations = self._violations(
            small_scenario,
            small_tree,
            "SD",
            Partition(7, 8, 6),
            failure=NoLoss(),
        )
        assert any(v.invariant == "lossless-delivery" for v in violations)

    def test_strict_auditor_raises_with_context(
        self, small_scenario, small_tree
    ):
        with pytest.raises(PropertyViolation) as excinfo:
            _run(
                small_scenario,
                small_tree,
                "SD",
                faults=CorruptSynopsis(0.05, seed=3),
                auditor=Auditor(strict=True),
            )
        violation = excinfo.value
        assert violation.invariant == "fm-or-monotonicity"
        assert violation.epoch is not None
        assert "fm-or-monotonicity" in str(violation)


class TestCheckpointResume:
    @pytest.mark.parametrize("kill_at", (10, 20))
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_kill_and_resume_is_byte_identical(
        self, small_scenario, small_tree, tmp_path, scheme, kill_at
    ):
        base = _run(small_scenario, small_tree, scheme)
        directory = tmp_path / f"{scheme}-{kill_at}"
        with pytest.raises(SimulationKilled) as excinfo:
            _run(
                small_scenario,
                small_tree,
                scheme,
                checkpoint=Checkpointer(
                    directory, interval=10, kill_at=kill_at
                ),
            )
        assert excinfo.value.offset == kill_at
        resumed = _run(
            small_scenario,
            small_tree,
            scheme,
            checkpoint=Checkpointer(directory, interval=10, resume=True),
        )
        assert _digest(resumed) == _digest(base)

    def test_kill_and_resume_with_faults(
        self, small_scenario, small_tree, tmp_path
    ):
        plan = CorruptSynopsis(0.05, seed=3)
        base = _run(small_scenario, small_tree, "SD", faults=plan)
        with pytest.raises(SimulationKilled):
            _run(
                small_scenario,
                small_tree,
                "SD",
                faults=plan,
                checkpoint=Checkpointer(tmp_path, interval=10, kill_at=10),
            )
        resumed = _run(
            small_scenario,
            small_tree,
            "SD",
            faults=plan,
            checkpoint=Checkpointer(tmp_path, interval=10, resume=True),
        )
        assert _digest(resumed) == _digest(base)

    def test_checkpointing_is_result_invisible(
        self, small_scenario, small_tree, tmp_path
    ):
        base = _run(small_scenario, small_tree, "TD")
        checkpointed = _run(
            small_scenario,
            small_tree,
            "TD",
            checkpoint=Checkpointer(tmp_path, interval=10),
        )
        assert _digest(checkpointed) == _digest(base)
        assert (tmp_path / "checkpoint.json").exists()

    def test_resume_rejects_mismatched_run(
        self, small_scenario, small_tree, tmp_path
    ):
        with pytest.raises(SimulationKilled):
            _run(
                small_scenario,
                small_tree,
                "TAG",
                checkpoint=Checkpointer(tmp_path, interval=10, kill_at=10),
            )
        # A checkpoint from a TAG run must not resume an SD run.
        with pytest.raises(ConfigurationError):
            _run(
                small_scenario,
                small_tree,
                "SD",
                checkpoint=Checkpointer(tmp_path, interval=10, resume=True),
            )

    def test_resume_without_checkpoint_runs_fresh(
        self, small_scenario, small_tree, tmp_path
    ):
        base = _run(small_scenario, small_tree, "TAG")
        resumed = _run(
            small_scenario,
            small_tree,
            "TAG",
            checkpoint=Checkpointer(tmp_path, interval=10, resume=True),
        )
        assert _digest(resumed) == _digest(base)

    def test_checkpointer_validates_interval(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Checkpointer(tmp_path, interval=0)


class TestRunConfigFaults:
    BASE = dict(
        scheme="TAG",
        num_sensors=40,
        epochs=5,
        converge_epochs=0,
        failure="global:0.2",
    )

    def test_unset_faults_keep_schema_and_digest(self):
        config = RunConfig(**self.BASE)
        assert config.faults is None
        assert config.to_jsonable()["version"] == 2
        assert "faults" not in config.to_jsonable()

    def test_set_faults_bump_schema_to_v5(self):
        config = RunConfig(**self.BASE, faults=["corrupt:0.1", "delay:2"])
        payload = config.to_jsonable()
        assert payload["version"] == 5
        assert payload["faults"] == ["corrupt:0.1", "delay:2"]
        assert RunConfig.from_json(config.to_json()) == config

    def test_empty_faults_normalize_to_none(self):
        config = RunConfig(**self.BASE, faults=[])
        assert config.faults is None
        assert config == RunConfig(**self.BASE)

    def test_faults_change_the_digest(self):
        base = RunConfig(**self.BASE)
        faulted = base.replace(faults=["duplicate:0.3"])
        assert config_digest(base) != config_digest(faulted)

    def test_bad_faults_fail_eagerly(self):
        with pytest.raises(ConfigurationError):
            RunConfig(**self.BASE, faults=["meteor:0.5"])
        with pytest.raises(ConfigurationError, match="wrap a single spec"):
            RunConfig(**self.BASE, faults="corrupt:0.1")
        with pytest.raises(ConfigurationError):
            RunConfig(**self.BASE, faults=[42])

    def test_faulted_config_runs_deterministically(self):
        config = RunConfig(**self.BASE, faults=["duplicate:0.3"])
        first = run_config_result(config)
        second = run_config_result(config)
        assert serialization.dumps(first) == serialization.dumps(second)
        clean = run_config_result(RunConfig(**self.BASE))
        assert serialization.dumps(first) != serialization.dumps(clean)

    def test_run_config_result_takes_chaos_observers(self, tmp_path):
        config = RunConfig(**self.BASE)
        auditor = Auditor(strict=True)
        result = run_config_result(
            config,
            checkpoint=Checkpointer(tmp_path, interval=2),
            audit=auditor,
        )
        assert auditor.violations == []
        assert serialization.dumps(result) == serialization.dumps(
            run_config_result(config)
        )


class TestChaosRuntimeUnset:
    def test_simulator_without_chaos_leaves_channel_untouched(
        self, small_scenario, small_tree
    ):
        scheme = _build_scheme("TAG", small_scenario, small_tree)
        simulator = EpochSimulator(
            small_scenario.deployment, GlobalLoss(0.2), scheme, seed=1
        )
        assert simulator._channel.chaos is None

    def test_duplicate_is_absorbed_by_sd_odi_synopses(
        self, small_scenario, small_tree
    ):
        """The paper's ODI property, observed through the chaos layer:
        duplicated deliveries change nothing on SD (OR-fold absorbs them),
        while TAG double-counts (caught as tree-count-consistency)."""
        clean = _run(small_scenario, small_tree, "SD")
        duplicated = _run(
            small_scenario,
            small_tree,
            "SD",
            faults=DuplicateDelivery(0.3, seed=3),
        )
        assert _digest(clean) == _digest(duplicated)

    def test_runtime_defers_and_flushes_control(self, small_scenario):
        from repro.network.links import Channel

        channel = Channel(small_scenario.deployment, GlobalLoss(0.0), seed=1)
        runtime = ChaosRuntime(plan=DelayControl(2))
        runtime.epoch = 5
        channel.chaos = runtime
        channel.account_control(4, words=2, messages=1)
        assert channel.per_node_words()[4] == 0  # billed later, not now
        assert runtime.deferred == [(7, 4, 2, 1)]
        runtime.flush_control(channel, epoch=6)  # not due yet
        assert channel.per_node_words()[4] == 0
        runtime.flush_control(channel, epoch=7)
        assert channel.per_node_words()[4] == 2
        assert runtime.deferred == []
