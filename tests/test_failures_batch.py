"""Regression tests for the failure-model batch paths (bugfix sweep).

``LinkLossTable`` and ``ComposedLoss`` previously had no
``loss_rate_batch``, silently dropping LabData and radio-composed runs off
the vectorized channel path onto the per-edge Python loop;
``FailureSchedule.loss_rate_batch`` returned an ndarray or a Python list
depending on the phase; ``RegionalLoss`` crashed on empty batches and
cached by mutating a shared frozen dataclass. These tests pin the fixes:

* batch == scalar, element for element, bit for bit;
* the channel's batch and blocked paths *use* the vectorized method — the
  scalar ``loss_rate`` is never called per edge (asserted by counting);
* both schedule branches return one type;
* caches never leak through pickling (process pools, result cache);
* end-to-end golden digests over the labdata (ComposedLoss) and timeline
  (FailureSchedule) scenarios, recorded from the seed revision.
"""

from __future__ import annotations

import hashlib
import pickle

import numpy as np
import pytest

from repro.api import RunConfig, Session
from repro.network.failures import (
    ComposedLoss,
    FailureSchedule,
    GlobalLoss,
    LinkLossTable,
    NoLoss,
    RegionalLoss,
)
from repro.network.links import Channel, Transmission, transmit_sequential
from repro.network.placement import grid_random_placement


@pytest.fixture()
def deployment():
    return grid_random_placement(40, seed=3)


@pytest.fixture()
def link_table():
    return LinkLossTable(
        rates={(1, 2): 0.5, (3, 4): 0.25, (2, 1): 0.1, (7, 9): 1.0},
        default=0.05,
    )


PAIRS = ([1, 3, 2, 9, 1, 7, 40], [2, 4, 1, 9, 3, 9, 1])


class TestLinkLossTableBatch:
    def test_matches_scalar_exactly(self, deployment, link_table):
        senders, receivers = PAIRS
        batch = link_table.loss_rate_batch(deployment, senders, receivers, 0)
        scalar = [
            link_table.loss_rate(deployment, s, r, 0)
            for s, r in zip(senders, receivers)
        ]
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.float64
        assert list(batch) == scalar  # bit-identical, not approx

    def test_empty_batch(self, deployment, link_table):
        batch = link_table.loss_rate_batch(deployment, [], [], 0)
        assert isinstance(batch, np.ndarray) and batch.size == 0

    def test_empty_table_takes_default(self, deployment):
        table = LinkLossTable(rates={}, default=0.2)
        batch = table.loss_rate_batch(deployment, [1, 2], [2, 3], 0)
        assert list(batch) == [0.2, 0.2]

    def test_cache_not_pickled(self, deployment, link_table):
        link_table.loss_rate_batch(deployment, *PAIRS, 0)
        assert "_lookup_cache" in link_table.__dict__
        clone = pickle.loads(pickle.dumps(link_table))
        assert "_lookup_cache" not in clone.__dict__
        assert clone == link_table


class TestComposedLossBatch:
    @pytest.mark.parametrize(
        "failure",
        [
            GlobalLoss(0.3),
            RegionalLoss(0.4, 0.1),
            NoLoss(),
            FailureSchedule([(0, GlobalLoss(0.1)), (5, RegionalLoss(0.5, 0.0))]),
        ],
    )
    @pytest.mark.parametrize("epoch", [0, 7])
    def test_matches_scalar_exactly(self, deployment, failure, epoch):
        composed = ComposedLoss(
            base_rates={(1, 2): 0.5, (3, 4): 0.25, (7, 9): 0.8},
            failure=failure,
        )
        senders, receivers = PAIRS
        batch = composed.loss_rate_batch(deployment, senders, receivers, epoch)
        scalar = [
            composed.loss_rate(deployment, s, r, epoch)
            for s, r in zip(senders, receivers)
        ]
        assert isinstance(batch, np.ndarray)
        assert list(batch) == scalar

    def test_scalar_only_inner_failure(self, deployment):
        class ScalarOnly:
            def loss_rate(self, deployment, sender, receiver, epoch):
                return 0.25 if sender % 2 else 0.0

        composed = ComposedLoss(base_rates={(1, 2): 0.5}, failure=ScalarOnly())
        senders, receivers = PAIRS
        batch = composed.loss_rate_batch(deployment, senders, receivers, 0)
        scalar = [
            composed.loss_rate(deployment, s, r, 0)
            for s, r in zip(senders, receivers)
        ]
        assert isinstance(batch, np.ndarray)
        assert list(batch) == scalar

    def test_cache_not_pickled(self, deployment):
        composed = ComposedLoss(
            base_rates={(1, 2): 0.5}, failure=GlobalLoss(0.1)
        )
        composed.loss_rate_batch(deployment, *PAIRS, 0)
        clone = pickle.loads(pickle.dumps(composed))
        assert "_lookup_cache" not in clone.__dict__


class TestFailureScheduleBatch:
    def test_both_branches_return_ndarray(self, deployment):
        class ScalarOnly:
            def loss_rate(self, deployment, sender, receiver, epoch):
                return 0.4

        schedule = FailureSchedule([(0, GlobalLoss(0.2)), (10, ScalarOnly())])
        fast = schedule.loss_rate_batch(deployment, *PAIRS, 0)
        fallback = schedule.loss_rate_batch(deployment, *PAIRS, 15)
        assert isinstance(fast, np.ndarray) and fast.dtype == np.float64
        assert isinstance(fallback, np.ndarray) and fallback.dtype == np.float64
        assert list(fast) == [0.2] * len(PAIRS[0])
        assert list(fallback) == [0.4] * len(PAIRS[0])


class TestRegionalLossHardening:
    def test_empty_batch(self, deployment):
        model = RegionalLoss(0.3, 0.05)
        batch = model.loss_rate_batch(deployment, [], [], 0)
        assert isinstance(batch, np.ndarray) and batch.size == 0

    def test_empty_deployment_guarded(self):
        class EmptyDeployment:
            node_ids = []

            def position(self, node):  # pragma: no cover - never reached
                raise KeyError(node)

        model = RegionalLoss(0.3, 0.05)
        batch = model.loss_rate_batch(EmptyDeployment(), [], [], 0)
        assert batch.size == 0

    def test_cache_recomputes_per_deployment(self):
        model = RegionalLoss(0.3, 0.05)
        inside = grid_random_placement(5, width=10, height=10, seed=1)
        outside = grid_random_placement(
            5, width=10, height=10, base_position=(15.0, 15.0), seed=1
        )
        # Same node ids, different positions: the cache must key on the
        # deployment object, not the ids.
        first = model.loss_rate_batch(inside, [1, 2], [2, 1], 0)
        second = model.loss_rate_batch(outside, [1, 2], [2, 1], 0)
        assert list(first) == [
            model.loss_rate(inside, 1, 2, 0),
            model.loss_rate(inside, 2, 1, 0),
        ]
        assert list(second) == [
            model.loss_rate(outside, 1, 2, 0),
            model.loss_rate(outside, 2, 1, 0),
        ]

    def test_cache_not_pickled(self, deployment):
        model = RegionalLoss(0.3, 0.05)
        model.loss_rate_batch(deployment, [1], [2], 0)
        assert "_rates_cache" in model.__dict__
        clone = pickle.loads(pickle.dumps(model))
        assert "_rates_cache" not in clone.__dict__
        assert clone == model


class _CountingTable(LinkLossTable):
    """A LinkLossTable that counts scalar loss_rate calls."""

    def __post_init__(self):
        super().__post_init__()
        object.__setattr__(self, "scalar_calls", [])

    def loss_rate(self, deployment, sender, receiver, epoch):
        self.scalar_calls.append((sender, receiver))
        return super().loss_rate(deployment, sender, receiver, epoch)


class TestChannelTakesVectorizedPath:
    """The acceptance assertion: no per-edge Python fallback."""

    def _transmissions(self):
        return [
            Transmission(5, (1, 2, 3), words=2, messages=1, attempts=2),
            Transmission(6, (2, 4), words=1, messages=1, attempts=1),
            Transmission(7, (9,), words=3, messages=1, attempts=1),
        ]

    def _table(self):
        return _CountingTable(
            rates={(5, 1): 0.6, (6, 2): 0.3, (7, 9): 0.9}, default=0.2
        )

    def test_transmit_batch_never_calls_scalar(self, deployment):
        table = self._table()
        channel = Channel(deployment, table, seed=3)
        heard = channel.transmit_batch(self._transmissions(), epoch=4)
        assert table.scalar_calls == []
        # ... and the outcomes equal the scalar reference path exactly.
        reference_table = self._table()
        reference = Channel(deployment, reference_table, seed=3)
        expected = transmit_sequential(
            reference, self._transmissions(), epoch=4
        )
        assert heard == expected

    def test_delivery_plan_never_calls_scalar(self, deployment):
        table = self._table()
        channel = Channel(deployment, table, seed=3)
        levels = [self._transmissions()]
        plan = channel.plan_epochs(levels, epochs=[4, 5, 6])
        assert table.scalar_calls == []
        heard = channel.transmit_epochs(levels[0], 5, plan, 0)
        assert table.scalar_calls == []
        reference = Channel(deployment, self._table(), seed=3)
        assert heard == reference.transmit_batch(levels[0], 5)

    def test_composed_plan_never_calls_scalar(self, deployment):
        table = self._table()
        composed = ComposedLoss(base_rates={(5, 1): 0.5}, failure=table)
        channel = Channel(deployment, composed, seed=3)
        plan = channel.plan_epochs([self._transmissions()], epochs=[0, 1])
        channel.transmit_epochs(self._transmissions(), 0, plan, 0)
        assert table.scalar_calls == []


#: End-to-end goldens from the seed revision (pre-vectorization): the
#: labdata scenario exercises ComposedLoss, the timeline FailureSchedule.
GOLDEN_DIGESTS = {
    "labdata-TAG": "def9e26b727bcabebb9f5ee9b5e40e58f08e4fd9a07e213462d0d4998f9f16f1",
    "labdata-SD": "9fbd5bf7a99623768a9986cc18698079650d53f59584fb253f4df9990efcfac3",
    "timeline-TD": "834da5683f2d68072c8178da1d01ae0b232ba69708328099c1767171161399f9",
}


def _digest(result):
    payload = repr(
        (
            [e.estimate for e in result.epochs],
            [e.contributing for e in result.epochs],
            [e.contributing_estimate for e in result.epochs],
            [
                (
                    e.log.transmissions,
                    e.log.deliveries,
                    e.log.drops,
                    e.log.words_sent,
                    e.log.messages_sent,
                )
                for e in result.epochs
            ],
            sorted(result.energy.per_node_uj.items()),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class TestVectorizedPathsByteIdentical:
    CONFIGS = {
        "labdata-TAG": dict(
            scheme="TAG",
            topology="labdata",
            num_sensors=54,
            scenario_seed=7,
            failure="global:0.2",
            aggregate="sum",
            reading="diurnal:7",
            epochs=8,
            converge_epochs=0,
            seed=1,
        ),
        "labdata-SD": dict(
            scheme="SD",
            topology="labdata",
            num_sensors=54,
            scenario_seed=7,
            failure="regional:0.4:0.1",
            aggregate="sum",
            reading="diurnal:7",
            epochs=8,
            converge_epochs=0,
            seed=1,
        ),
        "timeline-TD": dict(
            scheme="TD",
            failure="timeline",
            num_sensors=60,
            aggregate="sum",
            reading="uniform:10:100:0",
            epochs=40,
            start_epoch=90,
            converge_epochs=10,
            seed=0,
        ),
    }

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_golden_digest(self, name):
        result = Session().run(RunConfig(**self.CONFIGS[name])).result
        assert _digest(result) == GOLDEN_DIGESTS[name]
