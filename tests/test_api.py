"""Tests for the unified declarative Session API (config, registries).

The load-bearing suite here is :class:`TestSessionParity`: a config-built
run must be **byte-identical** to hand-wiring the same scenario, scheme
and simulator with the quickstart-style constructors — the API redesign is
pure re-plumbing of construction, never of draws.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    EXPERIMENT_CONFIGS,
    RunConfig,
    RunReport,
    Session,
    config_digest,
    describe_experiment,
    expand_grid,
    run_config_result,
)
from repro.core.adaptation import DampedPolicy, TDCoarsePolicy, TDFinePolicy
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings
from repro.datasets.synthetic import make_synthetic_scenario
from repro.errors import ConfigurationError
from repro.network.simulator import EpochSimulator
from repro.registry import (
    AGGREGATES,
    DATASETS,
    FAILURE_MODELS,
    SCHEMES,
    TOPOLOGIES,
    available,
    register_aggregate,
    register_dataset,
    register_failure_model,
    register_scheme,
)
from repro.serialization import dumps, from_jsonable, loads, to_jsonable

QUICK = dict(
    num_sensors=40, epochs=4, converge_epochs=8, scenario_seed=4, seed=1
)


def quick_config(scheme: str, failure: str) -> RunConfig:
    return RunConfig(scheme=scheme, failure=failure, **QUICK)


def hand_wired_result(scheme_name: str, failure_spec: str):
    """The pre-redesign path: explicit constructors, no registries.

    Mirrors the package quickstart and the runner's historical wiring:
    scenario and bushy tree from the scenario seed, scheme classes built
    directly, stabilisation (adapting every epoch) on the scenario seed,
    measurement from epoch 1000 on the run seed.
    """
    from repro.aggregates.count import CountAggregate
    from repro.tree.construction import build_bushy_tree

    scenario = make_synthetic_scenario(
        num_sensors=QUICK["num_sensors"], seed=QUICK["scenario_seed"]
    )
    tree = build_bushy_tree(scenario.rings, seed=QUICK["scenario_seed"])
    aggregate = CountAggregate()
    if scheme_name == "TAG":
        scheme = TagScheme(scenario.deployment, tree, aggregate)
    elif scheme_name == "SD":
        scheme = SynopsisDiffusionScheme(
            scenario.deployment, scenario.rings, aggregate
        )
    else:
        graph = TDGraph(
            scenario.rings, tree, initial_modes_by_level(scenario.rings, 0)
        )
        policy = (
            DampedPolicy(TDCoarsePolicy(threshold=0.9))
            if scheme_name == "TD-Coarse"
            else TDFinePolicy(threshold=0.9)
        )
        scheme = TributaryDeltaScheme(
            scenario.deployment,
            graph,
            aggregate,
            policy=policy,
            name=scheme_name,
        )
    from repro.network.failures import GlobalLoss, NoLoss

    failure = (
        NoLoss()
        if failure_spec == "none"
        else GlobalLoss(float(failure_spec.split(":")[1]))
    )
    readings = ConstantReadings(1.0)
    adaptive = scheme_name in ("TD-Coarse", "TD")
    if adaptive:
        EpochSimulator(
            scenario.deployment,
            failure,
            scheme,
            seed=QUICK["scenario_seed"],
            adapt_interval=1,
        ).run(0, readings, warmup=QUICK["converge_epochs"])
    simulator = EpochSimulator(
        scenario.deployment,
        failure,
        scheme,
        seed=QUICK["seed"],
        adapt_interval=10 if adaptive else 0,
    )
    return simulator.run(QUICK["epochs"], readings, start_epoch=1000)


class TestSessionParity:
    """Config-built runs == hand-wired runs, byte for byte."""

    @pytest.mark.parametrize("failure", ["none", "global:0.3"])
    @pytest.mark.parametrize("scheme", ["TAG", "SD", "TD-Coarse", "TD"])
    def test_byte_identical_to_hand_wired(self, scheme, failure):
        expected = hand_wired_result(scheme, failure)
        report = Session().run(quick_config(scheme, failure))
        assert report.result.estimates == expected.estimates
        assert report.result.energy.per_node_uj == expected.energy.per_node_uj
        assert report.result.energy.total_words == expected.energy.total_words
        assert [e.log.words_sent for e in report.result.epochs] == [
            e.log.words_sent for e in expected.epochs
        ]

    def test_scalar_and_blocked_paths_agree(self):
        config = quick_config("TD", "global:0.3")
        blocked = Session().run(config).result
        scalar = Session().run(
            config.replace(use_batch=False, use_blocked=False)
        ).result
        assert blocked.estimates == scalar.estimates


class TestRunConfig:
    def test_round_trips_every_named_experiment(self):
        for name, config in EXPERIMENT_CONFIGS.items():
            assert RunConfig.from_json(config.to_json()) == config, name

    def test_canonical_json_is_stable(self):
        config = quick_config("TAG", "none")
        assert config.to_json() == RunConfig.from_json(config.to_json()).to_json()

    def test_unknown_keys_are_actionable(self):
        payload = json.loads(quick_config("TAG", "none").to_json())
        payload["epocks"] = 3
        with pytest.raises(ConfigurationError, match="epocks"):
            RunConfig.from_json(json.dumps(payload))

    def test_missing_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="scheme"):
            RunConfig.from_jsonable({"epochs": 3})

    def test_wrongly_typed_values_are_actionable(self):
        for key, value in (
            ("epochs", "2"),
            ("threshold", "0.9"),
            ("use_batch", "true"),
            ("scheme", 7),
            ("query", 3),
        ):
            payload = {"scheme": "TAG", key: value}
            with pytest.raises(ConfigurationError, match=key):
                RunConfig.from_jsonable(payload)
        # Whole-number floats for float fields are fine (JSON writers
        # often emit 1 for 1.0).
        config = RunConfig.from_jsonable({"scheme": "TAG", "threshold": 1})
        assert config.threshold == 1.0

    def test_newer_schema_version_rejected(self):
        payload = json.loads(quick_config("TAG", "none").to_json())
        payload["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            RunConfig.from_json(json.dumps(payload))

    def test_unknown_names_are_actionable(self):
        with pytest.raises(ConfigurationError, match="available"):
            RunConfig(scheme="nope")
        with pytest.raises(ConfigurationError, match="available"):
            RunConfig(scheme="TAG", aggregate="median")
        with pytest.raises(ConfigurationError, match="available"):
            RunConfig(scheme="TAG", topology="mars")
        with pytest.raises(ConfigurationError):
            RunConfig(scheme="TAG", failure="global")
        with pytest.raises(ConfigurationError):
            RunConfig(scheme="TAG", reading="lorem")

    def test_validation_bounds(self):
        with pytest.raises(ConfigurationError):
            RunConfig(scheme="TAG", epochs=-1)
        with pytest.raises(ConfigurationError):
            RunConfig(scheme="TAG", threshold=0.0)
        with pytest.raises(ConfigurationError):
            RunConfig(scheme="TAG", tree_attempts=0)

    def test_query_replaces_aggregate(self):
        config = RunConfig(
            scheme="TAG",
            query="SELECT count WHERE value >= 1",
            aggregate="count",
            **QUICK,
        )
        report = Session().run(config)
        assert report.result.estimates  # executed through the query layer
        with pytest.raises(ConfigurationError):
            RunConfig(scheme="TAG", query="SELECT nothing")

    def test_digest_depends_on_fields(self):
        a = quick_config("TAG", "none")
        b = quick_config("TAG", "global:0.3")
        assert config_digest(a) == config_digest(quick_config("TAG", "none"))
        assert config_digest(a) != config_digest(b)

    def test_serialization_codec_round_trip(self):
        config = quick_config("SD", "global:0.3")
        assert loads(dumps(config)) == config
        payload = to_jsonable(config)
        assert payload["type"] == "run-config"
        assert from_jsonable(payload) == config

    def test_run_report_codec_round_trip(self):
        config = quick_config("TAG", "none")
        report = Session().run(config)
        decoded = loads(dumps(report))
        assert isinstance(decoded, RunReport)
        assert decoded.config == config
        assert decoded.result.estimates == report.result.estimates


class TestDescribe:
    def test_every_named_experiment_describes(self):
        for name in EXPERIMENT_CONFIGS:
            config = describe_experiment(name)
            assert RunConfig.from_json(config.to_json()) == config

    def test_unknown_experiment_is_actionable(self):
        with pytest.raises(ConfigurationError, match="describable"):
            describe_experiment("fig99")


class TestRegistries:
    def test_builtins_discoverable(self):
        names = available()
        assert names["schemes"] == ("TAG", "SD", "TD-Coarse", "TD")
        for aggregate in (
            "count", "sum", "avg", "min", "max", "sample",
            "distinct", "moments",
        ):
            assert aggregate in names["aggregates"]
        assert {"none", "global", "regional", "timeline"} <= set(
            names["failure_models"]
        )
        assert {"synthetic", "labdata"} <= set(names["topologies"])
        assert {"constant", "uniform", "diurnal"} <= set(names["datasets"])

    def test_register_scheme_end_to_end(self):
        @register_scheme("TAG-echo")
        def build_echo(context):
            return TagScheme(
                context.deployment,
                context.tree,
                context.aggregate,
                attempts=context.tree_attempts,
                name="TAG-echo",
                use_batch=context.use_batch,
            )

        try:
            config = quick_config("TAG-echo", "global:0.3")
            report = Session().run(config)
            baseline = Session().run(quick_config("TAG", "global:0.3"))
            # Same wiring, same draws: the registered clone is TAG.
            assert report.result.estimates == baseline.result.estimates
        finally:
            SCHEMES.unregister("TAG-echo")
        with pytest.raises(ConfigurationError):
            quick_config("TAG-echo", "none")

    def test_register_aggregate_reaches_query_and_config(self):
        from repro.aggregates.count import CountAggregate
        from repro.query import parse_query

        register_aggregate("headcount")(CountAggregate)
        try:
            assert parse_query("SELECT headcount").select == "headcount"
            config = RunConfig(scheme="TAG", aggregate="headcount", **QUICK)
            report = Session().run(config)
            assert report.result.estimates
        finally:
            AGGREGATES.unregister("headcount")
        with pytest.raises(ConfigurationError):
            parse_query("SELECT headcount")

    def test_register_failure_model_and_dataset(self):
        from repro.network.failures import GlobalLoss

        @register_failure_model("half")
        def build_half():
            return GlobalLoss(0.5)

        @register_dataset("twos")
        def build_twos():
            return ConstantReadings(2.0)

        try:
            config = RunConfig(
                scheme="TAG", failure="half", reading="twos", **QUICK
            )
            report = Session().run(config)
            reference = Session().run(
                RunConfig(
                    scheme="TAG",
                    failure="global:0.5",
                    reading="constant:2.0",
                    **QUICK,
                )
            )
            assert report.result.estimates == reference.result.estimates
        finally:
            FAILURE_MODELS.unregister("half")
            DATASETS.unregister("twos")

    def test_resolution_errors_list_available(self):
        with pytest.raises(ConfigurationError, match="TAG"):
            SCHEMES.resolve("bogus")
        with pytest.raises(ConfigurationError, match="synthetic"):
            TOPOLOGIES.resolve("bogus")


class TestSession:
    def test_cache_round_trip(self, tmp_path):
        config = quick_config("TAG", "global:0.3")
        first = Session(cache_dir=tmp_path).run(config)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["config"]["scheme"] == "TAG"
        # A cached re-run must not recompute: poison the executor.
        import repro.api as api_module

        original = api_module.run_config_result
        api_module.run_config_result = None  # would TypeError on a miss
        try:
            second = Session(cache_dir=tmp_path).run(config)
        finally:
            api_module.run_config_result = original
        assert second.result.estimates == first.result.estimates
        assert (
            second.result.energy.per_node_uj == first.result.energy.per_node_uj
        )

    def test_unusable_cache_entries_recompute(self, tmp_path):
        config = quick_config("TAG", "none")
        from repro.api import config_digest

        path = tmp_path / f"{config_digest(config)}.json"
        baseline = Session().run(config)
        for payload in (
            "{not json",
            '{"config": {}}',  # no result key
            json.dumps(
                {"result": {"type": "run-result", "version": 99}}
            ),  # from a newer writer: ConfigurationError inside the codec
        ):
            path.write_text(payload)
            report = Session(cache_dir=tmp_path).run(config)
            assert report.result.estimates == baseline.result.estimates

    def test_labdata_report_uses_actual_deployment_size(self):
        config = RunConfig(
            scheme="TAG",
            topology="labdata",
            scenario_seed=7,
            reading="diurnal:7",
            aggregate="sum",
            epochs=1,
            converge_epochs=0,
            # Deliberately wrong: the fixed floor plan has 54 motes.
            num_sensors=600,
        )
        report = Session().run(config)
        assert report.num_sensors() == 54
        assert 0.0 <= report.mean_contributing_fraction() <= 1.0

    def test_sweep_explicit_configs(self):
        configs = [
            quick_config("TAG", "none"),
            quick_config("SD", "none"),
        ]
        report = Session().sweep(configs)
        assert len(report.results) == 2
        assert set(report.rms_by_scheme()) == {"TAG", "SD"}
        assert "rms_error" in report.render()

    def test_sweep_grid_expansion(self):
        base = quick_config("TAG", "none")
        report = Session().sweep(
            {"scheme": ["TAG", "SD"], "failure": ["none", "global:0.3"]},
            base=base,
        )
        labels = [(c.scheme, c.failure) for c in report.configs]
        assert labels == [
            ("TAG", "none"),
            ("TAG", "global:0.3"),
            ("SD", "none"),
            ("SD", "global:0.3"),
        ]

    def test_sweep_grid_needs_base(self):
        with pytest.raises(ConfigurationError, match="base"):
            Session().sweep({"scheme": ["TAG"]})

    def test_sweep_matches_individual_runs(self):
        configs = [
            quick_config("TAG", "global:0.3"),
            quick_config("TD", "global:0.3"),
        ]
        swept = Session().sweep(configs)
        for config, result in swept.rows():
            assert (
                result.estimates
                == run_config_result(config).estimates
            )

    def test_expand_grid_rejects_scalar_axis(self):
        with pytest.raises(ConfigurationError, match="axis"):
            expand_grid(quick_config("TAG", "none"), scheme="TAG")
