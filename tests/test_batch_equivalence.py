"""The batch-vs-scalar invariant: vectorized paths are bit-identical.

The level-synchronous engine (``hash_unit_batch`` -> ``transmit_batch`` ->
per-level scheme batching) must reproduce the scalar per-node path draw for
draw — this is what keeps the paper's paired-comparison methodology intact
while the hot loops vectorize. These tests sweep seeds, loss rates
(including the 0 and 1 edge cases) and retransmission counts, asserting
byte-identical delivery sets, transmission logs, per-node load maps and
``RunResult.estimates``.
"""

from __future__ import annotations

import itertools

import pytest

from repro._hashing import (
    geometric_level,
    geometric_level_batch,
    hash_key,
    hash_key_batch,
    hash_key_from,
    hash_unit,
    hash_unit_batch,
)
from repro.aggregates.count import CountAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings, UniformReadings
from repro.network.failures import GlobalLoss, NoLoss, RegionalLoss
from repro.network.links import Channel, Transmission, transmit_sequential
from repro.network.placement import grid_random_placement
from repro.network.simulator import EpochSimulator
from repro.tree.construction import build_bushy_tree

SEEDS = (0, 1, 7)
LOSS_RATES = (0.0, 0.3, 1.0)
ATTEMPTS = (1, 3)


class TestHashBatch:
    def test_hash_key_batch_matches_scalar(self):
        prefix = ("channel", 42)
        senders = list(range(0, 120, 3))
        receivers = [(node * 7 + 1) % 60 for node in senders]
        keys = hash_key_batch(prefix, senders, receivers)
        assert [int(key) for key in keys] == [
            hash_key(*prefix, sender, receiver)
            for sender, receiver in zip(senders, receivers)
        ]

    def test_hash_unit_batch_matches_scalar(self):
        prefix = ("channel", 3)
        column = list(range(200))
        units = hash_unit_batch(prefix, column)
        assert [float(unit) for unit in units] == [
            hash_unit(*prefix, value) for value in column
        ]

    def test_geometric_level_batch_matches_scalar(self):
        column = list(range(300))
        levels = geometric_level_batch(("fm-level", "count"), column)
        assert [int(level) for level in levels] == [
            geometric_level("fm-level", "count", value) for value in column
        ]

    def test_chain_state_prefix(self):
        state = hash_key_from(hash_key("fm-bucket"), "sum", 9)
        assert list(hash_key_batch(state, [0, 1, 2])) == [
            hash_key("fm-bucket", "sum", 9, j) for j in range(3)
        ]

    def test_negative_column_entries_masked_like_scalar(self):
        column = [-5, -1, 0, 3]
        assert [int(key) for key in hash_key_batch(("x",), column)] == [
            hash_key("x", value) for value in column
        ]


class TestSketchSizeModel:
    def test_words_fast_path_matches_rle_model(self):
        """FMSketch.words() inlines the RLE size model; keep them in lock-step."""
        import random

        from repro.multipath.fm import FMSketch
        from repro.network.messages import rle_words_for_bitmaps

        rng = random.Random(0)
        for _ in range(200):
            num_bitmaps = rng.choice((1, 8, 40))
            bits = rng.choice((4, 16, 32))
            bitmaps = [
                rng.randrange(0, 1 << bits) if rng.random() < 0.8 else 0
                for _ in range(num_bitmaps)
            ]
            sketch = FMSketch(num_bitmaps, bits, bitmaps)
            assert sketch.words() == max(
                1, rle_words_for_bitmaps(bitmaps, bits)
            ), (num_bitmaps, bits, bitmaps)


class TestTransmitBatchEquivalence:
    @pytest.fixture(scope="class")
    def deployment(self):
        return grid_random_placement(40, seed=3)

    def _transmissions(self, deployment, attempts):
        nodes = deployment.sensor_ids
        return [
            Transmission(
                sender=node,
                receivers=tuple(nodes[(node % 7) : (node % 7) + 4]),
                words=node % 5,
                messages=1 + node % 2,
                attempts=attempts,
            )
            for node in nodes[:25]
        ]

    @pytest.mark.parametrize(
        "seed,loss,attempts", list(itertools.product(SEEDS, LOSS_RATES, ATTEMPTS))
    )
    def test_bit_identical_to_scalar_loop(self, deployment, seed, loss, attempts):
        scalar = Channel(deployment, GlobalLoss(loss), seed=seed)
        batch = Channel(deployment, GlobalLoss(loss), seed=seed)
        transmissions = self._transmissions(deployment, attempts)
        for epoch in range(4):
            expected = transmit_sequential(scalar, transmissions, epoch)
            actual = batch.transmit_batch(transmissions, epoch)
            assert actual == expected
        assert batch.log == scalar.log
        assert batch.per_node_words() == scalar.per_node_words()
        assert batch.per_node_messages() == scalar.per_node_messages()

    def test_regional_loss_batch_rates(self, deployment):
        model = RegionalLoss(0.8, 0.1)
        scalar = Channel(deployment, model, seed=5)
        batch = Channel(deployment, model, seed=5)
        transmissions = self._transmissions(deployment, attempts=2)
        for epoch in range(3):
            assert batch.transmit_batch(
                transmissions, epoch
            ) == transmit_sequential(scalar, transmissions, epoch)

    def test_no_loss_shortcut(self, deployment):
        channel = Channel(deployment, NoLoss(), seed=0)
        [heard] = channel.transmit_batch(
            [Transmission(1, (2, 3, 4), words=5)], epoch=0
        )
        assert heard == [2, 3, 4]


class TestSchemeEquivalence:
    """Full-run equivalence: batch and scalar engines, four schemes."""

    def _schemes(self, scenario, tree, aggregate_factory, use_batch):
        schemes = {
            "TAG": TagScheme(
                scenario.deployment,
                tree,
                aggregate_factory(),
                attempts=2,
                use_batch=use_batch,
            ),
            "SD": SynopsisDiffusionScheme(
                scenario.deployment,
                scenario.rings,
                aggregate_factory(),
                use_batch=use_batch,
            ),
        }
        for name, level in (("TD-Coarse", 1), ("TD", 2)):
            graph = TDGraph(
                scenario.rings,
                tree,
                initial_modes_by_level(scenario.rings, level),
            )
            schemes[name] = TributaryDeltaScheme(
                scenario.deployment,
                graph,
                aggregate_factory(),
                use_batch=use_batch,
                name=name,
            )
        return schemes

    @pytest.mark.parametrize("loss", (0.0, 0.3, 1.0))
    def test_estimates_bit_identical(self, small_scenario, small_tree, loss):
        batch = self._schemes(small_scenario, small_tree, CountAggregate, True)
        scalar = self._schemes(small_scenario, small_tree, CountAggregate, False)
        readings = ConstantReadings(1.0)
        for name in batch:
            run_batch = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(loss),
                batch[name],
                seed=9,
                adapt_interval=0,
            ).run(5, readings, start_epoch=100)
            run_scalar = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(loss),
                scalar[name],
                seed=9,
                adapt_interval=0,
            ).run(5, readings, start_epoch=100)
            assert run_batch.estimates == run_scalar.estimates, name
            assert [r.contributing for r in run_batch.epochs] == [
                r.contributing for r in run_scalar.epochs
            ]
            assert [r.log for r in run_batch.epochs] == [
                r.log for r in run_scalar.epochs
            ]

    def test_sum_aggregate_equivalence(self, small_scenario, small_tree):
        batch = self._schemes(small_scenario, small_tree, SumAggregate, True)
        scalar = self._schemes(small_scenario, small_tree, SumAggregate, False)
        readings = UniformReadings(1, 40, seed=5)
        for name in batch:
            run_batch = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.25),
                batch[name],
                seed=4,
                adapt_interval=0,
            ).run(4, readings, start_epoch=30)
            run_scalar = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.25),
                scalar[name],
                seed=4,
                adapt_interval=0,
            ).run(4, readings, start_epoch=30)
            assert run_batch.estimates == run_scalar.estimates, name

    def test_per_node_load_maps_identical(self, small_scenario, small_tree):
        readings = ConstantReadings(1.0)
        simulators = []
        for use_batch in (True, False):
            scheme = TagScheme(
                small_scenario.deployment,
                small_tree,
                CountAggregate(),
                use_batch=use_batch,
            )
            simulator = EpochSimulator(
                small_scenario.deployment,
                GlobalLoss(0.3),
                scheme,
                seed=2,
                adapt_interval=0,
            )
            simulator.run(3, readings)
            simulators.append(simulator)
        batch_sim, scalar_sim = simulators
        words = batch_sim.channel.per_node_words()
        assert words == scalar_sim.channel.per_node_words()
        # Deployment-complete: every sensor appears, even if it never sent.
        assert set(words) == set(small_scenario.deployment.sensor_ids)
