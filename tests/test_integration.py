"""Cross-module integration tests: full pipelines over multiple epochs."""

from __future__ import annotations

import pytest

from repro.aggregates.average import AverageAggregate
from repro.aggregates.count import CountAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.adaptation import DampedPolicy, TDCoarsePolicy, TDFinePolicy
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.core.validation import audit, topology_of_td_graph
from repro.datasets.streams import ConstantReadings, UniformReadings
from repro.frequent.mp_fi import KMVOperator
from repro.frequent.td_fi import TributaryDeltaFrequentItems
from repro.frequent.reporting import false_negative_rate, true_frequent
from repro.datasets.streams import ZipfItemStream, exact_item_counts
from repro.network.failures import (
    FailureSchedule,
    GlobalLoss,
    NoLoss,
    RegionalLoss,
)
from repro.network.links import Channel
from repro.network.simulator import EpochSimulator


class TestPairedComparison:
    """All schemes over one channel seed: the paper's paired methodology."""

    def test_ordering_under_moderate_loss(self, medium_scenario, medium_tree):
        failure = GlobalLoss(0.25)
        readings = ConstantReadings(1.0)
        sensors = medium_scenario.deployment.num_sensors
        tag = TagScheme(medium_scenario.deployment, medium_tree, CountAggregate())
        sd = SynopsisDiffusionScheme(
            medium_scenario.deployment, medium_scenario.rings, CountAggregate()
        )
        graph = TDGraph(
            medium_scenario.rings,
            medium_tree,
            initial_modes_by_level(medium_scenario.rings, 0),
        )
        td = TributaryDeltaScheme(
            medium_scenario.deployment, graph, CountAggregate(),
            policy=TDFinePolicy(),
        )
        EpochSimulator(
            medium_scenario.deployment, failure, td, seed=5, adapt_interval=1
        ).run(0, readings, warmup=80)

        results = {}
        for name, scheme in (("tag", tag), ("sd", sd), ("td", td)):
            interval = 10 if name == "td" else 0
            run = EpochSimulator(
                medium_scenario.deployment, failure, scheme, seed=6,
                adapt_interval=interval,
            ).run(20, readings, start_epoch=100)
            results[name] = run
        # The paper's headline: TD at most the error of the best baseline
        # (generous tolerance at this small scale), and far below TAG.
        assert results["td"].rms_error() < results["tag"].rms_error()
        assert results["td"].rms_error() < results["sd"].rms_error() + 0.1
        # And the graph stayed correct throughout.
        assert audit(topology_of_td_graph(graph)).correct

    def test_average_aggregate_end_to_end(self, small_scenario, small_tree):
        readings = UniformReadings(50, 150, seed=8)
        graph = TDGraph(
            small_scenario.rings,
            small_tree,
            initial_modes_by_level(small_scenario.rings, 1),
        )
        td = TributaryDeltaScheme(
            small_scenario.deployment, graph, AverageAggregate()
        )
        run = EpochSimulator(
            small_scenario.deployment, GlobalLoss(0.15), td, seed=2,
            adapt_interval=0,
        ).run(10, readings)
        # Average is ratio-robust: estimates stay near the truth even with
        # moderate loss and sketch error.
        assert run.rms_error() < 0.25


class TestScheduleDrivenAdaptation:
    def test_delta_grows_then_shrinks(self, medium_scenario, medium_tree):
        schedule = FailureSchedule(
            [(0, GlobalLoss(0.0)), (30, GlobalLoss(0.35)), (90, GlobalLoss(0.0))]
        )
        readings = ConstantReadings(1.0)
        graph = TDGraph(
            medium_scenario.rings,
            medium_tree,
            initial_modes_by_level(medium_scenario.rings, 0),
        )
        td = TributaryDeltaScheme(
            medium_scenario.deployment, graph, CountAggregate(),
            policy=TDFinePolicy(),
        )
        simulator = EpochSimulator(
            medium_scenario.deployment, schedule, td, seed=3, adapt_interval=2
        )
        run = simulator.run(150, readings)
        sizes = [int(e.extra.get("delta_size", 0)) for e in run.epochs]
        quiet_before = max(sizes[:30])
        lossy_peak = max(sizes[30:90])
        quiet_after = sizes[-1]
        assert lossy_peak > quiet_before
        assert quiet_after < lossy_peak

    def test_regional_failure_regional_delta(self, medium_scenario, medium_tree):
        failure = RegionalLoss(0.5, 0.02)
        readings = ConstantReadings(1.0)
        graph = TDGraph(
            medium_scenario.rings,
            medium_tree,
            initial_modes_by_level(medium_scenario.rings, 0),
        )
        td = TributaryDeltaScheme(
            medium_scenario.deployment, graph, CountAggregate(),
            policy=TDFinePolicy(),
        )
        EpochSimulator(
            medium_scenario.deployment, failure, td, seed=4, adapt_interval=1
        ).run(0, readings, warmup=100)
        delta = graph.delta_region() - {0}
        deployment = medium_scenario.deployment
        if delta:
            inside = sum(1 for n in delta if failure.contains(deployment, n))
            all_inside = sum(
                1
                for n in deployment.sensor_ids
                if failure.contains(deployment, n)
            )
            assert inside / len(delta) > all_inside / deployment.num_sensors


class TestFrequentItemsOverConvergedGraph:
    def test_fi_rides_adapted_delta(self, medium_scenario, medium_tree):
        """The paper's design: one delta serves many concurrent queries."""
        failure = GlobalLoss(0.3)
        graph = TDGraph(
            medium_scenario.rings,
            medium_tree,
            initial_modes_by_level(medium_scenario.rings, 0),
        )
        count_scheme = TributaryDeltaScheme(
            medium_scenario.deployment, graph, CountAggregate(),
            policy=TDFinePolicy(),
        )
        EpochSimulator(
            medium_scenario.deployment, failure, count_scheme, seed=7,
            adapt_interval=1,
        ).run(0, ConstantReadings(1.0), warmup=60)
        assert graph.delta_region()

        stream = ZipfItemStream(items_per_node=60, universe=150, alpha=1.3, seed=7)
        counts = exact_item_counts(
            stream, medium_scenario.deployment.sensor_ids, 0
        )
        truth = true_frequent(counts, 0.02)
        fi = TributaryDeltaFrequentItems(
            graph,
            epsilon=0.002,
            support=0.02,
            total_items_hint=sum(counts.values()),
            operator=KMVOperator(k=64),
        )
        channel = Channel(medium_scenario.deployment, failure, seed=8)
        outcome = fi.run_epoch(0, channel, lambda n, e: stream.items(n, e))
        assert false_negative_rate(truth, outcome.reported) <= 0.4


class TestDeterminismAcrossRuns:
    def test_everything_reproducible(self, small_scenario, small_tree):
        def run_once():
            graph = TDGraph(
                small_scenario.rings,
                small_tree,
                initial_modes_by_level(small_scenario.rings, 0),
            )
            td = TributaryDeltaScheme(
                small_scenario.deployment, graph, SumAggregate(),
                policy=DampedPolicy(TDCoarsePolicy()),
            )
            run = EpochSimulator(
                small_scenario.deployment, GlobalLoss(0.2), td, seed=11,
                adapt_interval=5,
            ).run(30, UniformReadings(1, 9, seed=11))
            return run.estimates, sorted(graph.delta_region())

        first = run_once()
        second = run_once()
        assert first == second


class TestDocstringExample:
    def test_package_docstring_quickstart_runs(self):
        """The example in repro/__init__'s docstring must stay executable."""
        import textwrap

        import repro

        lines = repro.__doc__.splitlines()
        start = next(i for i, l in enumerate(lines) if "from repro import" in l)
        end = next(i for i, l in enumerate(lines) if "print(" in l)
        code = textwrap.dedent("\n".join(lines[start : end + 1]))
        namespace = {}
        exec(code, namespace)  # noqa: S102 - doc-sync check
        assert "report" in namespace
        assert namespace["report"].rms_error() >= 0.0
