"""Tests for message sizing and the RLE bitmap model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.messages import (
    MessageAccountant,
    TINYDB_MESSAGE_BYTES,
    WORDS_PER_MESSAGE,
    rle_encoded_bits,
    rle_words_for_bitmaps,
)


class TestMessageAccountant:
    def test_words_per_message(self):
        accountant = MessageAccountant()
        assert accountant.words_per_message == TINYDB_MESSAGE_BYTES // 4

    def test_zero_words_still_one_message(self):
        accountant = MessageAccountant()
        assert accountant.spec_for_words(0).messages == 1

    def test_exact_fit(self):
        accountant = MessageAccountant()
        spec = accountant.spec_for_words(WORDS_PER_MESSAGE)
        assert spec.messages == 1

    def test_one_word_over(self):
        accountant = MessageAccountant()
        spec = accountant.spec_for_words(WORDS_PER_MESSAGE + 1)
        assert spec.messages == 2

    def test_rejects_tiny_message(self):
        with pytest.raises(ConfigurationError):
            MessageAccountant(message_bytes=2)


class TestRLE:
    def test_empty_bitmap_costs_length_field_only(self):
        assert rle_encoded_bits(0, 32) == 5

    def test_pure_run(self):
        assert rle_encoded_bits(0b0111, 32) == 5

    def test_run_plus_fringe(self):
        # run of 2 ones, fringe covers bits 2..4 (highest set bit 4).
        bitmap = 0b10011
        assert rle_encoded_bits(bitmap, 32) == 5 + 3

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            rle_encoded_bits(-1, 32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_encoded_never_larger_than_plus_header(self, bitmap):
        assert rle_encoded_bits(bitmap, 32) <= 5 + 32

    def test_forty_typical_sum_sketches_fit_one_message(self):
        # The paper's claim: 40 32-bit Sum synopses fit in a 48-byte message
        # with RLE. Typical FM bitmaps: a solid low run plus a short fringe.
        bitmaps = [(1 << 10) - 1] * 40  # 10-bit runs, no fringe
        words = rle_words_for_bitmaps(bitmaps, 32)
        assert words <= WORDS_PER_MESSAGE

    def test_word_rounding(self):
        assert rle_words_for_bitmaps([0], 32) == 1
