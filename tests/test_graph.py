"""Tests for the Tributary-Delta graph: correctness and switchability."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.modes import Mode
from repro.errors import CorrectnessError, TopologyError
from repro.network.placement import BASE_STATION


@pytest.fixture()
def graph(small_scenario, small_tree):
    return TDGraph(
        small_scenario.rings,
        small_tree,
        initial_modes_by_level(small_scenario.rings, 1),
    )


class TestConstruction:
    def test_initial_modes_by_level(self, small_scenario, small_tree):
        rings = small_scenario.rings
        graph = TDGraph(rings, small_tree, initial_modes_by_level(rings, 1))
        for node in rings.levels:
            expected = Mode.MULTIPATH if rings.level(node) <= 1 else Mode.TREE
            assert graph.mode(node) is expected

    def test_all_tree_allowed(self, small_scenario, small_tree):
        rings = small_scenario.rings
        graph = TDGraph(rings, small_tree, initial_modes_by_level(rings, -1))
        assert graph.delta_region() == set()

    def test_all_multipath_allowed(self, small_scenario, small_tree):
        rings = small_scenario.rings
        graph = TDGraph(
            rings, small_tree, initial_modes_by_level(rings, rings.depth)
        )
        assert len(graph.delta_region()) == len(rings.levels)

    def test_edge_correctness_enforced(self, small_scenario, small_tree):
        rings = small_scenario.rings
        # Hand-build an invalid labelling: one M node deep in the tree whose
        # parent is T.
        modes = initial_modes_by_level(rings, -1)
        deep_node = max(rings.levels, key=lambda n: rings.level(n))
        modes[deep_node] = Mode.MULTIPATH
        with pytest.raises(CorrectnessError):
            TDGraph(rings, small_tree, modes)

    def test_tag_tree_rejected(self, small_scenario):
        # A tree with same-level links violates the rings-subset constraint.
        from repro.tree.construction import build_tag_tree

        rings = small_scenario.rings
        tree = build_tag_tree(rings, seed=0, same_level_fraction=0.5)
        with pytest.raises(TopologyError):
            TDGraph(rings, tree)


class TestSwitchability:
    def test_observation1(self, graph):
        # All tree children of a switchable M vertex are switchable T.
        for node in graph.switchable_m_nodes():
            for child in graph.tree_children(node):
                assert graph.is_switchable_t(child)

    def test_lemma1_t_side(self, graph):
        # If T vertices exist, at least one is switchable.
        t_nodes = [n for n in graph.modes() if graph.is_tree(n)]
        assert t_nodes
        assert graph.switchable_t_nodes()

    def test_lemma1_m_side(self, graph):
        m_nodes = [n for n in graph.modes() if graph.is_multipath(n)]
        assert m_nodes
        assert graph.switchable_m_nodes()

    def test_switch_t_to_m_requires_m_parent(self, graph):
        # A T node two levels below the delta boundary is not switchable.
        rings = graph.rings
        deep = [n for n in rings.levels if rings.level(n) >= 3]
        if deep:
            node = deep[0]
            assert not graph.is_switchable_t(node)
            with pytest.raises(CorrectnessError):
                graph.switch_to_multipath(node)

    def test_switch_round_trip(self, graph):
        node = graph.switchable_t_nodes()[0]
        graph.switch_to_multipath(node)
        assert graph.is_multipath(node)
        graph.validate()
        # A just-switched M leaf has no downstream M, so it can switch back.
        assert graph.is_switchable_m(node)
        graph.switch_to_tree(node)
        assert graph.is_tree(node)
        graph.validate()

    def test_expand_all_widens_one_level(self, small_scenario, small_tree):
        rings = small_scenario.rings
        graph = TDGraph(rings, small_tree, initial_modes_by_level(rings, 0))
        before = graph.delta_region()
        switched = graph.expand_all()
        assert switched
        after = graph.delta_region()
        assert after > before
        graph.validate()

    def test_shrink_all_reverses_expand(self, small_scenario, small_tree):
        rings = small_scenario.rings
        graph = TDGraph(rings, small_tree, initial_modes_by_level(rings, 0))
        graph.expand_all()
        while graph.delta_region():
            if not graph.shrink_all():
                break
        assert graph.delta_region() == set()
        graph.validate()


class TestRandomSwitchSequences:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 10_000)), max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_invariant_preserved(self, small_scenario, small_tree, moves):
        # Any sequence of legal switches keeps edge correctness (Property 1).
        rings = small_scenario.rings
        graph = TDGraph(rings, small_tree, initial_modes_by_level(rings, 0))
        for expand, pick in moves:
            candidates = (
                graph.switchable_t_nodes() if expand else graph.switchable_m_nodes()
            )
            if not candidates:
                continue
            node = candidates[pick % len(candidates)]
            if expand:
                graph.switch_to_multipath(node)
            else:
                graph.switch_to_tree(node)
            graph.validate()

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_lemma1_holds_at_every_level(self, small_scenario, small_tree, level):
        rings = small_scenario.rings
        graph = TDGraph(
            rings, small_tree, initial_modes_by_level(rings, min(level, rings.depth))
        )
        has_t = any(graph.is_tree(n) for n in rings.levels)
        has_m = any(graph.is_multipath(n) for n in rings.levels)
        if has_t:
            assert graph.switchable_t_nodes()
        if has_m:
            assert graph.switchable_m_nodes()


class TestDiagnostics:
    def test_delta_summary(self, graph):
        summary = graph.delta_summary()
        assert summary["delta_size"] == len(graph.delta_region())
        assert 0.0 <= summary["delta_fraction"] <= 1.0
        assert summary["delta_max_level"] >= 0
