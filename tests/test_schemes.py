"""Tests for the TAG, SD and TD aggregation schemes."""

from __future__ import annotations

import pytest

from repro.aggregates.count import CountAggregate
from repro.aggregates.minmax import MaxAggregate
from repro.aggregates.sum_ import SumAggregate
from repro.core.graph import TDGraph, initial_modes_by_level
from repro.core.sd_scheme import SynopsisDiffusionScheme
from repro.core.tag_scheme import TagScheme
from repro.core.td_scheme import TributaryDeltaScheme
from repro.datasets.streams import ConstantReadings, UniformReadings
from repro.network.failures import GlobalLoss, NoLoss
from repro.network.links import Channel
from repro.network.simulator import EpochSimulator


@pytest.fixture()
def readings():
    return ConstantReadings(1.0)


def run_once(deployment, failure, scheme, readings, epoch=0, seed=0):
    channel = Channel(deployment, failure, seed=seed)
    return scheme.run_epoch(epoch, channel, readings), channel


class TestTagScheme:
    def test_exact_without_loss(self, small_scenario, small_tree, readings):
        scheme = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        outcome, _ = run_once(small_scenario.deployment, NoLoss(), scheme, readings)
        assert outcome.estimate == small_scenario.deployment.num_sensors
        assert outcome.contributing == small_scenario.deployment.num_sensors
        assert outcome.contributing_estimate == outcome.contributing

    def test_sum_exact_without_loss(self, small_scenario, small_tree):
        scheme = TagScheme(small_scenario.deployment, small_tree, SumAggregate())
        readings = UniformReadings(1, 50, seed=3)
        outcome, _ = run_once(small_scenario.deployment, NoLoss(), scheme, readings)
        assert outcome.estimate == scheme.exact_answer(0, readings)

    def test_total_loss_yields_nothing(self, small_scenario, small_tree, readings):
        scheme = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        outcome, _ = run_once(
            small_scenario.deployment, GlobalLoss(1.0), scheme, readings
        )
        assert outcome.estimate == 0.0
        assert outcome.contributing == 0

    def test_loss_drops_subtrees(self, small_scenario, small_tree, readings):
        scheme = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        outcome, _ = run_once(
            small_scenario.deployment, GlobalLoss(0.3), scheme, readings, seed=5
        )
        assert 0 < outcome.estimate < small_scenario.deployment.num_sensors
        # Tree counting is exact over whatever survived.
        assert outcome.estimate == outcome.contributing

    def test_one_transmission_per_node(self, small_scenario, small_tree, readings):
        scheme = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        _, channel = run_once(small_scenario.deployment, NoLoss(), scheme, readings)
        assert channel.log.transmissions == small_scenario.deployment.num_sensors

    def test_retransmission_increases_contributing(
        self, small_scenario, small_tree, readings
    ):
        single = TagScheme(
            small_scenario.deployment, small_tree, CountAggregate(), attempts=1
        )
        triple = TagScheme(
            small_scenario.deployment, small_tree, CountAggregate(), attempts=3
        )
        total_single = 0
        total_triple = 0
        for epoch in range(10):
            out_s, _ = run_once(
                small_scenario.deployment, GlobalLoss(0.3), single, readings, epoch
            )
            out_t, _ = run_once(
                small_scenario.deployment, GlobalLoss(0.3), triple, readings, epoch
            )
            total_single += out_s.contributing
            total_triple += out_t.contributing
        assert total_triple > total_single


class TestSDScheme:
    def test_estimates_with_approximation_error(
        self, small_scenario, readings
    ):
        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        outcome, _ = run_once(small_scenario.deployment, NoLoss(), scheme, readings)
        truth = small_scenario.deployment.num_sensors
        assert outcome.contributing == truth  # everyone accounted for
        assert abs(outcome.estimate - truth) / truth < 0.5  # sketch error only

    def test_one_transmission_per_node(self, small_scenario, readings):
        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        _, channel = run_once(small_scenario.deployment, NoLoss(), scheme, readings)
        assert channel.log.transmissions == small_scenario.deployment.num_sensors

    def test_robust_to_loss(self, medium_scenario, readings):
        scheme = SynopsisDiffusionScheme(
            medium_scenario.deployment, medium_scenario.rings, CountAggregate()
        )
        contributing = []
        for epoch in range(5):
            outcome, _ = run_once(
                medium_scenario.deployment, GlobalLoss(0.2), scheme, readings, epoch
            )
            contributing.append(outcome.contributing)
        fraction = sum(contributing) / (5 * medium_scenario.deployment.num_sensors)
        assert fraction > 0.85

    def test_max_aggregate_piggybacks_count(self, small_scenario):
        scheme = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, MaxAggregate()
        )
        readings = UniformReadings(1, 99, seed=2)
        outcome, _ = run_once(small_scenario.deployment, NoLoss(), scheme, readings)
        assert outcome.estimate == scheme.exact_answer(0, readings)
        truth = small_scenario.deployment.num_sensors
        assert abs(outcome.contributing_estimate - truth) / truth < 0.5


class TestTDScheme:
    def make_td(self, scenario, tree, level, aggregate=None):
        graph = TDGraph(
            scenario.rings, tree, initial_modes_by_level(scenario.rings, level)
        )
        scheme = TributaryDeltaScheme(
            scenario.deployment, graph, aggregate or CountAggregate()
        )
        return scheme, graph

    def test_all_tree_matches_tag(self, small_scenario, small_tree, readings):
        scheme, _ = self.make_td(small_scenario, small_tree, -1)
        tag = TagScheme(small_scenario.deployment, small_tree, CountAggregate())
        for epoch in range(3):
            td_out, _ = run_once(
                small_scenario.deployment, GlobalLoss(0.2), scheme, readings, epoch
            )
            tag_out, _ = run_once(
                small_scenario.deployment, GlobalLoss(0.2), tag, readings, epoch
            )
            assert td_out.estimate == tag_out.estimate

    def test_all_multipath_contributing_matches_sd(
        self, small_scenario, small_tree, readings
    ):
        depth = small_scenario.rings.depth
        scheme, _ = self.make_td(small_scenario, small_tree, depth)
        sd = SynopsisDiffusionScheme(
            small_scenario.deployment, small_scenario.rings, CountAggregate()
        )
        for epoch in range(3):
            td_out, _ = run_once(
                small_scenario.deployment, GlobalLoss(0.2), scheme, readings, epoch
            )
            sd_out, _ = run_once(
                small_scenario.deployment, GlobalLoss(0.2), sd, readings, epoch
            )
            # Same channel draws, same topology: identical survivor sets.
            assert td_out.contributing == sd_out.contributing

    def test_mixed_mode_exact_without_loss_at_bs_tree_side(
        self, small_scenario, small_tree, readings
    ):
        scheme, graph = self.make_td(small_scenario, small_tree, 1)
        outcome, _ = run_once(
            small_scenario.deployment, NoLoss(), scheme, readings
        )
        truth = small_scenario.deployment.num_sensors
        assert outcome.contributing == truth
        # Mixed estimate: some exact tree mass + sketch error on the rest.
        assert abs(outcome.estimate - truth) / truth < 0.5

    def test_mixed_beats_pure_multipath_at_no_loss(
        self, medium_scenario, medium_tree, readings
    ):
        # With a small delta the bulk of the count arrives exactly, so the
        # estimate error must be below the full-sketch error on average.
        td, _ = self.make_td(medium_scenario, medium_tree, 1)
        sd = SynopsisDiffusionScheme(
            medium_scenario.deployment, medium_scenario.rings, CountAggregate()
        )
        truth = medium_scenario.deployment.num_sensors
        td_err = 0.0
        sd_err = 0.0
        for epoch in range(8):
            td_out, _ = run_once(
                medium_scenario.deployment, NoLoss(), td, readings, epoch
            )
            sd_out, _ = run_once(
                medium_scenario.deployment, NoLoss(), sd, readings, epoch
            )
            td_err += abs(td_out.estimate - truth)
            sd_err += abs(sd_out.estimate - truth)
        assert td_err < sd_err

    def test_missing_stats_reported(self, small_scenario, small_tree, readings):
        scheme, graph = self.make_td(small_scenario, small_tree, 1)
        outcome, _ = run_once(
            small_scenario.deployment, GlobalLoss(0.3), scheme, readings
        )
        stats = outcome.extra.get("missing_stats")
        assert stats, "boundary M nodes must report tributary statistics"
        assert all(value >= 0 for value in stats.values())

    def test_latency_is_ring_depth(self, small_scenario, small_tree):
        scheme, _ = self.make_td(small_scenario, small_tree, 1)
        assert scheme.latency_epochs == small_scenario.rings.depth
