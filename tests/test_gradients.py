"""Tests for precision gradients (Min Total-load, Min Max-load, Hybrid)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.frequent.gradients import (
    FlatGradient,
    HybridGradient,
    MinMaxLoadGradient,
    MinTotalLoadGradient,
)


class TestMinTotalLoad:
    def test_closed_form(self):
        gradient = MinTotalLoadGradient(0.1, d=4.0)
        t = 0.5  # 1/sqrt(4)
        for height in range(1, 8):
            expected = 0.1 * (1 - t**height)
            assert gradient.epsilon_at(height) == pytest.approx(expected)

    def test_monotone_and_bounded(self):
        gradient = MinTotalLoadGradient(0.05, d=2.25)
        gradient.validate(20)

    def test_counter_cap_grows_geometrically(self):
        gradient = MinTotalLoadGradient(0.1, d=4.0)
        ratio = gradient.max_counters(5) / gradient.max_counters(4)
        assert ratio == pytest.approx(2.0)  # sqrt(d)

    def test_total_load_bound_formula(self):
        gradient = MinTotalLoadGradient(0.01, d=4.0)
        assert gradient.total_load_bound(100) == pytest.approx(
            (1 + 2 / (2 - 1)) * 100 / 0.01
        )

    def test_degenerate_d_clamped(self):
        gradient = MinTotalLoadGradient(0.1, d=1.0)
        assert gradient.d > 1.0

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            MinTotalLoadGradient(0.0, d=2.0)


class TestMinMaxLoad:
    def test_linear(self):
        gradient = MinMaxLoadGradient(0.1, tree_height=5)
        for height in range(1, 6):
            assert gradient.epsilon_at(height) == pytest.approx(0.1 * height / 5)

    def test_uniform_counter_cap(self):
        gradient = MinMaxLoadGradient(0.1, tree_height=5)
        caps = [gradient.max_counters(h) for h in range(1, 6)]
        assert all(cap == pytest.approx(caps[0]) for cap in caps)
        assert caps[0] == pytest.approx(5 / 0.1)

    def test_clamps_beyond_height(self):
        gradient = MinMaxLoadGradient(0.1, tree_height=5)
        assert gradient.epsilon_at(9) == pytest.approx(0.1)


class TestHybrid:
    def test_is_sum_of_halves(self):
        hybrid = HybridGradient(0.1, d=4.0, tree_height=5)
        total = MinTotalLoadGradient(0.05, d=4.0)
        maxload = MinMaxLoadGradient(0.05, tree_height=5)
        for height in range(1, 6):
            assert hybrid.epsilon_at(height) == pytest.approx(
                total.epsilon_at(height) + maxload.epsilon_at(height)
            )

    def test_caps_within_factor_two_of_each(self):
        # Section 6.1.4: both metrics within a factor 2 of optimal.
        epsilon, d, height = 0.1, 4.0, 6
        hybrid = HybridGradient(epsilon, d=d, tree_height=height)
        total = MinTotalLoadGradient(epsilon, d=d)
        maxload = MinMaxLoadGradient(epsilon, tree_height=height)
        for h in range(1, height + 1):
            assert hybrid.max_counters(h) <= 2 * total.max_counters(h) + 1e-9
            assert hybrid.max_counters(h) <= 2 * maxload.max_counters(h) + 1e-9

    def test_validates(self):
        HybridGradient(0.2, d=2.25, tree_height=8).validate(8)


class TestFlat:
    def test_constant(self):
        gradient = FlatGradient(0.1)
        assert gradient.epsilon_at(1) == gradient.epsilon_at(7) == 0.1

    def test_no_fresh_slack_above_leaves(self):
        gradient = FlatGradient(0.1)
        assert gradient.max_counters(2) == math.inf


class TestGradientProperties:
    @given(
        st.floats(min_value=0.001, max_value=0.5),
        st.floats(min_value=1.2, max_value=16.0),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60)
    def test_min_total_monotone_bounded(self, epsilon, d, max_height):
        gradient = MinTotalLoadGradient(epsilon, d)
        gradient.validate(max_height)

    @given(
        st.floats(min_value=0.001, max_value=0.5),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60)
    def test_min_max_monotone_bounded(self, epsilon, height):
        gradient = MinMaxLoadGradient(epsilon, height)
        gradient.validate(height)

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=1.5, max_value=9.0),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=60)
    def test_hybrid_monotone_bounded(self, epsilon, d, height):
        gradient = HybridGradient(epsilon, d, height)
        gradient.validate(height)
