"""Round-trip tests for the JSON serialization module."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialization
from repro.aggregates.sample import UniformSample
from repro.errors import ConfigurationError
from repro.frequent.gk import GKSummary
from repro.frequent.summary import Summary
from repro.frequent.td_quantiles import QuantileSynopsis, synopsis_from_readings
from repro.multipath.fm import FMSketch
from repro.multipath.kmv import KMVSketch
from repro.network.energy import EnergyReport
from repro.network.links import TransmissionLog
from repro.network.simulator import EpochResult, RunResult


def roundtrip(obj):
    return serialization.loads(serialization.dumps(obj))


class TestSketchRoundTrips:
    def test_fm_empty(self):
        sketch = FMSketch(8, 16)
        assert roundtrip(sketch) == sketch

    def test_fm_populated(self):
        sketch = FMSketch(8)
        for item in range(100):
            sketch.insert("item", item)
        restored = roundtrip(sketch)
        assert restored == sketch
        assert restored.estimate() == sketch.estimate()

    def test_kmv_exact_phase(self):
        sketch = KMVSketch(k=16)
        for item in range(5):
            sketch.insert("item", item)
        restored = roundtrip(sketch)
        assert restored == sketch
        assert restored.is_exact

    def test_kmv_saturated(self):
        sketch = KMVSketch(k=8)
        for item in range(100):
            sketch.insert("item", item)
        restored = roundtrip(sketch)
        assert restored == sketch
        assert not restored.is_exact
        assert restored.estimate() == sketch.estimate()

    @given(count=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_fm_roundtrip_property(self, count):
        sketch = FMSketch(4, 24)
        sketch.insert_count(count, "bulk")
        assert roundtrip(sketch) == sketch


class TestSummaryRoundTrips:
    def test_frequency_summary(self):
        summary = Summary(n=10, epsilon=0.05, counts={1: 4.0, 7: 2.5})
        restored = roundtrip(summary)
        assert restored.n == summary.n
        assert restored.epsilon == summary.epsilon
        assert restored.counts == dict(summary.counts)

    def test_string_items_survive(self):
        summary = Summary(n=3, epsilon=0.0, counts={"high": 2.0, "low": 1.0})
        assert roundtrip(summary).counts == {"high": 2.0, "low": 1.0}

    def test_gk_summary(self):
        summary = GKSummary.from_values([3.0, 1.0, 2.0]).prune(2)
        restored = roundtrip(summary)
        assert restored == summary
        assert restored.query_quantile(0.5) == summary.query_quantile(0.5)

    @given(
        values=st.lists(
            st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=50
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_gk_roundtrip_property(self, values):
        summary = GKSummary.from_values(values)
        assert roundtrip(summary) == summary


class TestSampleRoundTrips:
    def test_uniform_sample(self):
        sample = UniformSample(
            capacity=4, entries=((0.25, 3, 1.5), (0.5, 7, -2.0))
        )
        assert roundtrip(sample) == sample

    def test_quantile_synopsis(self):
        synopsis = synopsis_from_readings(3, 0, [1.0, 2.0, 3.0], capacity=8)
        restored = roundtrip(synopsis)
        assert restored.entries == synopsis.entries
        assert restored.population_weight == synopsis.population_weight
        assert restored.quantile(0.5) == synopsis.quantile(0.5)


class TestResultRoundTrips:
    def make_run(self):
        log = TransmissionLog(
            transmissions=10, deliveries=8, drops=2, words_sent=40, messages_sent=10
        )
        epoch = EpochResult(
            epoch=3,
            estimate=59.5,
            true_value=60.0,
            contributing=58,
            contributing_estimate=59.5,
            log=log,
            extra={"delta_size": 12.0, "missing_stats": {4: 2, 9: 0}},
        )
        energy = EnergyReport(
            total_messages=10, total_words=40, total_uj=360.0, per_node_uj={1: 36.0}
        )
        return RunResult(scheme_name="TD", epochs=[epoch], energy=energy)

    def test_run_result_numeric_fields(self):
        run = self.make_run()
        restored = roundtrip(run)
        assert restored.scheme_name == "TD"
        assert restored.epochs[0].estimate == 59.5
        assert restored.epochs[0].log == run.epochs[0].log
        assert restored.energy.per_node_uj == {1: 36.0}
        assert restored.rms_error() == pytest.approx(run.rms_error())

    def test_extra_projected_to_json_safe(self):
        run = self.make_run()
        run.epochs[0].extra["unserialisable"] = object()
        restored = roundtrip(run)
        assert "unserialisable" not in restored.epochs[0].extra
        assert restored.epochs[0].extra["delta_size"] == 12.0
        # Dict keys come back as strings (JSON's restriction), values intact.
        assert restored.epochs[0].extra["missing_stats"] == {"4": 2, "9": 0}

    def test_file_round_trip(self, tmp_path):
        run = self.make_run()
        path = tmp_path / "run.json"
        serialization.save(run, str(path))
        restored = serialization.load(str(path))
        assert restored.scheme_name == run.scheme_name
        assert len(restored.epochs) == 1


class TestFormat:
    def test_payloads_are_tagged_and_versioned(self):
        data = json.loads(serialization.dumps(FMSketch(4)))
        assert data["type"] == "fm"
        assert data["version"] == serialization.FORMAT_VERSION

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            serialization.loads('{"type": "martian", "version": 1}')

    def test_missing_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            serialization.loads('{"version": 1}')

    def test_newer_version_rejected(self):
        payload = json.loads(serialization.dumps(FMSketch(4)))
        payload["version"] = serialization.FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError):
            serialization.from_jsonable(payload)

    def test_unsupported_object_rejected(self):
        with pytest.raises(ConfigurationError):
            serialization.dumps(object())

    def test_dumps_is_deterministic(self):
        sketch = KMVSketch(k=8)
        sketch.insert("a")
        assert serialization.dumps(sketch) == serialization.dumps(sketch)


class TestFrequentItemsSynopsisRoundTrip:
    def make_synopsis(self, operator_cls):
        from repro.frequent.mp_fi import (
            FMOperator,
            KMVOperator,
            MultipathFrequentItems,
        )

        operator = operator_cls()
        algorithm = MultipathFrequentItems(
            epsilon=0.01, total_items_hint=500, operator=operator
        )
        items = [1, 1, 1, 2, 2, 7] * 20
        return algorithm.generate(node=3, epoch=0, items=items)

    def test_kmv_backed_synopsis(self):
        from repro.frequent.mp_fi import KMVOperator

        synopsis = self.make_synopsis(KMVOperator)
        restored = roundtrip(synopsis)
        assert restored.klass == synopsis.klass
        assert restored.n_sketch == synopsis.n_sketch
        assert restored.counts == synopsis.counts

    def test_fm_backed_synopsis(self):
        from repro.frequent.mp_fi import FMOperator

        synopsis = self.make_synopsis(FMOperator)
        restored = roundtrip(synopsis)
        assert restored.counts == synopsis.counts

    def test_restored_synopsis_still_fuses(self):
        from repro.frequent.mp_fi import KMVOperator, MultipathFrequentItems

        algorithm = MultipathFrequentItems(
            epsilon=0.01, total_items_hint=500, operator=KMVOperator()
        )
        original = algorithm.generate(3, 0, [1, 1, 2] * 30)
        restored = roundtrip(original)
        fused = algorithm.fuse_into_classes([original, restored])
        # Fusing a synopsis with its own round-trip is a no-op (ODI).
        assert len(fused) == 1
        total, estimates = algorithm.evaluate(fused)
        base_total, base_estimates = algorithm.evaluate(
            algorithm.fuse_into_classes([original])
        )
        assert total == base_total
        assert estimates == base_estimates
