"""Tests for the LabData reconstruction and synthetic scenario builders."""

from __future__ import annotations

import pytest

from repro.datasets.labdata import LAB_SENSORS, LabDataScenario
from repro.datasets.synthetic import (
    density_sweep_deployment,
    grid_jitter_placement,
    make_synthetic_scenario,
    radio_range_for_density,
    width_sweep_deployment,
)
from repro.errors import ConfigurationError
from repro.network.failures import GlobalLoss
from repro.tree.construction import build_bushy_tree
from repro.tree.domination import domination_factor


class TestLabData:
    def test_54_sensors(self, lab_scenario):
        assert lab_scenario.num_sensors == LAB_SENSORS

    def test_multi_hop_depth(self, lab_scenario):
        # The Intel lab deployment is 4-6 hops deep.
        assert 4 <= lab_scenario.rings.depth <= 7

    def test_link_loss_in_reported_band(self, lab_scenario):
        rates = list(lab_scenario.base_loss.values())
        assert rates
        assert min(rates) >= 0.05
        assert max(rates) <= 0.30

    def test_bushy_tree_domination_near_paper(self, lab_scenario):
        # The paper reports a domination factor of 2.25 for LabData.
        tree = build_bushy_tree(lab_scenario.rings, seed=3)
        assert domination_factor(tree) >= 1.7

    def test_failure_model_composes(self, lab_scenario):
        composed = lab_scenario.failure_model(GlobalLoss(0.5))
        deployment = lab_scenario.deployment
        edge = next(iter(lab_scenario.base_loss))
        rate = composed.loss_rate(deployment, edge[0], edge[1], 0)
        assert rate > 0.5  # base loss stacked on the failure model

    def test_deterministic(self):
        a = LabDataScenario.build()
        b = LabDataScenario.build()
        assert a.deployment.positions == b.deployment.positions
        assert a.base_loss == b.base_loss


class TestSynthetic:
    def test_default_is_paper_scenario(self):
        scenario = make_synthetic_scenario(seed=0)
        assert scenario.deployment.num_sensors == 600
        assert scenario.deployment.width == 20.0
        assert scenario.deployment.position(0) == (10.0, 10.0)

    def test_rings_built(self):
        scenario = make_synthetic_scenario(num_sensors=80, seed=1)
        assert scenario.rings.depth >= 2

    def test_radio_range_scales_with_density(self):
        sparse = radio_range_for_density(0.2)
        dense = radio_range_for_density(2.0)
        assert sparse > dense

    def test_grid_jitter_counts(self):
        deployment = grid_jitter_placement(1.0, 10, 10, seed=2)
        assert deployment.num_sensors == 100

    def test_grid_jitter_bounds(self):
        deployment = grid_jitter_placement(0.5, 12, 8, seed=2)
        for node in deployment.sensor_ids:
            x, y = deployment.position(node)
            assert 0 <= x <= 12
            assert 0 <= y <= 8

    def test_grid_jitter_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            grid_jitter_placement(0.0, 10, 10)

    def test_density_sweep_connected(self):
        for density in (0.2, 0.8, 1.6):
            deployment, radio = density_sweep_deployment(density, seed=0)
            radio.connectivity(deployment)  # raises if disconnected

    def test_width_sweep_connected(self):
        for width in (10, 40, 80):
            deployment, radio = width_sweep_deployment(width, seed=0)
            radio.connectivity(deployment)
