"""Tests for reading workloads and item streams."""

from __future__ import annotations

import pytest

from repro.datasets.streams import (
    ConstantReadings,
    DisjointUniformItemStream,
    DiurnalLightReadings,
    LightItemStream,
    UniformReadings,
    ZipfItemStream,
    exact_item_counts,
)
from repro.errors import ConfigurationError


class TestReadings:
    def test_constant(self):
        readings = ConstantReadings(3.0)
        assert readings(5, 10) == 3.0

    def test_uniform_range_and_determinism(self):
        readings = UniformReadings(10, 20, seed=1)
        values = [readings(n, e) for n in range(20) for e in range(20)]
        assert all(10 <= v <= 20 for v in values)
        assert readings(3, 4) == readings(3, 4)

    def test_uniform_mean(self):
        readings = UniformReadings(0, 100, seed=2)
        values = [readings(n, e) for n in range(50) for e in range(50)]
        assert abs(sum(values) / len(values) - 50) < 3

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ConfigurationError):
            UniformReadings(5, 1)

    def test_diurnal_nonnegative_and_periodic_shape(self):
        readings = DiurnalLightReadings(period=100, seed=3)
        values = [readings(1, e) for e in range(200)]
        assert all(v >= 0 for v in values)
        peak = max(values)
        trough = min(values)
        assert peak - trough > 100  # a real day/night swing

    def test_diurnal_nodes_correlated_not_identical(self):
        readings = DiurnalLightReadings(seed=3)
        a = [readings(1, e) for e in range(50)]
        b = [readings(2, e) for e in range(50)]
        assert a != b


class TestZipf:
    def test_count_and_universe(self):
        stream = ZipfItemStream(items_per_node=30, universe=50, seed=4)
        items = stream.items(1, 0)
        assert len(items) == 30
        assert all(0 <= item < 50 for item in items)

    def test_skew(self):
        stream = ZipfItemStream(items_per_node=200, universe=100, alpha=1.5, seed=4)
        counts = exact_item_counts(stream, range(1, 21), 0)
        head = counts.get(0, 0)
        tail = counts.get(99, 0)
        assert head > 10 * max(1, tail)

    def test_deterministic(self):
        stream = ZipfItemStream(seed=5)
        assert stream.items(1, 2) == stream.items(1, 2)


class TestDisjointUniform:
    def test_streams_disjoint(self):
        stream = DisjointUniformItemStream(items_per_node=50, values_per_node=25)
        a = set(stream.items(1, 0))
        b = set(stream.items(2, 0))
        assert not a & b

    def test_within_stream_uniform_range(self):
        stream = DisjointUniformItemStream(items_per_node=100, values_per_node=10)
        items = stream.items(3, 0)
        assert all(30 <= item < 40 for item in items)


class TestLightItems:
    def test_quantization(self):
        stream = LightItemStream(items_per_node=20, bucket=25, seed=6)
        items = stream.items(1, 0)
        assert len(items) == 20
        assert all(item >= 0 for item in items)

    def test_offset_shifts_items(self):
        base = LightItemStream(items_per_node=30, bucket=25, seed=6)
        shifted = LightItemStream(
            items_per_node=30, bucket=25, seed=6, offset_fn=lambda n: 500.0
        )
        assert max(base.items(1, 0)) < max(shifted.items(1, 0))

    def test_head_items_shared_across_nodes(self):
        stream = LightItemStream(items_per_node=50, seed=6)
        counts = exact_item_counts(stream, range(1, 11), 0)
        top = max(counts.values())
        assert top > 50  # a consensus level spans nodes


class TestExactCounts:
    def test_counts(self):
        class Fixed:
            def items(self, node, epoch):
                return [1, 1, node]

        counts = exact_item_counts(Fixed(), [2, 3], 0)
        assert counts == {1: 4, 2: 1, 3: 1}
