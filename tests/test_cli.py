"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Te" in output
        assert "table2" in output

    def test_run_with_output_dir(self, tmp_path, capsys):
        assert main(["run", "table2", "--out", str(tmp_path)]) == 0
        written = tmp_path / "table2.txt"
        assert written.exists()
        assert "Te" in written.read_text()

    def test_experiment_registry_complete(self):
        # One entry per table/figure of the paper's evaluation, plus the
        # quantified latency column, the design-knob sweeps, and the
        # dynamic-topology timeline.
        expected = {
            "table1",
            "fig2",
            "table2",
            "fig4",
            "fig5a",
            "fig5b",
            "fig6",
            "churn-timeline",
            "labdata",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9a",
            "fig9b",
            "latency",
            "lifetime",
            "sweep-threshold",
            "sweep-interval",
            "sweep-heuristic",
            "sweep-split",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_latency(self, capsys):
        assert main(["run", "latency"]) == 0
        output = capsys.readouterr().out
        assert "footnote 6" in output
        assert "tree (count)" in output


class TestDescribeAndRunConfig:
    def test_describe_list(self, capsys):
        from repro.api import EXPERIMENT_CONFIGS

        assert main(["describe", "--list"]) == 0
        printed = capsys.readouterr().out.split()
        assert printed == list(EXPERIMENT_CONFIGS)

    def test_describe_round_trips(self, capsys):
        from repro.api import EXPERIMENT_CONFIGS, RunConfig

        assert main(["describe", "fig2"]) == 0
        printed = capsys.readouterr().out
        assert RunConfig.from_json(printed) == EXPERIMENT_CONFIGS["fig2"]

    def test_describe_unknown_is_actionable(self, capsys):
        assert main(["describe", "fig99"]) == 2
        assert "describable" in capsys.readouterr().err

    def test_describe_needs_a_name(self, capsys):
        assert main(["describe"]) == 2

    def test_run_config_executes_with_overrides(self, tmp_path, capsys):
        from repro.api import RunConfig

        config = RunConfig(
            scheme="TAG", num_sensors=40, epochs=3, converge_epochs=0,
            failure="none", scenario_seed=4,
        )
        path = tmp_path / "config.json"
        path.write_text(config.to_json())
        out = tmp_path / "report.txt"
        code = main(
            [
                "run-config",
                str(path),
                "--epochs",
                "2",
                "--set",
                "failure=global:0.2",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "rms_error" in printed
        assert "epochs=2" in printed
        assert out.exists()

    def test_run_config_rejects_bad_payloads(self, tmp_path, capsys):
        path = tmp_path / "config.json"
        path.write_text('{"scheme": "TAG", "epocks": 3}')
        assert main(["run-config", str(path)]) == 2
        assert "epocks" in capsys.readouterr().err
        path.write_text("{not json")
        assert main(["run-config", str(path)]) == 2
        assert main(["run-config", str(tmp_path / "missing.json")]) == 2

    def test_run_config_rejects_bad_overrides(self, tmp_path, capsys):
        from repro.api import RunConfig

        path = tmp_path / "config.json"
        path.write_text(
            RunConfig(
                scheme="TAG", num_sensors=40, epochs=2, converge_epochs=0
            ).to_json()
        )
        assert main(["run-config", str(path), "--set", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err
        assert main(["run-config", str(path), "--set", "nonsense"]) == 2
        capsys.readouterr()
        assert main(["run-config", str(path), "--set", "epochs=abc"]) == 2
        assert "epochs" in capsys.readouterr().err
        assert main(["run-config", str(path), "--set", "use_batch=maybe"]) == 2
