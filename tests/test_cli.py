"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Te" in output
        assert "table2" in output

    def test_run_with_output_dir(self, tmp_path, capsys):
        assert main(["run", "table2", "--out", str(tmp_path)]) == 0
        written = tmp_path / "table2.txt"
        assert written.exists()
        assert "Te" in written.read_text()

    def test_experiment_registry_complete(self):
        # One entry per table/figure of the paper's evaluation, plus the
        # quantified latency column and the design-knob sweeps.
        expected = {
            "table1",
            "fig2",
            "table2",
            "fig4",
            "fig5a",
            "fig5b",
            "fig6",
            "labdata",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9a",
            "fig9b",
            "latency",
            "lifetime",
            "sweep-threshold",
            "sweep-interval",
            "sweep-heuristic",
            "sweep-split",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_latency(self, capsys):
        assert main(["run", "latency"]) == 0
        output = capsys.readouterr().out
        assert "footnote 6" in output
        assert "tree (count)" in output
