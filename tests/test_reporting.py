"""Tests for support thresholding and report metrics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.frequent.reporting import (
    false_negative_rate,
    false_positive_rate,
    report_frequent,
    report_from_estimates,
    true_frequent,
)
from repro.frequent.summary import Summary


class TestTrueFrequent:
    def test_threshold_inclusive(self):
        counts = {1: 10, 2: 5, 3: 1}
        assert true_frequent(counts, 10 / 16) == {1}
        assert true_frequent(counts, 5 / 16) == {1, 2}

    def test_rejects_bad_support(self):
        with pytest.raises(ConfigurationError):
            true_frequent({1: 1}, 0.0)


class TestReportFrequent:
    def test_reports_above_relaxed_threshold(self):
        summary = Summary(n=100, epsilon=0.01, counts={1: 50.0, 2: 9.5, 3: 5.0})
        # threshold = (0.1 - 0.01) * 100 = 9
        assert report_frequent(summary, 0.1, 0.01) == [1, 2]

    def test_epsilon_must_be_below_support(self):
        summary = Summary(n=10, epsilon=0.0, counts={})
        with pytest.raises(ConfigurationError):
            report_frequent(summary, 0.01, 0.01)

    def test_report_from_estimates(self):
        estimates = {1: 30.0, 2: 3.0}
        assert report_from_estimates(estimates, 100.0, 0.1, 0.01) == [1]


class TestRates:
    def test_false_negative_rate(self):
        assert false_negative_rate({1, 2, 3}, [1]) == pytest.approx(2 / 3)
        assert false_negative_rate({1}, [1]) == 0.0
        assert false_negative_rate(set(), []) == 0.0

    def test_false_positive_rate(self):
        assert false_positive_rate({1}, [1, 2]) == pytest.approx(0.5)
        assert false_positive_rate({1}, []) == 0.0
        assert false_positive_rate(set(), [5]) == 1.0


class TestRateEdgeCases:
    def test_no_truth_means_no_false_negatives(self):
        from repro.frequent.reporting import false_negative_rate

        assert false_negative_rate(set(), [1, 2, 3]) == 0.0

    def test_no_reports_means_no_false_positives(self):
        from repro.frequent.reporting import false_positive_rate

        assert false_positive_rate({1, 2}, []) == 0.0

    def test_rates_bounded(self):
        from repro.frequent.reporting import (
            false_negative_rate,
            false_positive_rate,
        )

        truth = {1, 2, 3, 4}
        reported = [3, 4, 5, 6]
        assert 0.0 <= false_negative_rate(truth, reported) <= 1.0
        assert 0.0 <= false_positive_rate(truth, reported) <= 1.0
        assert false_negative_rate(truth, reported) == 0.5
